"""Micro-benchmarks of the simulation substrate itself.

These measure wall-clock performance of the discrete-event kernel and the
contention network model (events per second, simulated broadcasts per
second), which bounds how large the figure sweeps can be made.
"""

from repro import SystemConfig, build_system
from repro.sim.engine import Simulator
from repro.sim.messages import Message
from repro.sim.network import Network, NetworkConfig


def test_event_queue_throughput(benchmark):
    """Schedule and execute 20k chained events."""

    def run():
        simulator = Simulator()
        remaining = [20_000]

        def tick():
            if remaining[0] > 0:
                remaining[0] -= 1
                simulator.schedule(0.1, tick)

        simulator.schedule(0.1, tick)
        simulator.run()
        return simulator.events_processed

    events = benchmark(run)
    assert events >= 20_000


def test_network_model_throughput(benchmark):
    """Push 3000 multicasts through the contention model."""

    def run():
        simulator = Simulator()
        network = Network(simulator, NetworkConfig(n=5))
        received = [0]
        for pid in range(5):
            network.attach(pid, lambda p, m: received.__setitem__(0, received[0] + 1))
        for i in range(3000):
            network.send(Message(i % 5, tuple(range(5)), "p", i))
        simulator.run()
        return received[0]

    deliveries = benchmark(run)
    assert deliveries == 3000 * 5


def test_end_to_end_broadcast_rate_fd(benchmark):
    """Order 300 messages end to end with the FD algorithm."""

    def run():
        system = build_system(SystemConfig(n=3, stack="fd", seed=1))
        system.start()
        for i in range(300):
            system.broadcast_at(1.0 + i * 2.0, i % 3, i)
        system.run(until=100_000.0)
        return sum(len(seq) for seq in system.delivery_sequences().values())

    delivered = benchmark(run)
    assert delivered == 300 * 3


def test_end_to_end_broadcast_rate_gm(benchmark):
    """Order 300 messages end to end with the GM algorithm."""

    def run():
        system = build_system(SystemConfig(n=3, stack="gm", seed=1))
        system.start()
        for i in range(300):
            system.broadcast_at(1.0 + i * 2.0, i % 3, i)
        system.run(until=100_000.0)
        return sum(len(seq) for seq in system.delivery_sequences().values())

    delivered = benchmark(run)
    assert delivered == 300 * 3
