"""Micro-benchmarks of the simulation substrate itself.

These measure wall-clock performance of the discrete-event kernel and the
contention network model (events per second, simulated broadcasts per
second), which bounds how large the figure sweeps can be made.

Besides the pytest-benchmark entry points, the module runs standalone and
emits ``benchmarks/output/BENCH_simulator.json`` with a per-layer breakdown
(kernel, timer churn, network, failure-detector fabric, full stack):
events per second plus allocation footprints (net allocated blocks and the
tracemalloc peak), measured separately so the allocation tracer never
pollutes the timing numbers.

Usage::

    python benchmarks/bench_simulator_micro.py        # full artifact
    REPRO_BENCH_SMOKE=1 python benchmarks/bench_simulator_micro.py
    python -m pytest benchmarks/bench_simulator_micro.py -q
"""

from __future__ import annotations

import json
import os
import sys
import time
import tracemalloc
from typing import Any, Callable, Dict, Tuple

from repro import SystemConfig, build_system
from repro.scenarios.extended import run_churn_steady
from repro.scenarios.steady import run_suspicion_steady
from repro.sim.engine import Simulator
from repro.sim.messages import Message
from repro.sim.network import Network, NetworkConfig
from repro.sim.rng import RandomStreams
from repro.failure_detectors.qos import QoSConfig, QoSFailureDetectorFabric

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").lower() in ("1", "true", "yes")
OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")
ARTIFACT = os.path.join(OUTPUT_DIR, "BENCH_simulator.json")

#: Workload sizes (smoke mode keeps CI wall time negligible).
CHAIN_EVENTS = 2_000 if SMOKE else 200_000
CHURN_PAIRS = 20 if SMOKE else 210
CHURN_CYCLES = 50 if SMOKE else 2_000
MULTICASTS = 200 if SMOKE else 5_000
FABRIC_HORIZON = 500.0 if SMOKE else 10_000.0
SCENARIO_N = 5 if SMOKE else 15
SCENARIO_MESSAGES = 20 if SMOKE else 100
TIMING_ROUNDS = 1 if SMOKE else 3

#: Interleaved-subprocess A/B against the pre-overhaul kernel (commit
#: 6603de7, the seed of this optimisation pass), measured on the development
#: machine with warm best-of-3 minima across alternating rounds.  Recorded
#: here so the artifact always carries the before/after context; absolute
#: walls are machine-specific, the ratios are what travelled best across
#: re-measurements.
SEED_COMPARISON = {
    "method": (
        "alternating old/new subprocesses, warm best-of-3 per process, "
        "minima across rounds; event counts bit-identical in exact mode"
    ),
    "layers": {
        "kernel-chain": {"speedup": 1.85},
        "timer-churn": {"speedup": 4.38},
        "multicast-flood": {"speedup": 1.65},
        "fd-fabric-exact": {"speedup": 2.11},
    },
    "hot_scenarios_n15": {
        "suspicion-steady/fd": {
            "old_wall_s": 0.948,
            "new_wall_s": 0.438,
            "speedup": 2.17,
            "batch_wall_s": 0.438,
            "batch_speedup": 2.17,
        },
        "suspicion-steady/gm": {
            "old_wall_s": 1.033,
            "new_wall_s": 0.570,
            "speedup": 1.81,
            "batch_wall_s": 0.501,
            "batch_speedup": 2.06,
        },
        "churn-steady/gm": {
            "old_wall_s": 0.743,
            "new_wall_s": 0.474,
            "speedup": 1.57,
            "batch_wall_s": 0.497,
            "batch_speedup": 1.49,
        },
    },
}


# ------------------------------------------------------------------ layers


def run_kernel_chain() -> int:
    """Self-rescheduling event chain: pure kernel schedule/pop/dispatch."""
    simulator = Simulator()
    remaining = [CHAIN_EVENTS]

    def tick():
        if remaining[0] > 0:
            remaining[0] -= 1
            simulator.schedule(0.1, tick)

    simulator.schedule(0.1, tick)
    simulator.run()
    return simulator.events_processed


def run_timer_churn() -> int:
    """Heartbeat-style cancel/re-arm load: the heap-compaction hot case.

    Every pair repeatedly cancels a far-future timeout and arms a new one;
    without lazy compaction the heap drags every dead timer until its due
    time, which is what made the seed kernel quadratic-ish here.
    """
    simulator = Simulator()
    handles: Dict[int, Any] = {}
    fired = [0]
    limit = CHURN_CYCLES * CHURN_PAIRS

    def rearm(pair: int) -> None:
        old = handles.get(pair)
        if old is not None:
            old.cancel()
        handles[pair] = simulator.schedule(500.0, lambda: None)
        fired[0] += 1
        if fired[0] < limit:
            simulator.schedule(1.0, rearm, pair)

    for pair in range(CHURN_PAIRS):
        simulator.schedule(0.01 * pair, rearm, pair)
    simulator.run()
    return simulator.events_processed


def run_multicast_flood() -> int:
    """Full-group multicasts through the contention pipeline (n=15)."""
    simulator = Simulator()
    network = Network(simulator, NetworkConfig(n=15))
    for pid in range(15):
        network.attach(pid, lambda p, m: None)
    destinations = tuple(range(15))
    for i in range(MULTICASTS):
        network.send(Message(i % 15, destinations, "p", i))
    simulator.run()
    return simulator.events_processed


def _run_fd_fabric(scan_interval: float | None) -> int:
    simulator = Simulator()
    network = Network(simulator, NetworkConfig(n=15))
    for pid in range(15):
        network.attach(pid, lambda p, m: None)
    kwargs = {} if scan_interval is None else {"scan_interval": scan_interval}
    fabric = QoSFailureDetectorFabric(
        simulator,
        network,
        RandomStreams(7),
        QoSConfig(mistake_recurrence_time=50.0, mistake_duration=5.0),
        **kwargs,
    )
    fabric.start()
    simulator.run(until=FABRIC_HORIZON)
    return simulator.events_processed


def run_fd_fabric_exact() -> int:
    """QoS mistake generator alone, exact per-pair timer mode (n=15)."""
    return _run_fd_fabric(None)


def run_fd_fabric_batch() -> int:
    """QoS mistake generator alone, batched calendar scan (interval 1.0)."""
    return _run_fd_fabric(1.0)


LAYERS: Tuple[Tuple[str, Callable[[], int]], ...] = (
    ("kernel-chain", run_kernel_chain),
    ("timer-churn", run_timer_churn),
    ("multicast-flood", run_multicast_flood),
    ("fd-fabric-exact", run_fd_fabric_exact),
    ("fd-fabric-batch", run_fd_fabric_batch),
)


def hot_scenarios() -> Tuple[Tuple[str, Callable[[], Any]], ...]:
    """End-to-end scenario points dominated by the optimised layers."""

    def config(algorithm: str, scan: float | None) -> SystemConfig:
        kwargs: Dict[str, Any] = dict(n=SCENARIO_N, stack=algorithm, seed=11)
        if scan is not None:
            kwargs["fd_scan_interval"] = scan
        return SystemConfig(**kwargs)

    def suspicion(algorithm: str, scan: float | None) -> Callable[[], Any]:
        return lambda: run_suspicion_steady(
            config(algorithm, scan),
            20.0,
            mistake_recurrence_time=50.0,
            mistake_duration=5.0,
            num_messages=SCENARIO_MESSAGES,
        )

    def churn(algorithm: str, scan: float | None) -> Callable[[], Any]:
        return lambda: run_churn_steady(
            config(algorithm, scan),
            20.0,
            churn_rate=2.0,
            mean_downtime=300.0,
            detection_time=10.0,
            num_messages=4 * SCENARIO_MESSAGES,
        )

    return (
        ("suspicion-steady/fd", suspicion("fd", None)),
        ("suspicion-steady/fd/batch", suspicion("fd", 1.0)),
        ("suspicion-steady/gm", suspicion("gm", None)),
        ("suspicion-steady/gm/batch", suspicion("gm", 1.0)),
        ("churn-steady/gm", churn("gm", None)),
        ("churn-steady/gm/batch", churn("gm", 1.0)),
    )


# ------------------------------------------------------------------ measurement


def _measure(workload: Callable[[], Any]) -> Dict[str, Any]:
    """Time ``workload`` (warm, best-of-N), then trace its allocations.

    The two passes are separate on purpose: tracemalloc costs an order of
    magnitude in dispatch overhead, so the traced pass only contributes the
    allocation numbers, never the wall time.
    """
    result = workload()  # warm-up: imports, caches, code objects
    events = getattr(result, "events", result)
    best = None
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        workload()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None or elapsed < best else best

    blocks_before = sys.getallocatedblocks()
    tracemalloc.start()
    workload()
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    blocks_after = sys.getallocatedblocks()

    return {
        "events": int(events),
        "wall_s": round(best, 4),
        "events_per_s": int(events / best) if best else 0,
        "alloc_blocks_net": blocks_after - blocks_before,
        "traced_peak_kib": round(traced_peak / 1024.0, 1),
    }


def run_benchmark() -> Dict[str, Any]:
    """Measure every layer and hot scenario; return the artifact payload."""
    report: Dict[str, Any] = {
        "mode": "smoke" if SMOKE else "full",
        "layers": {},
        "hot_scenarios": {},
        "seed_comparison": SEED_COMPARISON,
    }
    for name, workload in LAYERS:
        report["layers"][name] = _measure(workload)
    for name, workload in hot_scenarios():
        measured = _measure(workload)
        report["hot_scenarios"][name] = measured
    return report


def write_artifact(report: Dict[str, Any]) -> str:
    """Persist ``report`` as ``BENCH_simulator.json``; return the path."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(ARTIFACT, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return ARTIFACT


# ------------------------------------------------------------------ pytest


def test_event_queue_throughput(benchmark):
    """Schedule and execute 20k chained events."""

    def run():
        simulator = Simulator()
        remaining = [20_000]

        def tick():
            if remaining[0] > 0:
                remaining[0] -= 1
                simulator.schedule(0.1, tick)

        simulator.schedule(0.1, tick)
        simulator.run()
        return simulator.events_processed

    events = benchmark(run)
    assert events >= 20_000


def test_network_model_throughput(benchmark):
    """Push 3000 multicasts through the contention model."""

    def run():
        simulator = Simulator()
        network = Network(simulator, NetworkConfig(n=5))
        received = [0]
        for pid in range(5):
            network.attach(pid, lambda p, m: received.__setitem__(0, received[0] + 1))
        for i in range(3000):
            network.send(Message(i % 5, tuple(range(5)), "p", i))
        simulator.run()
        return received[0]

    deliveries = benchmark(run)
    assert deliveries == 3000 * 5


def test_end_to_end_broadcast_rate_fd(benchmark):
    """Order 300 messages end to end with the FD algorithm."""

    def run():
        system = build_system(SystemConfig(n=3, stack="fd", seed=1))
        system.start()
        for i in range(300):
            system.broadcast_at(1.0 + i * 2.0, i % 3, i)
        system.run(until=100_000.0)
        return sum(len(seq) for seq in system.delivery_sequences().values())

    delivered = benchmark(run)
    assert delivered == 300 * 3


def test_end_to_end_broadcast_rate_gm(benchmark):
    """Order 300 messages end to end with the GM algorithm."""

    def run():
        system = build_system(SystemConfig(n=3, stack="gm", seed=1))
        system.start()
        for i in range(300):
            system.broadcast_at(1.0 + i * 2.0, i % 3, i)
        system.run(until=100_000.0)
        return sum(len(seq) for seq in system.delivery_sequences().values())

    delivered = benchmark(run)
    assert delivered == 300 * 3


def test_bench_artifact(capsys):
    """Smoke entry point: run the layer grid and persist the JSON artifact."""
    report = run_benchmark()
    path = write_artifact(report)
    assert set(report["layers"]) == {name for name, _ in LAYERS}
    for stats in report["layers"].values():
        assert stats["events"] > 0 and stats["events_per_s"] > 0
    with capsys.disabled():
        print(f"\nBENCH_simulator artifact: {path}")


if __name__ == "__main__":
    artifact = run_benchmark()
    print(json.dumps(artifact, indent=2))
    print(f"\nwritten to {write_artifact(artifact)}", file=sys.stderr)
