"""Stack-registry dispatch benchmark: system assembly overhead vs inline wiring.

The pluggable-stack redesign routes every ``BroadcastSystem`` through the
stack registry (name lookup + layer factory) instead of the seed's inline
``if algorithm == ...`` chain.  This benchmark measures what that costs: it
assembles systems in a tight loop through (a) an inline baseline replicating
the seed wiring by hand and (b) the registry path for every built-in
(stack, fd kind) combination, and reports assemblies per second plus the
registry overhead relative to the baseline.  CI runs it in smoke mode
(``REPRO_BENCH_SMOKE=1``) on every PR so dispatch-path regressions show up
in the job logs.

Usage::

    python benchmarks/bench_stack_dispatch.py
    REPRO_BENCH_SMOKE=1 python benchmarks/bench_stack_dispatch.py
    python -m pytest benchmarks/bench_stack_dispatch.py -q -s
"""

from __future__ import annotations

import os
import time
from typing import List, Tuple

from repro.core.consensus import ConsensusService
from repro.core.fd_broadcast import FDAtomicBroadcast
from repro.core.reliable_broadcast import ReliableBroadcast
from repro.failure_detectors.qos import QoSFailureDetectorFabric
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.process import SimProcess
from repro.sim.rng import RandomStreams
from repro.stacks import available_stacks
from repro.system import SystemConfig, build_system

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").lower() in ("1", "true", "yes")

#: Assemblies per measured case.
ITERATIONS = 50 if SMOKE else 500
N = 3
OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


#: Built once, outside the measured loops: the pre-registry seed wiring never
#: paid any name resolution per assembly, so the baseline must not either
#: (only the seed differs between iterations, and it feeds RandomStreams).
BASELINE_CONFIG = SystemConfig(n=N, stack="fd", seed=1)


def assemble_inline_fd(seed: int = 1) -> None:
    """The seed repository's hand-wired FD assembly (the pre-registry path)."""
    config = BASELINE_CONFIG
    sim = Simulator()
    rng = RandomStreams(seed)
    network = Network(sim, NetworkConfig(n=N, lambda_cpu=1.0, network_time=1.0))
    fabric = QoSFailureDetectorFabric(sim, network, rng, config.fd)
    for pid in range(N):
        process = SimProcess(sim, network, pid)
        process.failure_detector = fabric.detector(pid)
        rbcast = ReliableBroadcast(process)
        consensus = ConsensusService(process, rbcast)
        FDAtomicBroadcast(
            process,
            rbcast,
            consensus,
            renumber_coordinators=config.renumber_coordinators,
            pipeline_depth=config.pipeline_depth,
        )


def measure(label: str, assemble) -> Tuple[str, float, float]:
    """Assemble ``ITERATIONS`` systems; return (label, wall seconds, rate)."""
    started = time.perf_counter()
    for i in range(ITERATIONS):
        assemble(i + 1)
    elapsed = time.perf_counter() - started
    return label, elapsed, ITERATIONS / max(elapsed, 1e-9)


def run_benchmark() -> str:
    """Measure the baseline and every registry combination; format a report."""
    mode = "smoke" if SMOKE else "full"
    cases = [("inline fd (seed baseline)", assemble_inline_fd)]
    for stack in available_stacks():
        for fd_kind in ("qos", "heartbeat", "perfect"):
            label = f"registry {stack}" + ("" if fd_kind == "qos" else f"/{fd_kind}")
            cases.append(
                (
                    label,
                    lambda seed, stack=stack, fd_kind=fd_kind: build_system(
                        n=N, stack=stack, fd_kind=fd_kind, seed=seed
                    ),
                )
            )

    rows: List[Tuple[str, float, float]] = [measure(label, fn) for label, fn in cases]
    baseline_rate = rows[0][2]
    lines = [
        f"stack dispatch benchmark ({mode}: {ITERATIONS} assemblies/case, n={N})",
        f"{'case':<28} {'wall s':>8} {'asm/s':>10} {'vs inline':>10}",
    ]
    for label, elapsed, rate in rows:
        relative = baseline_rate / rate if rate else float("inf")
        lines.append(f"{label:<28} {elapsed:>8.3f} {rate:>10.0f} {relative:>9.2f}x")
    return "\n".join(lines)


def test_stack_dispatch_overhead():
    """Pytest entry point: run once, persist/print, and sanity-bound the cost.

    The registry adds one dict lookup and one function call per process; it
    must stay within a small constant factor of the inline baseline (the
    generous bound guards against accidental per-assembly pathologies, not
    micro-variance).
    """
    report = run_benchmark()
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(
        os.path.join(OUTPUT_DIR, "bench_stack_dispatch.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write(report + "\n")
    print()
    print(report)
    lines = report.splitlines()
    qos_row = next(line for line in lines if line.startswith("registry fd "))
    overhead = float(qos_row.rsplit(None, 1)[-1].rstrip("x"))
    assert overhead < 5.0, f"registry fd assembly is {overhead:.2f}x the inline baseline"


if __name__ == "__main__":
    print(run_benchmark())
