"""Benchmark the campaign engine: parallel fan-out and warm-cache replay.

Runs a reduced Figure 4 grid three ways -- serial, through a process pool,
and from a warm JSONL cache -- and prints the identical table each mode
produces.  On a multi-core machine the ``jobs`` run finishes roughly
``min(jobs, points)`` times faster than serial; the cached run is near-free.
"""

import shutil
import tempfile

from repro.campaigns import CampaignRunner, ResultStore
from repro.experiments import figure4
from repro.experiments.report import format_figure

GRID = dict(quick=True, seed=1, n_values=(3,), throughputs=(10, 50, 100, 200), num_messages=80)


def test_campaign_modes_agree(run_once):
    cache_dir = tempfile.mkdtemp(prefix="campaign-bench-")
    try:
        serial = figure4.run(**GRID)
        parallel = run_once(figure4.run, runner=CampaignRunner(jobs=4), **GRID)

        cold_runner = CampaignRunner(jobs=1, store=ResultStore(cache_dir))
        figure4.run(runner=cold_runner, **GRID)
        warm_runner = CampaignRunner(jobs=1, store=ResultStore(cache_dir))
        warm = figure4.run(runner=warm_runner, **GRID)

        print()
        print(format_figure(parallel))
        assert format_figure(parallel) == format_figure(serial)
        assert format_figure(warm) == format_figure(serial)
        assert warm_runner.last_run.executed == 0
        assert warm_runner.last_run.cache_hits == len(
            figure4.build_campaign(**GRID).points()
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
