"""Benchmark the campaign engine: dispatch overhead, warm pools, aggregation.

The pytest entry point runs a reduced Figure 4 grid three ways -- serial,
through a process pool, and from a warm JSONL cache -- and checks the
identical table each mode produces.

The module also runs standalone and emits
``benchmarks/output/BENCH_campaign.json`` with the scaling story of the
campaign overhaul:

* **dispatch** -- a many-small-point quick grid executed by the legacy
  dispatch (replicated in-bench: a fresh pool per run, one future per point
  fanned out up-front, an fsync-and-reopen per stored line) versus the
  current runner (persistent warm pool, chunked round-trips, bounded
  in-flight window, batched store durability), with bit-identical records
  asserted;
* **warm_pool** -- the same runner executing two campaigns back to back:
  the second run reuses the hot workers and skips the pool spin-up;
* **heavy** -- a heavy-point grid (n=7, long message streams) serial versus
  ``jobs=4``, the regime where parallel speedup comes from the simulations
  themselves rather than from dispatch overhead;
* **aggregation** -- one store with ~10^5 records loaded the legacy way
  (re-parsing ``results.jsonl`` dict by dict) versus through the columnar
  mirror, plus a grouped cross-campaign query over each form.

Wall-clock parallel speedup is gated (>= 3x) only when the machine has at
least 4 cores -- on fewer cores the dispatch-overhead ratio is reported
instead, which is what the single-core container can measure honestly.

Usage::

    python benchmarks/bench_campaign_runner.py        # full artifact
    REPRO_BENCH_SMOKE=1 python benchmarks/bench_campaign_runner.py
    python -m pytest benchmarks/bench_campaign_runner.py -q
"""

from __future__ import annotations

import gc
import json
import os
import shutil
import sys
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Dict, List

from repro.campaigns import CampaignRunner, ResultStore, cross_campaign_summary
from repro.campaigns.aggregate import load_store_table
from repro.campaigns.runner import execute_point
from repro.campaigns.spec import PointSpec, grid
from repro.experiments import figure4
from repro.experiments.report import format_figure

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").lower() in ("1", "true", "yes")
OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")
ARTIFACT = os.path.join(OUTPUT_DIR, "BENCH_campaign.json")

JOBS = 4
#: Many-small-point dispatch grid (the acceptance regime is >= 500 points).
QUICK_POINTS = 240 if SMOKE else 640
#: Heavy-point grid: fewer, slower simulations.
HEAVY_POINTS = 4 if SMOKE else 12
HEAVY_N = 7
HEAVY_MESSAGES = 60
#: Synthetic store size for the aggregation comparison.
AGG_RECORDS = 20_000 if SMOKE else 120_000
AGG_LATENCIES = 20

GRID = dict(quick=True, seed=1, n_values=(3,), throughputs=(10, 50, 100, 200), num_messages=80)


def cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def quick_grid(count: int, *, seed_base: int = 1):
    """``count`` distinct quick points (tiny n=3 normal-steady runs)."""
    throughputs = tuple(10.0 + index for index in range(count // 4))
    return grid(
        "normal-steady",
        stacks=("fd",),
        n_values=(3,),
        throughputs=throughputs,
        seeds=(seed_base, seed_base + 1, seed_base + 2, seed_base + 3),
        num_messages=6,
    )


def heavy_grid():
    throughputs = tuple(20.0 + 10.0 * index for index in range(HEAVY_POINTS))
    return grid(
        "normal-steady",
        stacks=("fd",),
        n_values=(HEAVY_N,),
        throughputs=throughputs,
        num_messages=HEAVY_MESSAGES,
    )


# ------------------------------------------------------------------ legacy path


def run_legacy(points: List[PointSpec], jobs: int, store_dir: str) -> Dict[str, Any]:
    """The pre-overhaul dispatch, replicated for the A/B comparison.

    Fresh ``ProcessPoolExecutor`` per run; every point is its own future,
    all submitted up-front; every record is persisted by reopening the
    JSONL, writing one line and fsyncing -- the per-point costs the current
    runner amortises away.
    """
    records: Dict[str, Dict[str, Any]] = {}
    path = os.path.join(store_dir, "results.jsonl")
    os.makedirs(store_dir, exist_ok=True)
    with ProcessPoolExecutor(max_workers=jobs) as executor:
        futures = {executor.submit(execute_point, point): point for point in points}
        while futures:
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                point = futures.pop(future)
                record = future.result()
                records[point.key()] = record
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(
                        json.dumps(
                            {"key": point.key(), "point": point.as_dict(), "record": record},
                            sort_keys=True,
                        )
                        + "\n"
                    )
                    handle.flush()
                    os.fsync(handle.fileno())
    return records


# ------------------------------------------------------------------ sections


def bench_dispatch(workdir: str) -> Dict[str, Any]:
    campaign = quick_grid(QUICK_POINTS)
    points = campaign.points()

    started = time.perf_counter()
    serial_run = CampaignRunner(jobs=1).run(campaign)
    serial_wall = time.perf_counter() - started

    started = time.perf_counter()
    legacy_records = run_legacy(points, JOBS, os.path.join(workdir, "legacy"))
    legacy_wall = time.perf_counter() - started

    new_store = ResultStore(os.path.join(workdir, "new"), durability="batch")
    with CampaignRunner(jobs=JOBS, store=new_store) as runner:
        started = time.perf_counter()
        cold_run = runner.run(campaign)
        new_cold_wall = time.perf_counter() - started

        rerun = quick_grid(QUICK_POINTS, seed_base=101)  # fresh points, hot pool
        started = time.perf_counter()
        warm_run = runner.run(rerun)
        new_warm_wall = time.perf_counter() - started
    new_store.close()

    assert legacy_records == serial_run.records, "legacy dispatch diverged from serial"
    assert cold_run.records == serial_run.records, "chunked dispatch diverged from serial"
    assert warm_run.executed == len(points)

    cores = cpu_count()
    ideal = serial_wall / min(JOBS, cores)
    return {
        "points": len(points),
        "jobs": JOBS,
        "serial_wall_s": round(serial_wall, 4),
        "legacy_wall_s": round(legacy_wall, 4),
        "new_cold_wall_s": round(new_cold_wall, 4),
        "new_warm_wall_s": round(new_warm_wall, 4),
        "points_per_s_legacy": int(len(points) / legacy_wall),
        "points_per_s_new": int(len(points) / new_warm_wall),
        "speedup_vs_legacy": round(legacy_wall / new_warm_wall, 2),
        # Overhead = wall beyond an ideal fan-out of the serial sim time;
        # the honest metric on machines where cores cap the wall-clock.
        "legacy_overhead_s": round(max(0.0, legacy_wall - ideal), 4),
        "new_overhead_s": round(max(0.0, new_warm_wall - ideal), 4),
        "records_identical": True,
    }


def bench_warm_pool(workdir: str) -> Dict[str, Any]:
    first = quick_grid(max(40, QUICK_POINTS // 4), seed_base=201)
    second = quick_grid(max(40, QUICK_POINTS // 4), seed_base=301)
    with CampaignRunner(jobs=JOBS) as runner:
        started = time.perf_counter()
        runner.run(first)
        cold_wall = time.perf_counter() - started  # includes pool spin-up
        started = time.perf_counter()
        runner.run(second)
        warm_wall = time.perf_counter() - started
        checkouts = runner.pool.checkouts
    assert checkouts == 2, "warm pool was not reused across runs"
    return {
        "points_per_run": len(first.points()),
        "cold_wall_s": round(cold_wall, 4),
        "warm_wall_s": round(warm_wall, 4),
        "spinup_saved_s": round(max(0.0, cold_wall - warm_wall), 4),
    }


def bench_heavy() -> Dict[str, Any]:
    campaign = heavy_grid()
    started = time.perf_counter()
    serial_run = CampaignRunner(jobs=1).run(campaign)
    serial_wall = time.perf_counter() - started
    with CampaignRunner(jobs=JOBS) as runner:
        started = time.perf_counter()
        parallel_run = runner.run(campaign)
        parallel_wall = time.perf_counter() - started
    assert parallel_run.records == serial_run.records
    return {
        "points": len(campaign.points()),
        "n": HEAVY_N,
        "num_messages": HEAVY_MESSAGES,
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "speedup": round(serial_wall / parallel_wall, 2),
        "points_per_s": round(len(campaign.points()) / parallel_wall, 2),
    }


def synthetic_record(index: int) -> Dict[str, Any]:
    base = (index % 97) / 97.0
    return {
        "type": "scenario",
        "scenario": "normal-steady",
        "algorithm": "fd" if index % 2 else "gm",
        "n": 3 + (index % 4) * 4,
        "throughput": float(10 * (1 + index % 5)),
        "measured": AGG_LATENCIES,
        "undelivered": index % 3,
        "events": 1000 + index,
        "duration": 400.0,
        "latencies": [base + 0.1 * position for position in range(AGG_LATENCIES)],
    }


def bench_aggregation(workdir: str) -> Dict[str, Any]:
    directory = os.path.join(workdir, "agg")
    store = ResultStore(directory, durability="batch", auto_compact_dupes=0)
    for index in range(AGG_RECORDS):
        store.put(
            f"key-{index:08d}",
            synthetic_record(index),
            point={
                "kind": "normal-steady",
                "stack": "fd" if index % 2 else "gm",
                "n": 3 + (index % 4) * 4,
                "seed": index,
            },
        )
    store.close()  # leaves a fresh mirror beside the JSONL
    del store
    gc.collect()

    # Legacy load: re-parse the JSONL into one dict per record.
    started = time.perf_counter()
    legacy_store = ResultStore(directory, mirror=False)
    jsonl_parse_s = time.perf_counter() - started
    started = time.perf_counter()
    legacy_groups: Dict[Any, float] = {}
    for _, point, record in legacy_store.entries():
        group = (point["kind"], point["stack"], point["n"], record["throughput"])
        legacy_groups[group] = legacy_groups.get(group, 0.0) + sum(record["latencies"])
    legacy_query_s = time.perf_counter() - started
    legacy_store.close()
    del legacy_store
    gc.collect()

    # Columnar load: bulk frombytes reads of the mirror.
    started = time.perf_counter()
    table = load_store_table(directory)
    mirror_read_s = time.perf_counter() - started
    assert table.count == AGG_RECORDS
    del table
    gc.collect()

    started = time.perf_counter()
    summary = cross_campaign_summary([directory])
    columnar_query_s = time.perf_counter() - started
    assert sum(entry["records"] for entry in summary) == AGG_RECORDS

    return {
        "records": AGG_RECORDS,
        "jsonl_parse_s": round(jsonl_parse_s, 4),
        "mirror_read_s": round(mirror_read_s, 4),
        "load_speedup": round(jsonl_parse_s / mirror_read_s, 1),
        "legacy_query_s": round(jsonl_parse_s + legacy_query_s, 4),
        "columnar_query_s": round(mirror_read_s + columnar_query_s, 4),
        "query_speedup": round(
            (jsonl_parse_s + legacy_query_s) / (mirror_read_s + columnar_query_s), 1
        ),
        "groups": len(summary),
    }


# ------------------------------------------------------------------ artifact


def run_benchmark() -> Dict[str, Any]:
    workdir = tempfile.mkdtemp(prefix="campaign-bench-")
    try:
        report: Dict[str, Any] = {
            "mode": "smoke" if SMOKE else "full",
            "cpu_count": cpu_count(),
            "dispatch": bench_dispatch(workdir),
            "warm_pool": bench_warm_pool(workdir),
            "heavy": bench_heavy(),
            "aggregation": bench_aggregation(workdir),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    gates: Dict[str, Any] = {
        "records_identical": report["dispatch"]["records_identical"],
        "aggregation_load_10x": report["aggregation"]["load_speedup"] >= 10.0,
    }
    # The >= 3x wall-clock gate needs real cores; on fewer the dispatch
    # overhead ratio carries the comparison instead.
    if report["cpu_count"] >= 4:
        gates["dispatch_3x_vs_legacy"] = report["dispatch"]["speedup_vs_legacy"] >= 3.0
    else:
        gates["dispatch_3x_vs_legacy"] = None
        overhead = report["dispatch"]["new_overhead_s"]
        gates["dispatch_overhead_reduced"] = (
            overhead < report["dispatch"]["legacy_overhead_s"]
        )
    report["gates"] = gates
    return report


def write_artifact(report: Dict[str, Any]) -> str:
    """Persist ``report`` as ``BENCH_campaign.json``; return the path."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return ARTIFACT


def gates_pass(report: Dict[str, Any]) -> bool:
    return all(value is not False for value in report["gates"].values())


# ------------------------------------------------------------------ pytest


def test_campaign_modes_agree(run_once):
    cache_dir = tempfile.mkdtemp(prefix="campaign-bench-")
    try:
        serial = figure4.run(**GRID)
        parallel = run_once(figure4.run, runner=CampaignRunner(jobs=4), **GRID)

        cold_runner = CampaignRunner(jobs=1, store=ResultStore(cache_dir))
        figure4.run(runner=cold_runner, **GRID)
        warm_runner = CampaignRunner(jobs=1, store=ResultStore(cache_dir))
        warm = figure4.run(runner=warm_runner, **GRID)

        print()
        print(format_figure(parallel))
        assert format_figure(parallel) == format_figure(serial)
        assert format_figure(warm) == format_figure(serial)
        assert warm_runner.last_run.executed == 0
        assert warm_runner.last_run.cache_hits == len(
            figure4.build_campaign(**GRID).points()
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    artifact = run_benchmark()
    print(json.dumps(artifact, indent=2))
    print(f"\nwritten to {write_artifact(artifact)}", file=sys.stderr)
    sys.exit(0 if gates_pass(artifact) else 1)
