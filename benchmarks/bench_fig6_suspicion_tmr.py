"""Benchmark regenerating Figure 6: latency vs mistake recurrence time T_MR.

Paper claims reproduced here: the GM algorithm is very sensitive to wrong
suspicions (its latency explodes, or the point does not complete, at small
T_MR) while the FD algorithm degrades only mildly; the two curves join for
very large T_MR.
"""

from benchmarks.conftest import save_and_print
from repro.experiments import figure6
from repro.experiments.shape_checks import check_figure6


def test_figure6_suspicion_tmr(run_once):
    result = run_once(figure6.run, quick=True, seed=1, num_messages=60)
    checks = check_figure6(result)
    save_and_print(result, checks)
    assert checks["gm_much_worse_at_small_tmr_n3_T10"]
    assert checks["curves_join_at_large_tmr_n3_T10"]
