"""Reformation micro-benchmark: time-to-reformation and simulator throughput.

Drives the canonical view-majority-loss blocked state (wrong-suspicion
shrink + blocking crash) under the ``gm-reform`` stack across a batch of
seeds and group sizes, reporting

* **ttr** -- simulated time from the blocking crash to the first installed
  reformed view (the recovery-latency metric the scenario exists for), and
* **events/s** -- wall-clock simulator throughput of the recovery runs, so
  a performance regression in the reformation path (timer churn, the
  full-set consensus, the rejoin state transfers) shows up in CI logs.

CI runs it in smoke mode (``REPRO_BENCH_SMOKE=1``) on every PR, alongside
``bench_scenarios`` and ``bench_stack_dispatch``.

Usage::

    python benchmarks/bench_reformation.py
    REPRO_BENCH_SMOKE=1 python benchmarks/bench_reformation.py
    python -m pytest benchmarks/bench_reformation.py -q -s
"""

from __future__ import annotations

import os
import time

from repro.scenarios.extended import run_view_majority_loss
from repro.system import SystemConfig

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").lower() in ("1", "true", "yes")

SEEDS = range(1, 4) if SMOKE else range(1, 21)
MESSAGES = 20 if SMOKE else 120
THROUGHPUT = 100.0
GROUP_SIZES = (3,) if SMOKE else (3, 5, 7)
REFORMATION_TIMEOUTS = (500.0,) if SMOKE else (250.0, 500.0, 1000.0)
OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def run_benchmark() -> str:
    """Run the seed batch per (n, timeout) cell; return the formatted report."""
    mode = "smoke" if SMOKE else "full"
    lines = [
        f"reformation benchmark ({mode}: {len(list(SEEDS))} seeds, "
        f"{MESSAGES} msgs/run)",
        f"{'n':>3} {'reform ms':>10} {'recovered':>10} {'ttr ms':>9} "
        f"{'events':>9} {'wall s':>8} {'events/s':>11}",
    ]
    for n in GROUP_SIZES:
        for timeout in REFORMATION_TIMEOUTS:
            ttrs = []
            events = 0
            recovered = 0
            started = time.perf_counter()
            for seed in SEEDS:
                result = run_view_majority_loss(
                    SystemConfig(n=n, stack="gm-reform", seed=seed),
                    THROUGHPUT,
                    detection_time=10.0,
                    reformation_timeout=timeout,
                    num_messages=MESSAGES,
                )
                events += result.events
                if result.params["reformed"]:
                    recovered += 1
                    ttrs.append(result.params["time_to_reformation"])
            elapsed = time.perf_counter() - started
            mean_ttr = sum(ttrs) / len(ttrs) if ttrs else float("nan")
            lines.append(
                f"{n:>3} {timeout:>10.0f} {recovered:>7}/{len(list(SEEDS)):<2} "
                f"{mean_ttr:>9.1f} {events:>9} {elapsed:>8.3f} "
                f"{events / max(elapsed, 1e-9):>11.0f}"
            )
    return "\n".join(lines)


def test_reformation_throughput():
    """Pytest entry point: run the batch once and persist/print the report."""
    report = run_benchmark()
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, "bench_reformation.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(report + "\n")
    print()
    print(report)


if __name__ == "__main__":
    print(run_benchmark())
