"""Benchmark regenerating Figure 8: latency overhead in the crash-transient scenario.

Paper claims reproduced here: after the crash of the coordinator/sequencer,
both algorithms recover with an overhead that is a small multiple of the
normal-steady latency, and the FD algorithm is at or below the GM algorithm
(the effect is clearest at low throughput and for T_D = 0; see EXPERIMENTS.md
for the discussion of the higher-throughput points).
"""

from benchmarks.conftest import save_and_print
from repro.experiments import figure8
from repro.experiments.shape_checks import check_figure8


def test_figure8_crash_transient(run_once):
    result = run_once(figure8.run, quick=True, seed=1, num_runs=6)
    checks = check_figure8(result)
    save_and_print(result, checks)
    assert checks["overhead_moderate_n3"]
    assert checks["overhead_moderate_n7"]
    assert checks["fd_wins_at_low_T_n3"]
