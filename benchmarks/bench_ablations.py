"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's figures:

* effect of the ``lambda`` parameter of the network model (the paper's
  published plots use lambda = 1; its extended version studies other values),
* effect of the ordering pipeline depth (aggregation vs responsiveness),
* the coordinator re-numbering optimisation of the FD algorithm in the
  crash-steady scenario with a *coordinator* crash,
* uniform vs non-uniform variant of the GM algorithm (Section 8 discussion).
"""

from benchmarks.conftest import save_and_print
from repro import SystemConfig
from repro.experiments.series import FigurePoint, FigureResult, Series
from repro.scenarios.steady import run_crash_steady, run_normal_steady

MESSAGES = 120


def _point(x, result):
    summary = result.summary()
    return FigurePoint(
        x=x,
        mean=summary.mean,
        ci=summary.ci_halfwidth,
        samples=summary.count,
        completed=result.completed,
    )


def test_lambda_sweep(run_once):
    """Latency vs throughput for different host-speed ratios (lambda)."""

    def sweep():
        figure = FigureResult(
            figure="A1",
            title="Ablation: effect of lambda (host CPU cost) on normal-steady latency",
            x_label="throughput [1/s]",
            y_label="min latency [ms]",
        )
        for lambda_cpu in (0.5, 1.0, 2.0):
            series = Series(label=f"FD, n=3, lambda={lambda_cpu:g}")
            for throughput in (10, 100, 300):
                config = SystemConfig(n=3, stack="fd", seed=1, lambda_cpu=lambda_cpu)
                series.add(
                    _point(throughput, run_normal_steady(config, throughput, num_messages=MESSAGES))
                )
            figure.add_series(series)
        return figure

    figure = run_once(sweep)
    save_and_print(figure)
    # Higher lambda means more expensive hosts, hence higher latency.
    low = figure.get_series("FD, n=3, lambda=0.5").point_at(100).mean
    high = figure.get_series("FD, n=3, lambda=2").point_at(100).mean
    assert high > low


def test_pipeline_depth(run_once):
    """Aggregation depth: latency under load for pipeline depths 1, 2 and 4."""

    def sweep():
        figure = FigureResult(
            figure="A2",
            title="Ablation: ordering pipeline depth vs latency (normal-steady, n=3)",
            x_label="throughput [1/s]",
            y_label="min latency [ms]",
        )
        for depth in (1, 2, 4):
            series = Series(label=f"FD, depth={depth}")
            for throughput in (100, 500):
                config = SystemConfig(n=3, stack="fd", seed=1, pipeline_depth=depth)
                series.add(
                    _point(throughput, run_normal_steady(config, throughput, num_messages=MESSAGES))
                )
            figure.add_series(series)
        return figure

    figure = run_once(sweep)
    save_and_print(figure)
    # Deeper pipelines aggregate less and cost more under load.
    assert (
        figure.get_series("FD, depth=4").point_at(500).mean
        >= figure.get_series("FD, depth=1").point_at(500).mean
    )


def test_coordinator_renumbering(run_once):
    """Crash-steady latency with a *coordinator* crash, with and without re-numbering."""

    def sweep():
        figure = FigureResult(
            figure="A3",
            title="Ablation: coordinator re-numbering after a coordinator crash (crash-steady)",
            x_label="throughput [1/s]",
            y_label="min latency [ms]",
        )
        for renumber in (True, False):
            label = "FD, renumbering on" if renumber else "FD, renumbering off"
            series = Series(label=label)
            for throughput in (50, 200):
                config = SystemConfig(
                    n=3, stack="fd", seed=1, renumber_coordinators=renumber
                )
                result = run_crash_steady(
                    config, throughput, crashed=[0], num_messages=MESSAGES
                )
                series.add(_point(throughput, result))
            figure.add_series(series)
        return figure

    figure = run_once(sweep)
    save_and_print(figure)
    with_renumbering = figure.get_series("FD, renumbering on").point_at(200).mean
    without = figure.get_series("FD, renumbering off").point_at(200).mean
    # The optimisation must make the steady state after a coordinator crash
    # at least as fast as without it.
    assert with_renumbering <= without * 1.05


def test_uniform_vs_non_uniform_gm(run_once):
    """The non-uniform GM variant trades guarantees for two multicasts per message."""

    def sweep():
        figure = FigureResult(
            figure="A4",
            title="Ablation: uniform vs non-uniform GM algorithm (normal-steady, n=3)",
            x_label="throughput [1/s]",
            y_label="min latency [ms]",
        )
        for algorithm, label in (("gm", "GM (uniform)"), ("gm-nonuniform", "GM (non-uniform)")):
            series = Series(label=label)
            for throughput in (10, 100, 300):
                config = SystemConfig(n=3, stack=algorithm, seed=1)
                series.add(
                    _point(throughput, run_normal_steady(config, throughput, num_messages=MESSAGES))
                )
            figure.add_series(series)
        return figure

    figure = run_once(sweep)
    save_and_print(figure)
    uniform = figure.get_series("GM (uniform)").point_at(100).mean
    non_uniform = figure.get_series("GM (non-uniform)").point_at(100).mean
    assert non_uniform < uniform
