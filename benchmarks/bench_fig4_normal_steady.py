"""Benchmark regenerating Figure 4: latency vs throughput, normal-steady.

Paper claim reproduced here: the FD and GM algorithms have identical
performance in runs with neither crashes nor suspicions; latency increases
with the throughput and with the number of processes.
"""

from benchmarks.conftest import save_and_print
from repro.experiments import figure4
from repro.experiments.shape_checks import check_figure4


def test_figure4_normal_steady(run_once):
    result = run_once(figure4.run, quick=True, seed=1)
    checks = check_figure4(result)
    save_and_print(result, checks)
    assert checks["fd_equals_gm_n3"]
    assert checks["fd_equals_gm_n7"]
    assert checks["latency_increases_with_T_n3"]
    assert checks["n7_slower_than_n3"]
