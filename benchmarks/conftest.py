"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper (in reduced-size
"quick" form so the whole suite completes on one machine), prints the same
rows/series the paper reports and saves them under ``benchmarks/output/`` so
they can be inspected after the run and pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Callable, Dict

import pytest

from repro.experiments.report import format_figure
from repro.experiments.series import FigureResult

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def save_and_print(figure: FigureResult, checks: Dict[str, bool] = None) -> str:
    """Render ``figure``, print it, persist it and return the text."""
    text = format_figure(figure)
    if checks:
        lines = [text, ""]
        for key, ok in sorted(checks.items()):
            lines.append(f"  shape check {key}: {'PASS' if ok else 'FAIL'}")
        text = "\n".join(lines)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, f"figure{figure.figure}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print()
    print(text)
    return text


@pytest.fixture
def run_once(benchmark):
    """Run the benchmarked callable exactly once (the sweeps are heavy)."""

    def runner(func: Callable, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
