"""Scenario-engine throughput benchmark: simulator events/sec per scenario.

Runs a fixed grid of scenario kinds (including the fault-injection
scenarios: transient partitions, WAN topologies, gray failures) through the shared
:class:`repro.scenarios.runner.ScenarioRunner` and reports how many simulated
events per wall-clock second the hot path sustains.  CI runs it in smoke mode
(``REPRO_BENCH_SMOKE=1``, tiny workloads) on every PR so that performance
regressions in the scenario engine show up in the job logs.

Usage::

    python benchmarks/bench_scenarios.py          # full grid
    REPRO_BENCH_SMOKE=1 python benchmarks/bench_scenarios.py
    python -m pytest benchmarks/bench_scenarios.py -q -s
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Tuple

from repro.scenarios.extended import (
    run_asymmetric_qos,
    run_churn_steady,
    run_correlated_crash,
    run_gray_degradation,
    run_partition_transient,
    run_view_majority_loss,
    run_wan_steady,
)
from repro.scenarios.steady import (
    run_crash_steady,
    run_normal_steady,
    run_suspicion_steady,
)
from repro.scenarios.transient import run_crash_transient
from repro.system import SystemConfig

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").lower() in ("1", "true", "yes")

#: Measured messages per steady point / runs per transient point.
MESSAGES = 20 if SMOKE else 200
RUNS = 2 if SMOKE else 10
THROUGHPUT = 100.0
OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def scenario_grid() -> List[Tuple[str, Callable[[str], object]]]:
    """The fixed benchmark grid: one callable per scenario kind."""

    def cfg(algorithm: str, n: int = 3) -> SystemConfig:
        return SystemConfig(n=n, stack=algorithm, seed=1)

    return [
        (
            "normal-steady",
            lambda a: run_normal_steady(cfg(a), THROUGHPUT, num_messages=MESSAGES),
        ),
        (
            "crash-steady",
            lambda a: run_crash_steady(
                cfg(a), THROUGHPUT, crashed=[2], num_messages=MESSAGES
            ),
        ),
        (
            "suspicion-steady",
            lambda a: run_suspicion_steady(
                cfg(a), THROUGHPUT, mistake_recurrence_time=500.0, num_messages=MESSAGES
            ),
        ),
        (
            "crash-transient",
            lambda a: run_crash_transient(
                cfg(a), THROUGHPUT, detection_time=10.0, num_runs=RUNS
            ),
        ),
        (
            "correlated-crash",
            lambda a: run_correlated_crash(
                cfg(a, n=5), THROUGHPUT, crashed=[3, 4], num_messages=MESSAGES
            ),
        ),
        (
            "churn-steady",
            lambda a: run_churn_steady(
                cfg(a),
                THROUGHPUT,
                churn_rate=2.0,
                mean_downtime=150.0,
                detection_time=10.0,
                num_messages=MESSAGES,
            ),
        ),
        (
            "asymmetric-qos",
            lambda a: run_asymmetric_qos(
                cfg(a), THROUGHPUT, mistake_recurrence_time=300.0, num_messages=MESSAGES
            ),
        ),
        (
            "view-majority-loss",
            # The GM slot runs the reformation stack: the plain GM algorithm
            # deadlocks in this scenario by design (that is the point of the
            # scenario), which would only benchmark an idle simulator.
            lambda a: run_view_majority_loss(
                cfg("gm-reform" if a == "gm" else a),
                THROUGHPUT,
                detection_time=10.0,
                num_messages=MESSAGES,
            ),
        ),
        (
            "partition-transient",
            # Same stack mapping: healing a minority split exercises the
            # reformation path, which plain GM cannot complete.
            lambda a: run_partition_transient(
                cfg("gm-reform" if a == "gm" else a),
                THROUGHPUT,
                partition_duration=500.0,
                detection_time=10.0,
                num_messages=MESSAGES,
            ),
        ),
        (
            "wan-steady",
            lambda a: run_wan_steady(
                cfg(a), THROUGHPUT, profile="wan-3dc", num_messages=MESSAGES
            ),
        ),
        (
            "gray-degradation",
            lambda a: run_gray_degradation(
                cfg(a),
                THROUGHPUT,
                degrade_factor=4.0,
                link_loss=0.1,
                num_messages=MESSAGES,
            ),
        ),
    ]


def run_benchmark() -> str:
    """Run the grid for both algorithms; return the formatted report."""
    mode = "smoke" if SMOKE else "full"
    lines = [
        f"scenario engine benchmark ({mode}: {MESSAGES} msgs/point, {RUNS} transient runs)",
        f"{'scenario':<18} {'algo':<6} {'events':>9} {'wall s':>8} {'events/s':>12}",
    ]
    total_events = 0
    total_elapsed = 0.0
    for name, runner in scenario_grid():
        for algorithm in ("fd", "gm"):
            started = time.perf_counter()
            result = runner(algorithm)
            elapsed = time.perf_counter() - started
            events = getattr(result, "events", None)
            if events is None:
                # TransientResult carries no event counter; report runs instead.
                events = len(result.latencies) + result.failed_runs
                rate = f"{events / max(elapsed, 1e-9):>9.0f} runs"
            else:
                rate = f"{events / max(elapsed, 1e-9):>12.0f}"
                total_events += events
                total_elapsed += elapsed
            lines.append(f"{name:<18} {algorithm:<6} {events:>9} {elapsed:>8.3f} {rate}")
    if total_elapsed:
        lines.append(
            f"{'steady total':<18} {'':<6} {total_events:>9} {total_elapsed:>8.3f} "
            f"{total_events / total_elapsed:>12.0f}"
        )
    return "\n".join(lines)


def test_scenario_engine_throughput():
    """Pytest entry point: run the grid once and persist/print the report."""
    report = run_benchmark()
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "bench_scenarios.txt"), "w", encoding="utf-8") as fh:
        fh.write(report + "\n")
    print()
    print(report)


if __name__ == "__main__":
    print(run_benchmark())
