"""Service load-testing benchmark: capacity curves for the replicated KV store.

Sweeps an open-loop client population over offered load for three protocol
stacks, with sequencer request batching off and on, and reports the goodput
and client-perceived response-time percentiles (p50/p99/p999) at every point.
The headline number is the saturation throughput per (stack, batch) pair and
the batching gain -- the acceptance criterion is a >= 2x saturation-goodput
gain at equal n from amortizing the ordering step over ``max_batch`` requests.

CI runs it in smoke mode (``REPRO_BENCH_SMOKE=1``, a reduced sweep) on every
PR and uploads ``benchmarks/output/BENCH_service.json`` as an artifact so the
capacity curve is inspectable per commit.

Usage::

    python benchmarks/bench_service_load.py           # full sweep
    REPRO_BENCH_SMOKE=1 python benchmarks/bench_service_load.py
    python -m pytest benchmarks/bench_service_load.py -q -s
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.scenarios import run_service_load
from repro.system import SystemConfig

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").lower() in ("1", "true", "yes")

STACKS = ("fd", "gm", "gm-reform")
BATCHES = (0, 8)
#: Offered load sweep (requests/s) -- the top points sit far above capacity.
OFFERED_LOADS = (1000.0, 8000.0) if SMOKE else (500.0, 1000.0, 2000.0, 4000.0, 8000.0)
REQUESTS = 80 if SMOKE else 250
N = 4
SEED = 87
MAX_DELAY = 2.0
MAX_INFLIGHT = 128
MAX_QUEUE = 256
#: Minimum saturation-goodput gain from batching, per stack (acceptance bar).
GAIN_GATE = 2.0
OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def run_point(stack: str, max_batch: int, offered_load: float) -> Dict[str, float]:
    """One open-loop load point; returns the capacity-curve row."""
    config = SystemConfig(
        n=N,
        stack=stack,
        seed=SEED,
        max_batch=max_batch,
        max_delay=MAX_DELAY if max_batch else 0.0,
    )
    result = run_service_load(
        config,
        offered_load,
        num_requests=REQUESTS,
        max_inflight=MAX_INFLIGHT,
        max_queue=MAX_QUEUE,
    )
    params = result.params
    return {
        "stack": stack,
        "max_batch": max_batch,
        "offered_load": offered_load,
        "goodput": params["goodput"],
        "p50": params["p50"],
        "p99": params["p99"],
        "p999": params["p999"],
        "shed": params["outcomes"]["shed"],
        "replicas_consistent": params["replicas_consistent"],
    }


def run_benchmark() -> Dict[str, object]:
    """Run the sweep and assemble the JSON payload."""
    rows: List[Dict[str, float]] = []
    for stack in STACKS:
        for max_batch in BATCHES:
            for offered_load in OFFERED_LOADS:
                rows.append(run_point(stack, max_batch, offered_load))

    saturation: Dict[str, Dict[str, float]] = {}
    gains: Dict[str, float] = {}
    for stack in STACKS:
        best = {
            max_batch: max(
                row["goodput"]
                for row in rows
                if row["stack"] == stack and row["max_batch"] == max_batch
            )
            for max_batch in BATCHES
        }
        saturation[stack] = {f"batch_{k}": v for k, v in best.items()}
        gains[stack] = best[BATCHES[1]] / best[BATCHES[0]]

    return {
        "mode": "smoke" if SMOKE else "full",
        "n": N,
        "seed": SEED,
        "requests_per_point": REQUESTS,
        "offered_loads": list(OFFERED_LOADS),
        "stacks": list(STACKS),
        "batches": list(BATCHES),
        "max_inflight": MAX_INFLIGHT,
        "max_queue": MAX_QUEUE,
        "gain_gate": GAIN_GATE,
        "points": rows,
        "saturation_goodput": saturation,
        "batching_gain": gains,
    }


def format_report(payload: Dict[str, object]) -> str:
    """Human-readable capacity-curve table for the job log."""
    lines = [
        f"service load benchmark ({payload['mode']}: "
        f"{payload['requests_per_point']} reqs/point, n={payload['n']})",
        f"{'stack':<10} {'batch':>5} {'offered/s':>10} {'goodput/s':>10} "
        f"{'p50 ms':>8} {'p99 ms':>8} {'p999 ms':>9} {'shed':>5}",
    ]
    for row in payload["points"]:
        lines.append(
            f"{row['stack']:<10} {row['max_batch']:>5} {row['offered_load']:>10.0f} "
            f"{row['goodput']:>10.0f} {row['p50']:>8.2f} {row['p99']:>8.2f} "
            f"{row['p999']:>9.2f} {row['shed']:>5}"
        )
    lines.append("")
    lines.append(f"{'stack':<10} {'sat (k=0)':>10} {'sat (k=8)':>10} {'gain':>6}")
    for stack in payload["stacks"]:
        sat = payload["saturation_goodput"][stack]
        lines.append(
            f"{stack:<10} {sat['batch_0']:>10.0f} {sat['batch_8']:>10.0f} "
            f"{payload['batching_gain'][stack]:>5.2f}x"
        )
    return "\n".join(lines)


def write_artifacts(payload: Dict[str, object], report: str) -> None:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(
        os.path.join(OUTPUT_DIR, "bench_service.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write(report + "\n")
    with open(
        os.path.join(OUTPUT_DIR, "BENCH_service.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_service_load_capacity_curve():
    """Pytest entry point: run the sweep, persist artifacts, gate the gain."""
    payload = run_benchmark()
    report = format_report(payload)
    write_artifacts(payload, report)
    print()
    print(report)
    for row in payload["points"]:
        assert row["replicas_consistent"], (
            f"replicas diverged at {row['stack']} batch={row['max_batch']} "
            f"offered={row['offered_load']}"
        )
    for stack, gain in payload["batching_gain"].items():
        assert gain >= GAIN_GATE, (
            f"batching gain for {stack} is {gain:.2f}x "
            f"(gate {GAIN_GATE:.1f}x at saturation)"
        )


if __name__ == "__main__":
    payload = run_benchmark()
    report = format_report(payload)
    write_artifacts(payload, report)
    print(report)
