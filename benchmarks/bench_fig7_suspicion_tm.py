"""Benchmark regenerating Figure 7: latency vs mistake duration T_M.

Paper claim reproduced here: with the mistake recurrence time fixed, the GM
algorithm is also sensitive to the mistake *duration* (wrongly suspected
processes are excluded and must rejoin, which costs about T_M plus two view
changes), whereas the FD algorithm barely reacts.
"""

from benchmarks.conftest import save_and_print
from repro.experiments import figure7
from repro.experiments.shape_checks import check_figure7


def test_figure7_suspicion_tm(run_once):
    result = run_once(figure7.run, quick=True, seed=1, num_messages=60)
    checks = check_figure7(result)
    save_and_print(result, checks)
    assert checks["gm_more_sensitive_to_tm_n3_T10"]
