"""Benchmark regenerating Figure 5: latency vs throughput, crash-steady.

Paper claims reproduced here: latency decreases when processes have crashed
long ago (they stop loading the network); for the same number of crashes the
GM algorithm is at least as good as the FD algorithm, with the advantage
growing with the number of crashed processes (smaller views need fewer
acknowledgements).
"""

from benchmarks.conftest import save_and_print
from repro.experiments import figure5
from repro.experiments.shape_checks import check_figure5


def test_figure5_crash_steady(run_once):
    result = run_once(figure5.run, quick=True, seed=1)
    checks = check_figure5(result)
    save_and_print(result, checks)
    assert checks.get("gm_not_worse_than_fd_n3", True)
    assert checks.get("gm_not_worse_than_fd_n7", True)
    assert checks.get("gm_beats_fd_with_3_crashes_n7", True)
