"""Instrumentation overhead benchmark: the zero-overhead off path, gated.

The instrumentation layer (:mod:`repro.obs`) promises a *zero-overhead off
path*: with tracing off, the simulator selects a hook-free run loop up
front, the network branches on a ``None`` check, and the protocol layers
call empty methods on the :data:`repro.obs.NULL` singleton.  This benchmark
holds that promise to a number:

* **kernel** -- the 20k-chained-ticks microbenchmark of
  ``bench_simulator_micro``, run three ways: a hand-replicated *seed loop*
  (the pre-instrumentation event loop, pumped over the same queue
  internals), the *off* path (``Simulator.run()`` with no instrumentation)
  and the *on* path (with an :class:`~repro.obs.Instrumentation` attached).
  The off path must stay within ``GATE`` of the seed-loop control -- this
  is the in-process equivalent of "within 2 % of the seed repository".
* **end-to-end fd / gm** -- 300 messages ordered by each algorithm, off vs
  on, reporting the full-stack cost of enabling metrics + event recording.

Artifacts land in ``benchmarks/output/``: the human-readable report, one
``instrumentation-{off,on}.metrics.json`` timing payload per mode (the on
payload embeds the instrumented end-to-end runs' counter snapshots) and
``BENCH_instrumentation.json``, the first point of the perf trajectory.

Usage::

    python benchmarks/bench_instrumentation.py
    REPRO_BENCH_SMOKE=1 python benchmarks/bench_instrumentation.py
    python -m pytest benchmarks/bench_instrumentation.py -q -s
"""

from __future__ import annotations

import heapq
import json
import os
import time
from typing import Callable, Dict, Tuple

from repro import SystemConfig, build_system
from repro.obs import Instrumentation, metrics_snapshot
from repro.sim.engine import Simulator

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").lower() in ("1", "true", "yes")

#: Chained kernel events per measurement.
TICKS = 4_000 if SMOKE else 20_000
#: End-to-end messages per measurement.
MESSAGES = 60 if SMOKE else 300
#: Interleaved measurement rounds; the best (minimum) time of each mode is
#: compared, which damps scheduler noise far better than averaging.
ROUNDS = 3 if SMOKE else 5
#: Allowed off-path overhead over the seed-loop control.  The full-size run
#: gates at the PR's 2 %; smoke mode measures far fewer events per round, so
#: timer granularity and CI-runner noise need more headroom.
GATE = 0.15 if SMOKE else 0.02

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


# ------------------------------------------------------------------ kernel


def _chain(simulator: Simulator, ticks: int) -> None:
    remaining = [ticks]

    def tick() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            simulator.schedule(0.1, tick)

    simulator.schedule(0.1, tick)


def kernel_seed_loop() -> int:
    """The seed repository's event loop, replicated over the same queue.

    This is the pre-instrumentation hot loop verbatim (time/cancellation/
    budget checks included), pumped by hand so the comparison isolates what
    the off-path refactor added to ``Simulator.run()``.
    """
    simulator = Simulator()
    _chain(simulator, TICKS)
    # The loop below mirrors the seed's ``Simulator.run`` body statement for
    # statement (attribute lookups included) so the off-path comparison is
    # code-shape-fair, not a hand-optimised strawman.  The queue now holds
    # ``(time, seq, handle)`` tuples, so the head reads adapt to that layout
    # while keeping the seed loop's per-iteration statement shape.
    until = None
    max_events = None
    executed = 0
    while simulator._queue and not simulator._stopped:
        if max_events is not None and executed >= max_events:
            break
        head = simulator._queue[0][2]
        if until is not None and head.time > until:
            simulator._now = until
            break
        heapq.heappop(simulator._queue)
        if head.cancelled:
            continue
        simulator._now = head.time
        head.callback(*head.args)
        simulator._processed += 1
        executed += 1
    return executed


def kernel_off() -> int:
    simulator = Simulator()
    _chain(simulator, TICKS)
    simulator.run()
    return simulator.events_processed


def kernel_on() -> int:
    simulator = Simulator()
    simulator.set_instrumentation(Instrumentation())
    _chain(simulator, TICKS)
    simulator.run()
    return simulator.events_processed


# ------------------------------------------------------------------ end to end


def end_to_end(stack: str, instrument: bool):
    system = build_system(
        SystemConfig(n=3, stack=stack, seed=1, instrument=instrument)
    )
    system.start()
    for i in range(MESSAGES):
        system.broadcast_at(1.0 + i * 2.0, i % 3, i)
    system.run(until=1_000_000.0)
    return system


# ------------------------------------------------------------------ harness


def measure_interleaved(cases: Dict[str, Callable[[], object]]) -> Dict[str, float]:
    """Best wall time per case over ``ROUNDS`` interleaved rounds.

    Every round times each case once, in order, so slow drift of the
    machine (thermal, background load) hits all cases equally instead of
    biasing whichever mode happened to run last; the per-case minimum then
    discards the noisy rounds.
    """
    for fn in cases.values():  # warm-up round, untimed
        fn()
    best = {name: float("inf") for name in cases}
    for _ in range(ROUNDS):
        for name, fn in cases.items():
            started = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - started)
    return best


def run_benchmark() -> Tuple[str, Dict[str, object]]:
    """Measure every case; return (report text, machine-readable payload)."""
    mode = "smoke" if SMOKE else "full"

    times = measure_interleaved(
        {
            "kernel_seed": kernel_seed_loop,
            "kernel_off": kernel_off,
            "kernel_on": kernel_on,
            "fd_off": lambda: end_to_end("fd", False),
            "fd_on": lambda: end_to_end("fd", True),
            "gm_off": lambda: end_to_end("gm", False),
            "gm_on": lambda: end_to_end("gm", True),
        }
    )
    off_vs_seed = times["kernel_off"] / times["kernel_seed"]

    instrumented = end_to_end("fd", True)
    snapshot = metrics_snapshot(instrumented, scenario="bench-instrumentation")

    lines = [
        f"instrumentation benchmark ({mode}: {TICKS} ticks, "
        f"{MESSAGES} messages, best of {ROUNDS})",
        f"{'case':<22} {'off s':>9} {'on s':>9} {'on/off':>8}",
        (
            f"{'kernel (vs seed loop)':<22} {times['kernel_off']:>9.4f} "
            f"{times['kernel_on']:>9.4f} "
            f"{times['kernel_on'] / times['kernel_off']:>7.2f}x"
        ),
        (
            f"{'end-to-end fd':<22} {times['fd_off']:>9.4f} "
            f"{times['fd_on']:>9.4f} {times['fd_on'] / times['fd_off']:>7.2f}x"
        ),
        (
            f"{'end-to-end gm':<22} {times['gm_off']:>9.4f} "
            f"{times['gm_on']:>9.4f} {times['gm_on'] / times['gm_off']:>7.2f}x"
        ),
        (
            f"off path vs seed loop: {off_vs_seed:.4f}x "
            f"(gate: <= {1 + GATE:.2f}x, seed {times['kernel_seed']:.4f} s)"
        ),
    ]
    payload: Dict[str, object] = {
        "mode": mode,
        "ticks": TICKS,
        "messages": MESSAGES,
        "rounds": ROUNDS,
        "times_s": times,
        "off_vs_seed": off_vs_seed,
        "gate": GATE,
        "counters": snapshot["counters"],
        "provenance": snapshot["provenance"],
    }
    return "\n".join(lines), payload


def _write_artifacts(report: str, payload: Dict[str, object]) -> None:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(
        os.path.join(OUTPUT_DIR, "bench_instrumentation.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write(report + "\n")
    times = payload["times_s"]
    off = {key: value for key, value in times.items() if key.endswith("_off")}
    off["kernel_seed"] = times["kernel_seed"]
    on = {key: value for key, value in times.items() if key.endswith("_on")}
    for name, body in (
        ("instrumentation-off.metrics.json", {"mode": payload["mode"], "times_s": off}),
        (
            "instrumentation-on.metrics.json",
            {
                "mode": payload["mode"],
                "times_s": on,
                "counters": payload["counters"],
                "provenance": payload["provenance"],
            },
        ),
        ("BENCH_instrumentation.json", payload),
    ):
        with open(os.path.join(OUTPUT_DIR, name), "w", encoding="utf-8") as handle:
            json.dump(body, handle, indent=2, sort_keys=True)
            handle.write("\n")


def test_instrumentation_off_path_overhead():
    """Pytest entry point: run, persist artifacts and gate the off path."""
    report, payload = run_benchmark()
    _write_artifacts(report, payload)
    print()
    print(report)
    # The off path must be indistinguishable from the seed event loop.
    assert payload["off_vs_seed"] <= 1 + GATE, (
        f"instrumentation-off kernel is {payload['off_vs_seed']:.3f}x the seed "
        f"loop (gate {1 + GATE:.2f}x)"
    )
    # Sanity on the instrumented runs: correct counters, bounded cost.
    assert payload["counters"]["abcast.broadcasts"] == MESSAGES
    times = payload["times_s"]
    assert times["kernel_on"] / times["kernel_off"] < 10.0
    assert times["fd_on"] / times["fd_off"] < 10.0


if __name__ == "__main__":
    report, payload = run_benchmark()
    _write_artifacts(report, payload)
    print(report)
