"""Unit tests for the FIFO contention resources."""

import pytest

from repro.sim.resources import FIFOResource


@pytest.fixture
def resource(simulator):
    return FIFOResource(simulator, "cpu")


class TestFIFOResource:
    def test_single_job_completes_after_service_time(self, simulator, resource):
        done = []
        resource.submit(3.0, lambda: done.append(simulator.now))
        simulator.run()
        assert done == [3.0]

    def test_jobs_are_serialized(self, simulator, resource):
        done = []
        resource.submit(2.0, lambda: done.append(simulator.now))
        resource.submit(2.0, lambda: done.append(simulator.now))
        resource.submit(2.0, lambda: done.append(simulator.now))
        simulator.run()
        assert done == [2.0, 4.0, 6.0]

    def test_fifo_order_preserved(self, simulator, resource):
        order = []
        for name in "abcd":
            resource.submit(1.0, lambda n=name: order.append(n))
        simulator.run()
        assert order == ["a", "b", "c", "d"]

    def test_queue_length_reflects_waiting_jobs(self, simulator, resource):
        for _ in range(3):
            resource.submit(1.0, lambda: None)
        assert resource.busy
        assert resource.queue_length == 2

    def test_idle_after_all_jobs_done(self, simulator, resource):
        resource.submit(1.0, lambda: None)
        simulator.run()
        assert not resource.busy
        assert resource.queue_length == 0

    def test_zero_service_time_job(self, simulator, resource):
        done = []
        resource.submit(0.0, lambda: done.append(simulator.now))
        simulator.run()
        assert done == [0.0]

    def test_negative_service_time_rejected(self, resource):
        with pytest.raises(ValueError):
            resource.submit(-1.0, lambda: None)

    def test_jobs_served_counter(self, simulator, resource):
        for _ in range(5):
            resource.submit(1.0, lambda: None)
        simulator.run()
        assert resource.jobs_served == 5

    def test_busy_time_accumulates(self, simulator, resource):
        resource.submit(2.0, lambda: None)
        resource.submit(3.0, lambda: None)
        simulator.run()
        assert resource.busy_time == pytest.approx(5.0)

    def test_utilization(self, simulator, resource):
        resource.submit(2.0, lambda: None)
        simulator.run()
        assert resource.utilization(4.0) == pytest.approx(0.5)
        assert resource.utilization(0.0) == 0.0

    def test_completion_callback_can_submit_more_work(self, simulator, resource):
        done = []

        def first_done():
            done.append(("first", simulator.now))
            resource.submit(1.0, lambda: done.append(("second", simulator.now)))

        resource.submit(1.0, first_done)
        simulator.run()
        assert done == [("first", 1.0), ("second", 2.0)]

    def test_idle_resource_starts_new_job_immediately(self, simulator, resource):
        done = []
        resource.submit(1.0, lambda: done.append(simulator.now))
        simulator.run()
        resource.submit(1.0, lambda: done.append(simulator.now))
        simulator.run()
        assert done == [1.0, 2.0]


class TestRateFactor:
    def test_default_factor_is_unity(self, resource):
        assert resource.rate_factor == 1.0

    def test_non_positive_factor_rejected(self, resource):
        with pytest.raises(ValueError):
            resource.set_rate_factor(0.0)
        with pytest.raises(ValueError):
            resource.set_rate_factor(-2.0)

    def test_degraded_resource_scales_service_time(self, simulator, resource):
        done = []
        resource.set_rate_factor(3.0)
        resource.submit(2.0, lambda: done.append(simulator.now))
        simulator.run()
        assert done == [6.0]

    def test_factor_applies_at_submit_not_at_service(self, simulator, resource):
        """Jobs accepted before a degradation keep their original cost."""
        done = []
        resource.submit(2.0, lambda: done.append(simulator.now))
        resource.set_rate_factor(5.0)
        resource.submit(2.0, lambda: done.append(simulator.now))
        simulator.run()
        assert done == [2.0, 12.0]

    def test_restoring_the_factor_ends_the_degradation(self, simulator, resource):
        done = []
        resource.set_rate_factor(4.0)
        resource.set_rate_factor(1.0)
        resource.submit(2.0, lambda: done.append(simulator.now))
        simulator.run()
        assert done == [2.0]
