"""Unit tests for the message representation."""

from repro.sim.messages import Message


class TestMessage:
    def test_uids_are_unique(self):
        a = Message(0, (1,), "proto", "x")
        b = Message(0, (1,), "proto", "x")
        assert a.uid != b.uid

    def test_remote_destinations_exclude_sender(self):
        message = Message(0, (0, 1, 2), "proto", "x")
        assert message.remote_destinations() == (1, 2)

    def test_unicast_is_not_multicast(self):
        assert not Message(0, (1,), "proto", "x").is_multicast()

    def test_multicast_detection(self):
        assert Message(0, (1, 2), "proto", "x").is_multicast()

    def test_self_only_message_has_no_remote_destinations(self):
        message = Message(0, (0,), "proto", "x")
        assert message.remote_destinations() == ()
        assert not message.is_multicast()

    def test_repr_mentions_protocol(self):
        assert "proto" in repr(Message(0, (1,), "proto", "x"))
