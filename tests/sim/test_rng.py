"""Unit tests for the named random streams."""


import pytest

from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        a = RandomStreams(1).stream("workload")
        b = RandomStreams(1).stream("workload")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("workload")
        b = RandomStreams(2).stream("workload")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        streams = RandomStreams(1)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_stream_is_cached(self):
        streams = RandomStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_consuming_one_stream_does_not_affect_another(self):
        reference = RandomStreams(9)
        expected = [reference.stream("b").random() for _ in range(5)]

        streams = RandomStreams(9)
        for _ in range(100):
            streams.stream("a").random()
        actual = [streams.stream("b").random() for _ in range(5)]
        assert actual == expected

    def test_seed_property(self):
        assert RandomStreams(42).seed == 42

    def test_exponential_zero_mean(self, rng):
        assert rng.exponential("fd", 0.0) == 0.0

    def test_exponential_infinite_mean(self, rng):
        assert rng.exponential("fd", float("inf")) == float("inf")

    def test_exponential_negative_mean_rejected(self, rng):
        with pytest.raises(ValueError):
            rng.exponential("fd", -1.0)

    def test_exponential_mean_is_approximately_right(self):
        streams = RandomStreams(7)
        samples = [streams.exponential("x", 100.0) for _ in range(5000)]
        mean = sum(samples) / len(samples)
        assert 90.0 < mean < 110.0

    def test_uniform_choice(self, rng):
        items = ["a", "b", "c"]
        for _ in range(20):
            assert rng.uniform_choice("pick", items) in items

    def test_uniform_choice_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            rng.uniform_choice("pick", [])
