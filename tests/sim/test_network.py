"""Unit tests for the contention-aware network model (paper Fig. 2)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.messages import Message
from repro.sim.network import Network, NetworkConfig


class Collector:
    """Records (time, destination, message) for every delivery."""

    def __init__(self, sim):
        self.sim = sim
        self.deliveries = []

    def callback(self, pid, message):
        self.deliveries.append((self.sim.now, pid, message))

    def times_for(self, pid):
        return [time for time, dest, _m in self.deliveries if dest == pid]


def build(n=3, lambda_cpu=1.0, network_time=1.0):
    sim = Simulator()
    network = Network(sim, NetworkConfig(n=n, lambda_cpu=lambda_cpu, network_time=network_time))
    collector = Collector(sim)
    for pid in range(n):
        network.attach(pid, collector.callback)
    return sim, network, collector


class TestConfigValidation:
    def test_rejects_zero_processes(self):
        with pytest.raises(ValueError):
            NetworkConfig(n=0)

    def test_rejects_negative_lambda(self):
        with pytest.raises(ValueError):
            NetworkConfig(n=2, lambda_cpu=-1.0)

    def test_rejects_zero_network_time(self):
        with pytest.raises(ValueError):
            NetworkConfig(n=2, network_time=0.0)


class TestTiming:
    def test_unicast_takes_two_lambda_plus_network(self):
        sim, network, collector = build(lambda_cpu=1.0)
        network.send(Message(0, (1,), "p", "x"))
        sim.run()
        # 1 (CPU_0) + 1 (network) + 1 (CPU_1) = 3 time units.
        assert collector.times_for(1) == [3.0]

    def test_lambda_scales_cpu_cost(self):
        sim, network, collector = build(lambda_cpu=2.5)
        network.send(Message(0, (1,), "p", "x"))
        sim.run()
        assert collector.times_for(1) == [pytest.approx(6.0)]

    def test_lambda_zero_only_network_cost(self):
        sim, network, collector = build(lambda_cpu=0.0)
        network.send(Message(0, (1,), "p", "x"))
        sim.run()
        assert collector.times_for(1) == [1.0]

    def test_multicast_occupies_network_once(self):
        sim, network, collector = build(n=4)
        network.send(Message(0, (1, 2, 3), "p", "x"))
        sim.run()
        # All destinations receive at the same time: the network is used once.
        assert collector.times_for(1) == [3.0]
        assert collector.times_for(2) == [3.0]
        assert collector.times_for(3) == [3.0]
        assert network.network_resource.jobs_served == 1

    def test_local_destination_delivered_without_resource_usage(self):
        sim, network, collector = build()
        network.send(Message(0, (0,), "p", "x"))
        sim.run()
        assert collector.times_for(0) == [0.0]
        assert network.cpu(0).jobs_served == 0
        assert network.network_resource.jobs_served == 0

    def test_self_plus_remote_destination(self):
        sim, network, collector = build()
        network.send(Message(0, (0, 1), "p", "x"))
        sim.run()
        assert collector.times_for(0) == [0.0]
        assert collector.times_for(1) == [3.0]

    def test_sender_cpu_serializes_two_sends(self):
        sim, network, collector = build()
        network.send(Message(0, (1,), "p", "first"))
        network.send(Message(0, (1,), "p", "second"))
        sim.run()
        # The second message waits one time unit behind the first on CPU_0,
        # then the stages pipeline: it arrives exactly one unit later.
        assert collector.times_for(1) == [3.0, 4.0]

    def test_network_is_shared_between_senders(self):
        sim, network, collector = build()
        network.send(Message(0, (2,), "p", "from0"))
        network.send(Message(1, (2,), "p", "from1"))
        sim.run()
        times = sorted(collector.times_for(2))
        # Both finish their own CPU at t=1, then serialize on the shared
        # network (1->2 and 2->3) and pipeline through CPU_2.
        assert times == [3.0, 4.0]

    def test_receiver_cpu_serializes_deliveries(self):
        sim, network, collector = build(n=4)
        network.send(Message(0, (3,), "p", "a"))
        network.send(Message(1, (3,), "p", "b"))
        network.send(Message(2, (3,), "p", "c"))
        sim.run()
        # The three messages serialize on the shared network and then on the
        # receiving CPU, one time unit apart.
        assert sorted(collector.times_for(3)) == [3.0, 4.0, 5.0]


class TestCrashes:
    def test_crashed_sender_messages_dropped(self):
        sim, network, collector = build()
        network.crash(0)
        network.send(Message(0, (1,), "p", "x"))
        sim.run()
        assert collector.deliveries == []
        assert network.stats.dropped_sender_crashed == 1

    def test_messages_already_on_cpu_still_sent_after_crash(self):
        sim, network, collector = build()
        network.send(Message(0, (1,), "p", "in-flight"))
        sim.schedule(0.5, network.crash, 0)
        sim.run()
        # Software crash semantics: the message was already handed to CPU_0.
        assert collector.times_for(1) == [3.0]

    def test_crashed_receiver_gets_nothing(self):
        sim, network, collector = build()
        network.crash(1)
        network.send(Message(0, (1, 2), "p", "x"))
        sim.run()
        assert collector.times_for(1) == []
        assert collector.times_for(2) == [3.0]
        assert network.stats.dropped_receiver_crashed == 1

    def test_crash_is_idempotent_and_listener_called_once(self):
        sim, network, _collector = build()
        crashes = []
        network.add_crash_listener(lambda pid, time: crashes.append((pid, time)))
        network.crash(1)
        network.crash(1)
        assert crashes == [(1, 0.0)]
        assert network.crash_time(1) == 0.0
        assert network.crash_time(2) is None

    def test_correct_processes_listing(self):
        _sim, network, _collector = build(n=4)
        network.crash(2)
        assert network.correct_processes() == [0, 1, 3]
        assert network.crashed_processes() == {2}
        assert network.is_crashed(2)
        assert not network.is_crashed(0)


class TestStatsAndValidation:
    def test_stats_count_unicasts_and_multicasts(self):
        sim, network, _collector = build(n=4)
        network.send(Message(0, (1,), "p", "u"))
        network.send(Message(0, (1, 2, 3), "p", "m"))
        sim.run()
        stats = network.stats.as_dict()
        assert stats["unicasts_sent"] == 1
        assert stats["multicasts_sent"] == 1
        assert stats["messages_sent"] == 2
        assert stats["deliveries"] == 4

    def test_invalid_destination_rejected(self):
        _sim, network, _collector = build()
        with pytest.raises(ValueError):
            network.send(Message(0, (9,), "p", "x"))

    def test_unattached_destination_raises(self):
        sim = Simulator()
        network = Network(sim, NetworkConfig(n=2))
        network.attach(0, lambda pid, m: None)
        network.send(Message(0, (1,), "p", "x"))
        with pytest.raises(RuntimeError):
            sim.run()
