"""Unit tests for the contention-aware network model (paper Fig. 2)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.messages import Message
from repro.sim.network import Network, NetworkConfig


class Collector:
    """Records (time, destination, message) for every delivery."""

    def __init__(self, sim):
        self.sim = sim
        self.deliveries = []

    def callback(self, pid, message):
        self.deliveries.append((self.sim.now, pid, message))

    def times_for(self, pid):
        return [time for time, dest, _m in self.deliveries if dest == pid]


def build(n=3, lambda_cpu=1.0, network_time=1.0):
    sim = Simulator()
    network = Network(sim, NetworkConfig(n=n, lambda_cpu=lambda_cpu, network_time=network_time))
    collector = Collector(sim)
    for pid in range(n):
        network.attach(pid, collector.callback)
    return sim, network, collector


class TestConfigValidation:
    def test_rejects_zero_processes(self):
        with pytest.raises(ValueError):
            NetworkConfig(n=0)

    def test_rejects_negative_lambda(self):
        with pytest.raises(ValueError):
            NetworkConfig(n=2, lambda_cpu=-1.0)

    def test_rejects_zero_network_time(self):
        with pytest.raises(ValueError):
            NetworkConfig(n=2, network_time=0.0)


class TestTiming:
    def test_unicast_takes_two_lambda_plus_network(self):
        sim, network, collector = build(lambda_cpu=1.0)
        network.send(Message(0, (1,), "p", "x"))
        sim.run()
        # 1 (CPU_0) + 1 (network) + 1 (CPU_1) = 3 time units.
        assert collector.times_for(1) == [3.0]

    def test_lambda_scales_cpu_cost(self):
        sim, network, collector = build(lambda_cpu=2.5)
        network.send(Message(0, (1,), "p", "x"))
        sim.run()
        assert collector.times_for(1) == [pytest.approx(6.0)]

    def test_lambda_zero_only_network_cost(self):
        sim, network, collector = build(lambda_cpu=0.0)
        network.send(Message(0, (1,), "p", "x"))
        sim.run()
        assert collector.times_for(1) == [1.0]

    def test_multicast_occupies_network_once(self):
        sim, network, collector = build(n=4)
        network.send(Message(0, (1, 2, 3), "p", "x"))
        sim.run()
        # All destinations receive at the same time: the network is used once.
        assert collector.times_for(1) == [3.0]
        assert collector.times_for(2) == [3.0]
        assert collector.times_for(3) == [3.0]
        assert network.network_resource.jobs_served == 1

    def test_local_destination_delivered_without_resource_usage(self):
        sim, network, collector = build()
        network.send(Message(0, (0,), "p", "x"))
        sim.run()
        assert collector.times_for(0) == [0.0]
        assert network.cpu(0).jobs_served == 0
        assert network.network_resource.jobs_served == 0

    def test_self_plus_remote_destination(self):
        sim, network, collector = build()
        network.send(Message(0, (0, 1), "p", "x"))
        sim.run()
        assert collector.times_for(0) == [0.0]
        assert collector.times_for(1) == [3.0]

    def test_sender_cpu_serializes_two_sends(self):
        sim, network, collector = build()
        network.send(Message(0, (1,), "p", "first"))
        network.send(Message(0, (1,), "p", "second"))
        sim.run()
        # The second message waits one time unit behind the first on CPU_0,
        # then the stages pipeline: it arrives exactly one unit later.
        assert collector.times_for(1) == [3.0, 4.0]

    def test_network_is_shared_between_senders(self):
        sim, network, collector = build()
        network.send(Message(0, (2,), "p", "from0"))
        network.send(Message(1, (2,), "p", "from1"))
        sim.run()
        times = sorted(collector.times_for(2))
        # Both finish their own CPU at t=1, then serialize on the shared
        # network (1->2 and 2->3) and pipeline through CPU_2.
        assert times == [3.0, 4.0]

    def test_receiver_cpu_serializes_deliveries(self):
        sim, network, collector = build(n=4)
        network.send(Message(0, (3,), "p", "a"))
        network.send(Message(1, (3,), "p", "b"))
        network.send(Message(2, (3,), "p", "c"))
        sim.run()
        # The three messages serialize on the shared network and then on the
        # receiving CPU, one time unit apart.
        assert sorted(collector.times_for(3)) == [3.0, 4.0, 5.0]


class TestCrashes:
    def test_crashed_sender_messages_dropped(self):
        sim, network, collector = build()
        network.crash(0)
        network.send(Message(0, (1,), "p", "x"))
        sim.run()
        assert collector.deliveries == []
        assert network.stats.dropped_sender_crashed == 1

    def test_messages_already_on_cpu_still_sent_after_crash(self):
        sim, network, collector = build()
        network.send(Message(0, (1,), "p", "in-flight"))
        sim.schedule(0.5, network.crash, 0)
        sim.run()
        # Software crash semantics: the message was already handed to CPU_0.
        assert collector.times_for(1) == [3.0]

    def test_crashed_receiver_gets_nothing(self):
        sim, network, collector = build()
        network.crash(1)
        network.send(Message(0, (1, 2), "p", "x"))
        sim.run()
        assert collector.times_for(1) == []
        assert collector.times_for(2) == [3.0]
        assert network.stats.dropped_receiver_crashed == 1

    def test_crash_is_idempotent_and_listener_called_once(self):
        sim, network, _collector = build()
        crashes = []
        network.add_crash_listener(lambda pid, time: crashes.append((pid, time)))
        network.crash(1)
        network.crash(1)
        assert crashes == [(1, 0.0)]
        assert network.crash_time(1) == 0.0
        assert network.crash_time(2) is None

    def test_correct_processes_listing(self):
        _sim, network, _collector = build(n=4)
        network.crash(2)
        assert network.correct_processes() == [0, 1, 3]
        assert network.crashed_processes() == {2}
        assert network.is_crashed(2)
        assert not network.is_crashed(0)


class TestStatsAndValidation:
    def test_stats_count_unicasts_and_multicasts(self):
        sim, network, _collector = build(n=4)
        network.send(Message(0, (1,), "p", "u"))
        network.send(Message(0, (1, 2, 3), "p", "m"))
        sim.run()
        stats = network.stats.as_dict()
        assert stats["unicasts_sent"] == 1
        assert stats["multicasts_sent"] == 1
        assert stats["messages_sent"] == 2
        assert stats["deliveries"] == 4

    def test_invalid_destination_rejected(self):
        _sim, network, _collector = build()
        with pytest.raises(ValueError):
            network.send(Message(0, (9,), "p", "x"))

    def test_unattached_destination_raises(self):
        sim = Simulator()
        network = Network(sim, NetworkConfig(n=2))
        network.attach(0, lambda pid, m: None)
        network.send(Message(0, (1,), "p", "x"))
        with pytest.raises(RuntimeError):
            sim.run()


class TestPartitions:
    def test_symmetric_partition_drops_cross_group_frames(self):
        sim, network, collector = build(n=4)
        network.partition([(0, 1), (2, 3)])
        network.send(Message(0, (1, 2, 3), "p", "x"))
        sim.run()
        assert [dest for _t, dest, _m in collector.deliveries] == [1]
        assert network.stats.dropped_partitioned == 2

    def test_unlisted_pids_become_singletons(self):
        sim, network, collector = build(n=3)
        network.partition([(0, 1)])
        network.send(Message(2, (0, 1), "p", "x"))
        sim.run()
        assert collector.deliveries == []
        assert network.is_link_blocked(2, 0)
        assert network.is_link_blocked(0, 2)
        assert not network.is_link_blocked(0, 1)

    def test_block_links_is_directional(self):
        sim, network, collector = build(n=3)
        network.block_links([(0, 2)])
        network.send(Message(0, (2,), "p", "out"))
        network.send(Message(2, (0,), "p", "back"))
        sim.run()
        assert [dest for _t, dest, _m in collector.deliveries] == [0]
        assert network.is_link_blocked(0, 2)
        assert not network.is_link_blocked(2, 0)

    def test_heal_restores_every_link(self):
        sim, network, collector = build(n=3)
        network.partition([(0,), (1,), (2,)])
        network.heal()
        network.send(Message(0, (1, 2), "p", "x"))
        sim.run()
        assert len(collector.deliveries) == 2
        assert network.stats.dropped_partitioned == 0

    def test_a_new_partition_replaces_the_mask(self):
        _sim, network, _collector = build(n=4)
        network.partition([(0, 1), (2, 3)])
        network.partition([(0, 2), (1, 3)])
        assert not network.is_link_blocked(0, 2)
        assert network.is_link_blocked(0, 1)

    def test_partitioned_frame_still_occupies_sender_cpu_and_medium(self):
        # The medium does not know the receiver is unreachable: the frame
        # pays emission + transmission, then vanishes.
        sim, network, _collector = build(n=2, lambda_cpu=1.0, network_time=1.0)
        network.partition([(0,), (1,)])
        network.send(Message(0, (1,), "p", "x"))
        sim.run()
        assert network.cpu(0).busy_time == 1.0
        assert network.network_resource.busy_time == 1.0
        assert network.cpu(1).busy_time == 0.0

    def test_partition_rejects_duplicate_and_unknown_pids(self):
        _sim, network, _collector = build(n=3)
        with pytest.raises(ValueError):
            network.partition([(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            network.partition([(0, 9)])

    def test_partition_listeners_observe_mask_changes(self):
        _sim, network, _collector = build(n=3)
        seen = []
        network.add_partition_listener(lambda blocked, now: seen.append(blocked))
        network.block_links([(0, 1)])
        network.heal()
        assert seen == [{(0, 1)}, None]


class TestWanDelays:
    def test_matrix_must_be_square_and_non_negative(self):
        _sim, network, _collector = build(n=3)
        with pytest.raises(ValueError):
            network.set_wan_delays([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            network.set_wan_delays([[0.0, -1.0, 0.0]] + [[0.0] * 3] * 2)

    def test_wan_delay_adds_pure_propagation_latency(self):
        sim, network, collector = build(n=2, lambda_cpu=1.0, network_time=1.0)
        matrix = [[0.0, 25.0], [25.0, 0.0]]
        network.set_wan_delays(matrix)
        network.send(Message(0, (1,), "p", "x"))
        sim.run()
        # emission (1) + medium (1) + WAN (25) + reception (1)
        assert collector.times_for(1) == [28.0]
        # Propagation occupies no contended resource.
        assert network.cpu(0).busy_time == 1.0
        assert network.cpu(1).busy_time == 1.0
        assert network.network_resource.busy_time == 1.0

    def test_clearing_the_matrix_restores_lan_timing(self):
        sim, network, collector = build(n=2)
        network.set_wan_delays([[0.0, 25.0], [25.0, 0.0]])
        network.set_wan_delays(None)
        network.send(Message(0, (1,), "p", "x"))
        sim.run()
        assert collector.times_for(1) == [3.0]


class TestGrayFaults:
    def build_with_rng(self, n=2, seed=1):
        import random

        sim, network, collector = build(n=n)
        network.set_link_rng(random.Random(seed))
        return sim, network, collector

    def test_lossy_link_needs_a_random_stream(self):
        _sim, network, _collector = build(n=2)
        with pytest.raises(RuntimeError):
            network.degrade_link(0, 1, loss_probability=0.5)

    def test_certain_loss_drops_every_frame(self):
        sim, network, collector = self.build_with_rng()
        network.degrade_link(0, 1, loss_probability=1.0)
        for _ in range(5):
            network.send(Message(0, (1,), "p", "x"))
        sim.run()
        assert collector.deliveries == []
        assert network.stats.dropped_lossy_link == 5

    def test_certain_duplication_delivers_two_copies(self):
        sim, network, collector = self.build_with_rng()
        network.degrade_link(0, 1, duplicate_probability=1.0)
        network.send(Message(0, (1,), "p", "x"))
        sim.run()
        assert len(collector.deliveries) == 2
        assert network.stats.duplicated_link == 1

    def test_zero_probabilities_restore_the_link(self):
        sim, network, collector = self.build_with_rng()
        network.degrade_link(0, 1, loss_probability=1.0)
        network.degrade_link(0, 1)
        network.send(Message(0, (1,), "p", "x"))
        sim.run()
        assert len(collector.deliveries) == 1
        assert network.stats.dropped_lossy_link == 0

    def test_out_of_range_probability_rejected(self):
        _sim, network, _collector = self.build_with_rng()
        with pytest.raises(ValueError):
            network.degrade_link(0, 1, loss_probability=1.5)

    def test_degrade_cpu_slows_only_that_process(self):
        sim, network, collector = build(n=2, lambda_cpu=1.0, network_time=1.0)
        network.degrade_cpu(1, 5.0)
        network.send(Message(0, (1,), "p", "x"))
        sim.run()
        # Reception costs 5 lambda on the degraded CPU: 1 + 1 + 5.
        assert collector.times_for(1) == [7.0]
        assert network.cpu(0).rate_factor == 1.0

    def test_restore_cpu_returns_to_full_speed(self):
        sim, network, collector = build(n=2)
        network.degrade_cpu(1, 5.0)
        network.restore_cpu(1)
        network.send(Message(0, (1,), "p", "x"))
        sim.run()
        assert collector.times_for(1) == [3.0]
