"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0.0

    def test_runs_single_event(self, simulator):
        fired = []
        simulator.schedule(5.0, fired.append, "a")
        simulator.run()
        assert fired == ["a"]
        assert simulator.now == 5.0

    def test_events_run_in_time_order(self, simulator):
        order = []
        simulator.schedule(3.0, order.append, "late")
        simulator.schedule(1.0, order.append, "early")
        simulator.schedule(2.0, order.append, "middle")
        simulator.run()
        assert order == ["early", "middle", "late"]

    def test_same_time_events_run_in_scheduling_order(self, simulator):
        order = []
        for label in ("first", "second", "third"):
            simulator.schedule(1.0, order.append, label)
        simulator.run()
        assert order == ["first", "second", "third"]

    def test_schedule_at_absolute_time(self, simulator):
        times = []
        simulator.schedule_at(7.5, lambda: times.append(simulator.now))
        simulator.run()
        assert times == [7.5]

    def test_events_can_schedule_more_events(self, simulator):
        seen = []

        def chain(depth):
            seen.append(simulator.now)
            if depth > 0:
                simulator.schedule(1.0, chain, depth - 1)

        simulator.schedule(1.0, chain, 3)
        simulator.run()
        assert seen == [1.0, 2.0, 3.0, 4.0]

    def test_zero_delay_event_runs_at_current_time(self, simulator):
        seen = []
        simulator.schedule(2.0, lambda: simulator.schedule(0.0, lambda: seen.append(simulator.now)))
        simulator.run()
        assert seen == [2.0]

    def test_negative_delay_rejected(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule(-1.0, lambda: None)

    def test_schedule_in_the_past_rejected(self, simulator):
        simulator.schedule(5.0, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.schedule_at(1.0, lambda: None)

    def test_events_processed_counter(self, simulator):
        for _ in range(4):
            simulator.schedule(1.0, lambda: None)
        simulator.run()
        assert simulator.events_processed == 4


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, simulator):
        fired = []
        handle = simulator.schedule(1.0, fired.append, "x")
        handle.cancel()
        simulator.run()
        assert fired == []

    def test_cancel_is_idempotent(self, simulator):
        handle = simulator.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        simulator.run()
        assert simulator.events_processed == 0

    def test_other_events_still_fire_after_cancel(self, simulator):
        fired = []
        handle = simulator.schedule(1.0, fired.append, "cancelled")
        simulator.schedule(2.0, fired.append, "kept")
        handle.cancel()
        simulator.run()
        assert fired == ["kept"]


class TestRunControl:
    def test_run_until_stops_before_later_events(self, simulator):
        fired = []
        simulator.schedule(1.0, fired.append, "early")
        simulator.schedule(10.0, fired.append, "late")
        end = simulator.run(until=5.0)
        assert fired == ["early"]
        assert end == 5.0
        assert simulator.pending_events == 1

    def test_event_exactly_at_until_is_executed(self, simulator):
        fired = []
        simulator.schedule(5.0, fired.append, "edge")
        simulator.run(until=5.0)
        assert fired == ["edge"]

    def test_run_can_be_resumed(self, simulator):
        fired = []
        simulator.schedule(1.0, fired.append, "a")
        simulator.schedule(10.0, fired.append, "b")
        simulator.run(until=5.0)
        simulator.run()
        assert fired == ["a", "b"]

    def test_stop_from_within_event(self, simulator):
        fired = []
        simulator.schedule(1.0, lambda: (fired.append("a"), simulator.stop()))
        simulator.schedule(2.0, fired.append, "b")
        simulator.run()
        assert fired == ["a"]
        assert simulator.pending_events == 1

    def test_max_events_limit(self, simulator):
        for _ in range(10):
            simulator.schedule(1.0, lambda: None)
        simulator.run(max_events=3)
        assert simulator.events_processed == 3

    def test_time_advances_to_until_when_queue_empty(self, simulator):
        simulator.schedule(1.0, lambda: None)
        end = simulator.run(until=50.0)
        assert end == 50.0

    def test_reset_clears_state(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        simulator.reset()
        assert simulator.now == 0.0
        assert simulator.pending_events == 0
        assert simulator.events_processed == 0

    def test_reentrant_run_rejected(self, simulator):
        def try_run():
            with pytest.raises(SimulationError):
                simulator.run()

        simulator.schedule(1.0, try_run)
        simulator.run()


class TestDeterminism:
    def test_identical_schedules_produce_identical_traces(self):
        def trace():
            sim = Simulator()
            events = []
            for i in range(50):
                sim.schedule((i * 7) % 13 + 0.5, events.append, i)
            sim.run()
            return events, sim.now

        assert trace() == trace()


class TestRunExhausted:
    def test_budget_hit_sets_the_flag(self, simulator):
        for _ in range(10):
            simulator.schedule(1.0, lambda: None)
        simulator.run(max_events=3)
        assert simulator.run_exhausted

    def test_drained_queue_leaves_flag_clear(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.run(max_events=10)
        assert not simulator.run_exhausted

    def test_exact_budget_without_leftover_is_not_exhausted(self, simulator):
        # The budget only reads as "gave up" when events were left behind.
        for _ in range(3):
            simulator.schedule(1.0, lambda: None)
        simulator.run(max_events=3)
        assert not simulator.run_exhausted

    def test_next_run_resets_the_flag(self, simulator):
        for _ in range(5):
            simulator.schedule(1.0, lambda: None)
        simulator.run(max_events=2)
        assert simulator.run_exhausted
        simulator.run()  # drain the remaining three
        assert not simulator.run_exhausted

    def test_reset_clears_the_flag(self, simulator):
        for _ in range(5):
            simulator.schedule(1.0, lambda: None)
        simulator.run(max_events=2)
        simulator.reset()
        assert not simulator.run_exhausted

    def test_instrumented_loop_reports_exhaustion_identically(self):
        from repro.obs import Instrumentation

        sim = Simulator()
        sim.set_instrumentation(Instrumentation())
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        sim.run(max_events=3)
        assert sim.run_exhausted
        assert sim.events_processed == 3
