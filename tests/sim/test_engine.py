"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator, _callback_category


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0.0

    def test_runs_single_event(self, simulator):
        fired = []
        simulator.schedule(5.0, fired.append, "a")
        simulator.run()
        assert fired == ["a"]
        assert simulator.now == 5.0

    def test_events_run_in_time_order(self, simulator):
        order = []
        simulator.schedule(3.0, order.append, "late")
        simulator.schedule(1.0, order.append, "early")
        simulator.schedule(2.0, order.append, "middle")
        simulator.run()
        assert order == ["early", "middle", "late"]

    def test_same_time_events_run_in_scheduling_order(self, simulator):
        order = []
        for label in ("first", "second", "third"):
            simulator.schedule(1.0, order.append, label)
        simulator.run()
        assert order == ["first", "second", "third"]

    def test_schedule_at_absolute_time(self, simulator):
        times = []
        simulator.schedule_at(7.5, lambda: times.append(simulator.now))
        simulator.run()
        assert times == [7.5]

    def test_events_can_schedule_more_events(self, simulator):
        seen = []

        def chain(depth):
            seen.append(simulator.now)
            if depth > 0:
                simulator.schedule(1.0, chain, depth - 1)

        simulator.schedule(1.0, chain, 3)
        simulator.run()
        assert seen == [1.0, 2.0, 3.0, 4.0]

    def test_zero_delay_event_runs_at_current_time(self, simulator):
        seen = []
        simulator.schedule(2.0, lambda: simulator.schedule(0.0, lambda: seen.append(simulator.now)))
        simulator.run()
        assert seen == [2.0]

    def test_negative_delay_rejected(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule(-1.0, lambda: None)

    def test_schedule_in_the_past_rejected(self, simulator):
        simulator.schedule(5.0, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.schedule_at(1.0, lambda: None)

    def test_events_processed_counter(self, simulator):
        for _ in range(4):
            simulator.schedule(1.0, lambda: None)
        simulator.run()
        assert simulator.events_processed == 4


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, simulator):
        fired = []
        handle = simulator.schedule(1.0, fired.append, "x")
        handle.cancel()
        simulator.run()
        assert fired == []

    def test_cancel_is_idempotent(self, simulator):
        handle = simulator.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        simulator.run()
        assert simulator.events_processed == 0

    def test_other_events_still_fire_after_cancel(self, simulator):
        fired = []
        handle = simulator.schedule(1.0, fired.append, "cancelled")
        simulator.schedule(2.0, fired.append, "kept")
        handle.cancel()
        simulator.run()
        assert fired == ["kept"]


class TestRunControl:
    def test_run_until_stops_before_later_events(self, simulator):
        fired = []
        simulator.schedule(1.0, fired.append, "early")
        simulator.schedule(10.0, fired.append, "late")
        end = simulator.run(until=5.0)
        assert fired == ["early"]
        assert end == 5.0
        assert simulator.pending_events == 1

    def test_event_exactly_at_until_is_executed(self, simulator):
        fired = []
        simulator.schedule(5.0, fired.append, "edge")
        simulator.run(until=5.0)
        assert fired == ["edge"]

    def test_run_can_be_resumed(self, simulator):
        fired = []
        simulator.schedule(1.0, fired.append, "a")
        simulator.schedule(10.0, fired.append, "b")
        simulator.run(until=5.0)
        simulator.run()
        assert fired == ["a", "b"]

    def test_stop_from_within_event(self, simulator):
        fired = []
        simulator.schedule(1.0, lambda: (fired.append("a"), simulator.stop()))
        simulator.schedule(2.0, fired.append, "b")
        simulator.run()
        assert fired == ["a"]
        assert simulator.pending_events == 1

    def test_max_events_limit(self, simulator):
        for _ in range(10):
            simulator.schedule(1.0, lambda: None)
        simulator.run(max_events=3)
        assert simulator.events_processed == 3

    def test_time_advances_to_until_when_queue_empty(self, simulator):
        simulator.schedule(1.0, lambda: None)
        end = simulator.run(until=50.0)
        assert end == 50.0

    def test_reset_clears_state(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        simulator.reset()
        assert simulator.now == 0.0
        assert simulator.pending_events == 0
        assert simulator.events_processed == 0

    def test_reentrant_run_rejected(self, simulator):
        def try_run():
            with pytest.raises(SimulationError):
                simulator.run()

        simulator.schedule(1.0, try_run)
        simulator.run()


class TestDeterminism:
    def test_identical_schedules_produce_identical_traces(self):
        def trace():
            sim = Simulator()
            events = []
            for i in range(50):
                sim.schedule((i * 7) % 13 + 0.5, events.append, i)
            sim.run()
            return events, sim.now

        assert trace() == trace()


class TestRunExhausted:
    def test_budget_hit_sets_the_flag(self, simulator):
        for _ in range(10):
            simulator.schedule(1.0, lambda: None)
        simulator.run(max_events=3)
        assert simulator.run_exhausted

    def test_drained_queue_leaves_flag_clear(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.run(max_events=10)
        assert not simulator.run_exhausted

    def test_exact_budget_without_leftover_is_not_exhausted(self, simulator):
        # The budget only reads as "gave up" when events were left behind.
        for _ in range(3):
            simulator.schedule(1.0, lambda: None)
        simulator.run(max_events=3)
        assert not simulator.run_exhausted

    def test_next_run_resets_the_flag(self, simulator):
        for _ in range(5):
            simulator.schedule(1.0, lambda: None)
        simulator.run(max_events=2)
        assert simulator.run_exhausted
        simulator.run()  # drain the remaining three
        assert not simulator.run_exhausted

    def test_reset_clears_the_flag(self, simulator):
        for _ in range(5):
            simulator.schedule(1.0, lambda: None)
        simulator.run(max_events=2)
        simulator.reset()
        assert not simulator.run_exhausted

    def test_instrumented_loop_reports_exhaustion_identically(self):
        from repro.obs import Instrumentation

        sim = Simulator()
        sim.set_instrumentation(Instrumentation())
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        sim.run(max_events=3)
        assert sim.run_exhausted
        assert sim.events_processed == 3


class TestHeapCompaction:
    """Cancelled events must not accumulate on the heap without bound.

    Timer-heavy failure-detector workloads reschedule (cancel + re-arm)
    one timer per monitored pair per message; before lazy compaction the
    dead handles sat on the heap until their original firing time.
    """

    def test_cancelled_events_are_counted(self, simulator):
        handles = [simulator.schedule(10.0, lambda: None) for _ in range(5)]
        for handle in handles[:3]:
            handle.cancel()
        assert simulator.cancelled_pending_events == 3
        assert simulator.pending_events == 5

    def test_double_cancel_counts_once(self, simulator):
        handle = simulator.schedule(10.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert simulator.cancelled_pending_events == 1

    def test_popping_a_cancelled_head_decrements_the_counter(self, simulator):
        simulator.schedule(1.0, lambda: None).cancel()
        simulator.schedule(2.0, lambda: None)
        simulator.run()
        assert simulator.cancelled_pending_events == 0
        assert simulator.events_processed == 1

    def test_mostly_cancelled_heap_is_compacted(self, simulator):
        # Far-future timers that are immediately re-armed: the classic
        # heartbeat pattern.  The live population stays tiny, so the heap
        # must not retain the hundreds of cancelled predecessors.
        live = simulator.schedule(1_000.0, lambda: None)
        for _ in range(500):
            live.cancel()
            live = simulator.schedule(1_000.0, lambda: None)
        assert simulator.pending_events < 200
        # Compaction fires once >= 64 cancelled events outnumber the live
        # ones, so the dead population can never reach 2x the threshold.
        assert simulator.cancelled_pending_events < 128

    def test_timer_heavy_workload_has_bounded_queue(self):
        # Regression for the heap-bloat bug: a heartbeat-style workload
        # (cancel + re-arm a far-future timeout on every tick) ran the
        # queue up linearly with tick count.  With lazy compaction the
        # pending count stays bounded by a small constant regardless of
        # how many ticks execute.
        sim = Simulator()
        n_pairs = 20
        timeouts = {}
        high_water = [0]

        def tick(pair):
            old = timeouts.get(pair)
            if old is not None:
                old.cancel()
            timeouts[pair] = sim.schedule(500.0, lambda: None)
            sim.schedule(1.0, tick, pair)
            high_water[0] = max(high_water[0], sim.pending_events)

        for pair in range(n_pairs):
            sim.schedule(0.1 * pair, tick, pair)
        sim.run(until=400.0)
        # ~8000 cancel/re-arm cycles; without compaction the queue peaks
        # above n_pairs * ticks.  Bounded means O(live events), with slack
        # for the half-dead compaction threshold.
        assert high_water[0] < 10 * n_pairs + 200
        assert sim.cancelled_pending_events <= sim.pending_events

    def test_compaction_does_not_change_execution(self, simulator):
        fired = []
        keep = []
        for i in range(300):
            handle = simulator.schedule(float(i) + 1.0, fired.append, i)
            if i % 10 == 0:
                keep.append(i)
            else:
                handle.cancel()
        simulator.schedule(0.5, fired.append, "first")
        simulator.run()
        assert fired == ["first"] + keep

    def test_compaction_during_run_is_safe(self):
        # A callback that cancels hundreds of events and schedules a new
        # one triggers compaction *while the run loop holds the queue
        # reference*; the in-place rebuild must keep the loop working.
        sim = Simulator()
        fired = []
        victims = [sim.schedule(900.0, lambda: None) for _ in range(400)]

        def massacre():
            for victim in victims:
                victim.cancel()
            sim.schedule(1.0, fired.append, "after-compaction")

        sim.schedule(1.0, massacre)
        sim.schedule(5.0, fired.append, "tail")
        sim.run()
        assert fired == ["after-compaction", "tail"]
        assert sim.pending_events == 0


class TestCallbackCategory:
    """Event-profile buckets must resolve for every dispatch shape in use."""

    def test_bound_method_resolves_to_class_and_method(self):
        sim = Simulator()
        assert _callback_category(sim.stop) == "Simulator.stop"

    def test_network_pipeline_methods_resolve(self):
        from repro.sim.messages import Message
        from repro.sim.network import Network, NetworkConfig

        sim = Simulator()
        network = Network(sim, NetworkConfig(n=3))
        message = Message(sender=0, destinations=(1, 2), protocol="t", body=None)
        assert _callback_category(network._emitted) == "Network._emitted"
        assert _callback_category(network._transmitted) == "Network._transmitted"
        assert _callback_category(network._received) == "Network._received"
        # FIFO completion events dispatch through the resource's bound
        # _finish with the continuation as an argument, so the category
        # stays the resource bucket, not the continuation's.
        network.send(message)
        entry = sim._queue[0]
        assert _callback_category(entry[2].callback) == "FIFOResource._finish"

    def test_closure_collapses_to_defining_function(self):
        def outer():
            return lambda: None

        # qualname splits at the first ``.<locals>``: everything nested in a
        # function collapses to the outermost defining scope.
        assert _callback_category(outer()) == (
            "TestCallbackCategory.test_closure_collapses_to_defining_function"
        )

    def test_plain_function_uses_qualname(self):
        assert _callback_category(_callback_category) == "_callback_category"

    def test_callable_without_qualname_falls_back_to_type(self):
        class Callable:
            def __call__(self):
                return None

        assert _callback_category(Callable()) == "Callable"
