"""Unit tests for simulated processes and protocol components."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.process import Component, SimProcess


class Echo(Component):
    protocol = "echo"

    def __init__(self, process):
        super().__init__(process)
        self.received = []
        self.started = False
        self.crashed = False

    def start(self):
        self.started = True

    def on_message(self, sender, body):
        self.received.append((sender, body))

    def on_crash(self):
        self.crashed = True


class Unnamed(Component):
    protocol = ""


def build(n=3):
    sim = Simulator()
    network = Network(sim, NetworkConfig(n=n))
    processes = [SimProcess(sim, network, pid) for pid in range(n)]
    components = [Echo(process) for process in processes]
    return sim, network, processes, components


class TestComponents:
    def test_component_requires_protocol_name(self):
        sim, network, processes, _ = build()
        with pytest.raises(ValueError):
            Unnamed(processes[0])

    def test_duplicate_protocol_rejected(self):
        _sim, _network, processes, _ = build()
        with pytest.raises(ValueError):
            Echo(processes[0])

    def test_start_hook_invoked(self):
        _sim, _network, processes, components = build()
        for process in processes:
            process.start()
        assert all(component.started for component in components)

    def test_component_lookup(self):
        _sim, _network, processes, components = build()
        assert processes[0].component("echo") is components[0]
        assert processes[0].has_component("echo")
        assert not processes[0].has_component("other")

    def test_message_dispatch_to_component(self):
        sim, _network, _processes, components = build()
        components[0].send([1, 2], "hello")
        sim.run()
        assert components[1].received == [(0, "hello")]
        assert components[2].received == [(0, "hello")]

    def test_send_one_unicast(self):
        sim, _network, _processes, components = build()
        components[0].send_one(2, "direct")
        sim.run()
        assert components[1].received == []
        assert components[2].received == [(0, "direct")]

    def test_unknown_protocol_raises(self):
        sim, _network, processes, _components = build()
        processes[0].send("missing", [1], "x")
        with pytest.raises(RuntimeError):
            sim.run()

    def test_component_convenience_accessors(self):
        sim, _network, processes, components = build()
        assert components[0].pid == 0
        assert components[0].sim is sim
        assert components[0].now == 0.0


class TestTimers:
    def test_timer_fires(self):
        sim, _network, processes, _components = build()
        fired = []
        processes[0].set_timer(5.0, fired.append, "tick")
        sim.run()
        assert fired == ["tick"]

    def test_timer_skipped_after_crash(self):
        sim, _network, processes, _components = build()
        fired = []
        processes[0].set_timer(5.0, fired.append, "tick")
        sim.schedule(1.0, processes[0].crash)
        sim.run()
        assert fired == []


class TestCrash:
    def test_crashed_process_does_not_send(self):
        sim, _network, processes, components = build()
        processes[0].crash()
        components[0].send([1], "x")
        sim.run()
        assert components[1].received == []

    def test_crashed_process_does_not_receive(self):
        sim, _network, processes, components = build()
        processes[1].crash()
        components[0].send([1, 2], "x")
        sim.run()
        assert components[1].received == []
        assert components[2].received == [(0, "x")]

    def test_crash_invokes_component_hook_and_is_idempotent(self):
        _sim, _network, processes, components = build()
        processes[0].crash()
        processes[0].crash()
        assert components[0].crashed
        assert processes[0].crashed

    def test_crash_propagates_to_network(self):
        _sim, network, processes, _components = build()
        processes[2].crash()
        assert network.is_crashed(2)
