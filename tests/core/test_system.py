"""Unit tests for the system builder."""

import pytest

from repro import ALGORITHMS, SystemConfig, build_system


class TestSystemConfig:
    def test_defaults(self):
        config = SystemConfig()
        assert config.n == 3
        assert config.algorithm == "fd"
        assert config.lambda_cpu == 1.0

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(algorithm="paxos")

    def test_zero_processes_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(n=0)

    def test_with_seed_copies(self):
        config = SystemConfig(seed=1)
        other = config.with_seed(99)
        assert other.seed == 99
        assert other.n == config.n
        assert config.seed == 1

    def test_max_tolerated_crashes(self):
        assert SystemConfig(n=3).max_tolerated_crashes() == 1
        assert SystemConfig(n=7).max_tolerated_crashes() == 3
        assert SystemConfig(n=4).max_tolerated_crashes() == 1

    def test_algorithms_constant(self):
        assert set(ALGORITHMS) == {"fd", "gm", "gm-nonuniform"}


class TestBuildSystem:
    def test_build_with_overrides(self):
        system = build_system(n=5, algorithm="gm", seed=3)
        assert system.config.n == 5
        assert system.config.algorithm == "gm"

    def test_build_with_config_and_overrides(self):
        system = build_system(SystemConfig(n=3), seed=42)
        assert system.config.seed == 42

    def test_every_process_has_failure_detector(self):
        system = build_system(n=4)
        for process in system.processes:
            assert process.failure_detector is not None

    def test_fd_system_has_no_membership(self):
        system = build_system(algorithm="fd")
        with pytest.raises(ValueError):
            system.membership(0)

    def test_gm_system_exposes_membership(self):
        system = build_system(algorithm="gm")
        assert system.membership(1).view.members == (0, 1, 2)

    def test_start_is_idempotent(self):
        system = build_system()
        system.start()
        system.start()
        assert system.sim.now == 0.0

    def test_crash_marks_process(self):
        system = build_system()
        system.start()
        system.crash(2)
        assert system.processes[2].crashed
        assert system.correct_processes() == [0, 1]

    def test_broadcast_returns_identifier(self):
        system = build_system()
        system.start()
        bid = system.broadcast(1, "x")
        assert bid.sender == 1
        assert bid.seq == 1

    def test_message_stats_exposed(self):
        system = build_system()
        system.start()
        system.broadcast_at(1.0, 0, "x")
        system.run(until=50.0)
        stats = system.message_stats()
        assert stats["messages_sent"] > 0

    def test_delivery_listener_sees_all_processes(self):
        system = build_system()
        system.start()
        seen = set()
        system.add_delivery_listener(lambda pid, bid, payload: seen.add(pid))
        system.broadcast_at(1.0, 0, "x")
        system.run(until=50.0)
        assert seen == {0, 1, 2}

    def test_same_seed_reproduces_exact_delivery_times(self):
        def trace(seed):
            system = build_system(SystemConfig(n=3, algorithm="fd", seed=seed))
            system.start()
            times = []
            system.add_delivery_listener(
                lambda pid, bid, payload: times.append((round(system.sim.now, 9), pid, bid))
            )
            for i in range(5):
                system.broadcast_at(1.0 + 2 * i, i % 3, f"m{i}")
            system.run(until=200.0)
            return times

        first = trace(5)
        assert first == trace(5)
        assert len(first) == 5 * 3
