"""Unit tests for the system builder and the stack-based configuration."""

import warnings

import pytest

from repro import ALGORITHMS, SystemConfig, available_stacks, build_system
from repro.failure_detectors.heartbeat import HeartbeatFailureDetectorFabric
from repro.failure_detectors.perfect import PerfectFailureDetectorFabric
from repro.failure_detectors.qos import QoSFailureDetectorFabric


class TestSystemConfig:
    def test_defaults(self):
        config = SystemConfig()
        assert config.n == 3
        assert config.stack == "fd"
        assert config.fd_kind == "qos"
        assert config.lambda_cpu == 1.0

    def test_unknown_stack_rejected(self):
        with pytest.raises(ValueError, match="unknown stack"):
            SystemConfig(stack="paxos")

    def test_unknown_fd_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fd kind"):
            SystemConfig(fd_kind="telepathy")

    def test_zero_processes_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(n=0)

    def test_with_seed_copies(self):
        config = SystemConfig(seed=1)
        other = config.with_seed(99)
        assert other.seed == 99
        assert other.n == config.n
        assert config.seed == 1

    def test_max_tolerated_crashes(self):
        assert SystemConfig(n=3).max_tolerated_crashes() == 1
        assert SystemConfig(n=7).max_tolerated_crashes() == 3
        assert SystemConfig(n=4).max_tolerated_crashes() == 1

    def test_algorithms_constant_matches_builtin_stacks(self):
        assert set(ALGORITHMS) == {"fd", "gm", "gm-nonuniform"}
        assert set(ALGORITHMS) <= set(available_stacks())

    def test_slash_stack_selects_fd_kind(self):
        config = SystemConfig(stack="fd/heartbeat")
        assert config.stack == "fd"
        assert config.fd_kind == "heartbeat"
        assert config.stack_label == "fd/heartbeat"

    def test_slash_stack_conflicting_fd_kind_rejected(self):
        with pytest.raises(ValueError, match="conflicting"):
            SystemConfig(stack="fd/heartbeat", fd_kind="perfect")

    def test_stack_label_default_kind_is_bare(self):
        assert SystemConfig(stack="gm").stack_label == "gm"
        assert SystemConfig(stack="gm", fd_kind="perfect").stack_label == "gm/perfect"

    def test_normalised_selections_compare_equal(self):
        assert SystemConfig(stack="fd/perfect") == SystemConfig(stack="fd", fd_kind="perfect")


class TestDeprecatedAlgorithmAlias:
    def test_algorithm_kwarg_warns_exactly_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = SystemConfig(n=3, algorithm="gm")
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert config.stack == "gm"

    def test_replacing_an_aliased_config_does_not_rewarn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = SystemConfig(n=3, algorithm="gm")
            config.with_seed(5)
            build_system(config, seed=9)
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1

    def test_algorithm_property_reads_back_the_stack(self):
        assert SystemConfig(stack="gm-nonuniform").algorithm == "gm-nonuniform"

    def test_conflicting_stack_and_algorithm_rejected(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="conflicting"):
                SystemConfig(stack="fd", algorithm="gm")

    def test_unknown_algorithm_still_rejected(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="unknown stack"):
                SystemConfig(algorithm="paxos")

    def test_build_system_algorithm_override_maps_to_stack(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            system = build_system(SystemConfig(n=3), algorithm="gm")
        assert system.config.stack == "gm"
        assert any(w.category is DeprecationWarning for w in caught)


class TestBuildSystem:
    def test_build_with_overrides(self):
        system = build_system(n=5, stack="gm", seed=3)
        assert system.config.n == 5
        assert system.config.stack == "gm"

    def test_build_with_config_and_overrides(self):
        system = build_system(SystemConfig(n=3), seed=42)
        assert system.config.seed == 42

    def test_overrides_round_trip_every_axis(self):
        base = SystemConfig()
        system = build_system(
            base, n=5, stack="gm-nonuniform", fd_kind="perfect", seed=11, pipeline_depth=1
        )
        config = system.config
        assert (config.n, config.stack, config.fd_kind) == (5, "gm-nonuniform", "perfect")
        assert (config.seed, config.pipeline_depth) == (11, 1)
        # the original configuration is untouched
        assert (base.n, base.stack, base.fd_kind, base.seed) == (3, "fd", "qos", 1)

    def test_slash_stack_override_folds_into_both_fields(self):
        system = build_system(SystemConfig(n=3), stack="fd/heartbeat")
        assert system.config.stack == "fd"
        assert system.config.fd_kind == "heartbeat"

    def test_slash_stack_override_conflicting_fd_kind_rejected(self):
        with pytest.raises(ValueError, match="conflicting"):
            build_system(SystemConfig(n=3), stack="fd/heartbeat", fd_kind="qos")

    def test_fd_kind_selects_the_fabric_implementation(self):
        assert isinstance(build_system(fd_kind="qos").fd_fabric, QoSFailureDetectorFabric)
        assert isinstance(
            build_system(fd_kind="heartbeat").fd_fabric, HeartbeatFailureDetectorFabric
        )
        assert isinstance(
            build_system(fd_kind="perfect").fd_fabric, PerfectFailureDetectorFabric
        )

    def test_every_process_has_failure_detector(self):
        system = build_system(n=4)
        for process in system.processes:
            assert process.failure_detector is not None

    def test_heartbeat_processes_own_their_detector_component(self):
        system = build_system(n=3, fd_kind="heartbeat")
        for process in system.processes:
            assert process.failure_detector is system.fd_fabric.detector(process.pid)
            assert process.has_component("heartbeat-fd")

    def test_fd_system_has_no_membership(self):
        system = build_system(stack="fd")
        with pytest.raises(ValueError):
            system.membership(0)

    def test_gm_system_exposes_membership(self):
        system = build_system(stack="gm")
        assert system.membership(1).view.members == (0, 1, 2)

    def test_start_is_idempotent(self):
        system = build_system()
        system.start()
        system.start()
        assert system.sim.now == 0.0

    def test_crash_marks_process(self):
        system = build_system()
        system.start()
        system.crash(2)
        assert system.processes[2].crashed
        assert system.correct_processes() == [0, 1]

    def test_broadcast_returns_identifier(self):
        system = build_system()
        system.start()
        bid = system.broadcast(1, "x")
        assert bid.sender == 1
        assert bid.seq == 1

    def test_message_stats_exposed(self):
        system = build_system()
        system.start()
        system.broadcast_at(1.0, 0, "x")
        system.run(until=50.0)
        stats = system.message_stats()
        assert stats["messages_sent"] > 0

    def test_delivery_listener_sees_all_processes(self):
        system = build_system()
        system.start()
        seen = set()
        system.add_delivery_listener(lambda pid, bid, payload: seen.add(pid))
        system.broadcast_at(1.0, 0, "x")
        system.run(until=50.0)
        assert seen == {0, 1, 2}

    def test_same_seed_reproduces_exact_delivery_times(self):
        def trace(seed):
            system = build_system(SystemConfig(n=3, stack="fd", seed=seed))
            system.start()
            times = []
            system.add_delivery_listener(
                lambda pid, bid, payload: times.append((round(system.sim.now, 9), pid, bid))
            )
            for i in range(5):
                system.broadcast_at(1.0 + 2 * i, i % 3, f"m{i}")
            system.run(until=200.0)
            return times

        first = trace(5)
        assert first == trace(5)
        assert len(first) == 5 * 3

    def test_every_stack_delivers_under_every_fd_kind(self):
        for stack in ("fd", "gm", "gm-nonuniform"):
            for fd_kind in ("qos", "heartbeat", "perfect"):
                system = build_system(n=3, stack=stack, fd_kind=fd_kind, seed=3)
                system.broadcast_at(1.0, 0, "x")
                system.run(until=300.0)
                counts = {pid: len(seq) for pid, seq in system.delivery_sequences().items()}
                assert counts == {0: 1, 1: 1, 2: 1}, (stack, fd_kind)
