"""Unit tests for the shared core types."""


from repro.core.types import AtomicBroadcast, BroadcastID, View
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.process import SimProcess


class TestBroadcastID:
    def test_ordering_is_lexicographic(self):
        assert BroadcastID(0, 2) < BroadcastID(1, 1)
        assert BroadcastID(1, 1) < BroadcastID(1, 2)

    def test_string_form(self):
        assert str(BroadcastID(2, 7)) == "m(2.7)"

    def test_hashable_and_equal(self):
        assert BroadcastID(1, 1) == BroadcastID(1, 1)
        assert len({BroadcastID(1, 1), BroadcastID(1, 1)}) == 1


class TestView:
    def test_sequencer_is_first_member(self):
        assert View(3, (4, 1, 2)).sequencer == 4

    def test_majority(self):
        assert View(0, (0, 1, 2)).majority() == 2
        assert View(0, (0, 1, 2, 3)).majority() == 3
        assert View(0, (0,)).majority() == 1

    def test_string_form(self):
        assert "view#2" in str(View(2, (0, 1)))


class RecordingBroadcast(AtomicBroadcast):
    protocol = "abcast"

    def broadcast(self, payload):
        broadcast_id = self._next_broadcast_id()
        self._notify_broadcast(broadcast_id, payload)
        return broadcast_id

    def on_message(self, sender, body):
        pass


def make_abcast():
    sim = Simulator()
    network = Network(sim, NetworkConfig(n=1))
    process = SimProcess(sim, network, 0)
    return RecordingBroadcast(process)


class TestAtomicBroadcastBase:
    def test_broadcast_ids_increase(self):
        abcast = make_abcast()
        first = abcast.broadcast("a")
        second = abcast.broadcast("b")
        assert first < second
        assert first.sender == 0

    def test_deliver_is_idempotent(self):
        abcast = make_abcast()
        bid = BroadcastID(0, 1)
        assert abcast._deliver(bid, "x") is True
        assert abcast._deliver(bid, "x") is False
        assert abcast.delivered == [(bid, "x")]
        assert abcast.delivered_count == 1

    def test_delivery_listeners_called_once(self):
        abcast = make_abcast()
        seen = []
        abcast.add_delivery_listener(lambda bid, payload: seen.append(payload))
        bid = BroadcastID(0, 1)
        abcast._deliver(bid, "x")
        abcast._deliver(bid, "x")
        assert seen == ["x"]

    def test_broadcast_listeners_called(self):
        abcast = make_abcast()
        seen = []
        abcast.add_broadcast_listener(lambda bid, payload: seen.append((bid.seq, payload)))
        abcast.broadcast("a")
        abcast.broadcast("b")
        assert seen == [(1, "a"), (2, "b")]

    def test_has_delivered_and_ids(self):
        abcast = make_abcast()
        bid = BroadcastID(0, 1)
        assert not abcast.has_delivered(bid)
        abcast._deliver(bid, "x")
        assert abcast.has_delivered(bid)
        assert abcast.delivered_ids() == [bid]
