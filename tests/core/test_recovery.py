"""Crash-recovery unit tests: rejoin, catch-up, view changes, FD trust."""

from repro import SystemConfig, build_system
from repro.core.group_membership import MEMBER
from repro.failure_detectors.qos import QoSConfig


def make_system(algorithm, n=3, seed=5, detection_time=10.0, **overrides):
    config = SystemConfig(
        n=n,
        stack=algorithm,
        seed=seed,
        fd=QoSConfig(detection_time=detection_time),
        **overrides,
    )
    return build_system(config)


def assert_prefix(seq_a, seq_b):
    m = min(len(seq_a), len(seq_b))
    assert seq_a[:m] == seq_b[:m]


class TestRecoveredProcessCatchesUp:
    def test_recovered_process_converges_with_the_group(self, algorithm):
        system = make_system(algorithm)
        system.start()
        for time, sender in [(5.0, 0), (15.0, 1), (100.0, 0), (300.0, 1), (500.0, 0)]:
            system.broadcast_at(time, sender, f"m-{time}-{sender}")
        system.crash_at(50.0, 2)
        system.recover_at(250.0, 2)
        system.run(until=3000.0, max_events=500_000)
        sequences = system.delivery_sequences()
        assert len(sequences[0]) == 5
        assert sequences[2] == sequences[0] == sequences[1]

    def test_recovered_process_can_broadcast_again(self, algorithm):
        system = make_system(algorithm)
        system.start()
        system.broadcast_at(5.0, 0, "before")
        system.crash_at(20.0, 2)
        system.recover_at(200.0, 2)
        system.broadcast_at(1500.0, 2, "from-recovered")
        system.run(until=4000.0, max_events=500_000)
        for pid in range(3):
            payloads = [payload for _bid, payload in system.abcast(pid).delivered]
            assert payloads == ["before", "from-recovered"]

    def test_short_crash_below_detection_time_goes_unnoticed_by_detectors(self, algorithm):
        system = make_system(algorithm, detection_time=50.0)
        system.start()
        system.broadcast_at(5.0, 0, "a")
        system.crash_at(20.0, 2)
        system.recover_at(30.0, 2)  # back before T_D = 50 elapses
        system.broadcast_at(400.0, 1, "b")
        system.run(until=3000.0, max_events=500_000)
        detector = system.fd_fabric.detector(0)
        assert detector.suspicion_events == 0
        sequences = system.delivery_sequences()
        assert sequences[2] == sequences[0]
        assert len(sequences[0]) == 2

    def test_double_crash_recover_cycle(self, algorithm):
        system = make_system(algorithm)
        system.start()
        for time, sender in [(5.0, 0), (300.0, 1), (900.0, 0), (1600.0, 1)]:
            system.broadcast_at(time, sender, f"m-{time}")
        system.crash_at(50.0, 2)
        system.recover_at(400.0, 2)
        system.crash_at(1000.0, 2)
        system.recover_at(1300.0, 2)
        system.run(until=5000.0, max_events=800_000)
        sequences = system.delivery_sequences()
        assert len(sequences[0]) == 4
        assert sequences[2] == sequences[0]


class TestRecoveryPayloadRefetch:
    def test_fd_refetches_payload_of_instance_decided_after_catchup(self):
        # m is A-broadcast while p2 is down and its consensus instance is
        # still undecided when p2's recovery catch-up runs: the decision
        # reaches p2 later by reliable broadcast, but the payload must be
        # re-requested explicitly (the trusted origin never relays it).
        system = make_system("fd", detection_time=5.0)
        system.start()
        system.broadcast_at(5.0, 0, "before")
        system.crash_at(10.0, 2)
        system.broadcast_at(20.0, 0, "while-down")
        system.recover_at(20.5, 2)
        system.broadcast_at(200.0, 1, "after")
        system.run(until=5000.0, max_events=500_000)
        sequences = system.delivery_sequences()
        assert len(sequences[0]) == 3
        assert sequences[2] == sequences[0]
        payloads = [payload for _bid, payload in system.abcast(2).delivered]
        assert payloads == ["before", "while-down", "after"]


class TestGroupMembershipRejoin:
    def test_recovery_triggers_readmission_view_change(self):
        system = make_system("gm")
        system.start()
        system.broadcast_at(5.0, 0, "a")
        system.crash_at(50.0, 2)
        system.recover_at(400.0, 2)
        system.run(until=3000.0, max_events=500_000)
        membership = system.membership(2)
        assert membership.status == MEMBER
        assert 2 in membership.view.members
        # Exclusion view change + readmission view change both happened.
        assert system.membership(0).views_installed >= 2
        assert membership.view.view_id == system.membership(0).view.view_id

    def test_on_recover_reconciles_back_to_membership(self):
        system = make_system("gm")
        system.start()
        system.crash_at(50.0, 2)
        system.run(until=100.0)
        membership = system.membership(2)
        system.recover(2)
        # The recovered process reconciles (stale view change answered with
        # the group's current view, then a state transfer) and is a member
        # of the current view again.
        assert membership.status != MEMBER or membership.view.view_id == 0
        system.run(until=2000.0, max_events=300_000)
        assert membership.status == MEMBER
        assert membership.view.view_id == system.membership(0).view.view_id

    def test_crashed_sequencer_recovers_as_non_sequencer(self):
        system = make_system("gm")
        system.start()
        system.broadcast_at(5.0, 1, "a")
        system.crash_at(50.0, 0)  # the sequencer of the initial view
        system.recover_at(500.0, 0)
        system.broadcast_at(2000.0, 1, "b")
        system.run(until=6000.0, max_events=800_000)
        membership = system.membership(0)
        assert membership.status == MEMBER
        assert 0 in membership.view.members
        # The recovered ex-sequencer is re-admitted at the back of the view.
        assert membership.view.sequencer != 0
        sequences = system.delivery_sequences()
        assert sequences[0] == sequences[1] == sequences[2]
        assert len(sequences[1]) == 2


class TestFailureDetectorRecovery:
    def test_trust_restored_one_detection_time_after_recovery(self):
        system = make_system("fd", detection_time=20.0)
        system.start()
        system.crash_at(10.0, 2)
        system.recover_at(100.0, 2)
        system.run(until=40.0)
        assert system.fd_fabric.detector(0).is_suspected(2)
        system.run(until=119.0)
        assert system.fd_fabric.detector(0).is_suspected(2)
        system.run(until=121.0)
        assert not system.fd_fabric.detector(0).is_suspected(2)

    def test_recrash_cancels_pending_trust_restoration(self):
        system = make_system("fd", detection_time=20.0)
        system.start()
        system.crash_at(10.0, 2)
        system.recover_at(100.0, 2)
        system.crash_at(110.0, 2)  # down again before trust returns at 120
        system.run(until=500.0)
        assert system.fd_fabric.detector(0).is_suspected(2)

    def test_wrong_suspicion_interrupted_by_crash_is_lifted_on_recovery(self):
        # Begin a wrong-suspicion window whose end event gets cancelled by
        # the monitor's crash: recovery must lift the suspicion instead of
        # leaving it stuck forever (recurrence is effectively disabled, so a
        # lingering suspicion could only be the cancelled window).
        config = SystemConfig(
            n=3,
            stack="fd",
            seed=7,
            fd=QoSConfig(
                detection_time=5.0,
                mistake_recurrence_time=1e12,
                mistake_duration=1e6,
            ),
        )
        system = build_system(config)
        system.start()
        system.run(until=10.0)
        system.fd_fabric._mistake_begins(0, 1)  # white-box: open a long window
        assert system.fd_fabric.detector(0).is_suspected(1)
        system.crash(0)
        system.recover(0)
        assert not system.fd_fabric.detector(0).is_suspected(1)
        system.run(until=100.0)
        assert not system.fd_fabric.detector(0).is_suspected(1)

    def test_mistake_generation_resumes_after_recovery(self):
        config = SystemConfig(
            n=3,
            stack="fd",
            seed=9,
            fd=QoSConfig(
                detection_time=5.0,
                mistake_recurrence_time=50.0,
                mistake_duration=1.0,
            ),
        )
        system = build_system(config)
        system.start()
        system.crash_at(10.0, 2)
        system.recover_at(200.0, 2)
        system.run(until=2000.0, max_events=300_000)
        detector = system.fd_fabric.detector(2)
        # The recovered process's own detector makes fresh mistakes again.
        assert detector.suspicion_events > 0


class TestPairOverrides:
    def test_only_the_flaky_pair_makes_mistakes(self):
        fd = QoSConfig().with_pair(1, 0, mistake_recurrence_time=50.0, mistake_duration=1.0)
        config = SystemConfig(n=3, stack="fd", seed=9, fd=fd)
        system = build_system(config)
        system.start()
        system.run(until=5000.0, max_events=300_000)
        assert system.fd_fabric.detector(1).suspicion_events > 0
        assert system.fd_fabric.detector(0).suspicion_events == 0
        assert system.fd_fabric.detector(2).suspicion_events == 0

    def test_pair_lookup_and_replacement(self):
        config = QoSConfig().with_pair(1, 0, mistake_recurrence_time=100.0)
        assert config.pair(1, 0).mistake_recurrence_time == 100.0
        assert config.pair(0, 1) is config
        assert config.generates_mistakes
        replaced = config.with_pair(1, 0, mistake_recurrence_time=200.0)
        assert len(replaced.pair_overrides) == 1
        assert replaced.pair(1, 0).mistake_recurrence_time == 200.0

    def test_pair_override_inherits_unnamed_fields(self):
        config = QoSConfig(detection_time=10.0).with_pair(
            1, 0, mistake_recurrence_time=100.0
        )
        # Overriding the mistake parameters must not reset the pair's T_D.
        assert config.pair(1, 0).detection_time == 10.0
        import pytest

        with pytest.raises(TypeError):
            QoSConfig().with_pair(1, 0, not_a_field=1.0)

    def test_per_pair_detection_time(self):
        config = SystemConfig(
            n=3,
            stack="fd",
            seed=9,
            fd=QoSConfig(detection_time=10.0).with_pair(1, 2, detection_time=100.0),
        )
        system = build_system(config)
        system.start()
        system.crash_at(10.0, 2)
        system.run(until=50.0)
        assert system.fd_fabric.detector(0).is_suspected(2)  # default T_D = 10
        assert not system.fd_fabric.detector(1).is_suspected(2)  # override T_D = 100
        system.run(until=150.0)
        assert system.fd_fabric.detector(1).is_suspected(2)

    def test_nested_overrides_rejected(self):
        import pytest

        outer = QoSConfig().with_pair(1, 0, mistake_recurrence_time=10.0)
        with pytest.raises(ValueError):
            QoSConfig(pair_overrides=(((2, 0), outer),))
