"""Scaffolding shared by the core-algorithm unit tests."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.consensus import ConsensusService
from repro.core.reliable_broadcast import ReliableBroadcast
from repro.failure_detectors.qos import QoSConfig, QoSFailureDetectorFabric
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.process import SimProcess
from repro.sim.rng import RandomStreams


class ConsensusHarness:
    """n processes, each with reliable broadcast + consensus + a QoS detector."""

    def __init__(self, n: int = 3, seed: int = 1, qos: Optional[QoSConfig] = None) -> None:
        self.n = n
        self.sim = Simulator()
        self.network = Network(self.sim, NetworkConfig(n=n))
        self.fabric = QoSFailureDetectorFabric(
            self.sim, self.network, RandomStreams(seed), qos or QoSConfig()
        )
        self.processes: List[SimProcess] = []
        self.rbcasts: List[ReliableBroadcast] = []
        self.services: List[ConsensusService] = []
        self.decisions: Dict[int, Dict] = {pid: {} for pid in range(n)}
        for pid in range(n):
            process = SimProcess(self.sim, self.network, pid)
            process.failure_detector = self.fabric.detector(pid)
            rbcast = ReliableBroadcast(process)
            service = ConsensusService(process, rbcast)
            service.add_decision_listener(
                lambda cid, value, _pid=pid: self.decisions[_pid].__setitem__(cid, value)
            )
            self.processes.append(process)
            self.rbcasts.append(rbcast)
            self.services.append(service)

    def start(self) -> None:
        for process in self.processes:
            process.start()
        self.fabric.start()

    def propose_all(self, cid, values, participants=None, order=None) -> None:
        """Every process proposes its value from ``values`` (list indexed by pid)."""
        participants = participants or list(range(self.n))
        for pid in participants:
            self.services[pid].propose(cid, values[pid], participants, order)

    def run(self, until: float = 10_000.0) -> None:
        self.sim.run(until=until)

    def decided_values(self, cid) -> Dict[int, object]:
        return {
            pid: decisions[cid]
            for pid, decisions in self.decisions.items()
            if cid in decisions
        }
