"""Unit tests for the Chandra-Toueg (FD) atomic broadcast."""

import pytest

from repro import QoSConfig, SystemConfig, build_system
from tests.conftest import assert_no_duplicates, assert_prefix_consistent


def fd_system(n=3, seed=11, **overrides):
    return build_system(SystemConfig(n=n, stack="fd", seed=seed, **overrides))


class TestDelivery:
    def test_single_message_delivered_everywhere(self):
        system = fd_system()
        system.start()
        system.broadcast_at(1.0, 0, "hello")
        system.run(until=100.0)
        for pid in range(3):
            assert system.abcast(pid).delivered == [((0, 1), "hello")]

    def test_total_order_with_concurrent_senders(self):
        system = fd_system()
        system.start()
        for i in range(10):
            system.broadcast_at(1.0 + 0.3 * i, i % 3, f"m{i}")
        system.run(until=1000.0)
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert_no_duplicates(sequences)
        assert all(len(seq) == 10 for seq in sequences.values())

    def test_messages_from_same_sender_delivered_in_fifo_order(self):
        system = fd_system()
        system.start()
        for i in range(5):
            system.broadcast_at(1.0 + i, 1, f"m{i}")
        system.run(until=500.0)
        delivered = [payload for _bid, payload in system.abcast(0).delivered]
        assert delivered == [f"m{i}" for i in range(5)]

    def test_payloads_preserved(self):
        system = fd_system()
        system.start()
        payload = {"nested": [1, 2, 3]}
        system.broadcast_at(1.0, 2, payload)
        system.run(until=100.0)
        assert system.abcast(0).delivered[0][1] == payload

    def test_broadcast_from_crashed_process_never_delivered(self):
        system = fd_system()
        system.start()
        system.crash_at(0.5, 1)
        system.broadcast_at(1.0, 1, "ghost")
        system.run(until=500.0)
        assert all(abcast.delivered == [] for abcast in system.abcasts)


class TestAggregation:
    def test_burst_is_ordered_by_few_consensus_instances(self):
        system = fd_system()
        system.start()
        # 20 messages within 2 ms: far less than 20 consensus instances must
        # be needed thanks to aggregation.
        for i in range(20):
            system.broadcast_at(1.0 + 0.1 * i, i % 3, f"m{i}")
        system.run(until=1000.0)
        instances = system.abcasts[0]._last_decided
        assert all(len(seq) == 20 for seq in system.delivery_sequences().values())
        assert instances <= 12

    def test_pipeline_depth_one_is_strictly_sequential(self):
        system = fd_system(pipeline_depth=1)
        system.start()
        for i in range(6):
            system.broadcast_at(1.0 + i * 0.5, i % 3, f"m{i}")
        system.run(until=500.0)
        assert all(len(seq) == 6 for seq in system.delivery_sequences().values())

    def test_invalid_pipeline_depth_rejected(self):
        from repro.core.fd_broadcast import FDAtomicBroadcast

        system = fd_system()
        with pytest.raises(ValueError):
            FDAtomicBroadcast(
                system.processes[0],
                system.rbcasts[0],
                system.consensus_services[0],
                pipeline_depth=0,
            )


class TestCrashes:
    def test_delivery_continues_after_coordinator_crash(self):
        system = fd_system(fd=QoSConfig(detection_time=10.0))
        system.start()
        system.broadcast_at(1.0, 1, "before")
        system.crash_at(50.0, 0)
        system.broadcast_at(60.0, 1, "after-1")
        system.broadcast_at(70.0, 2, "after-2")
        system.run(until=2000.0)
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences, processes=[1, 2])
        assert len(sequences[1]) == 3
        assert len(sequences[2]) == 3

    def test_uniformity_crashed_process_deliveries_are_a_prefix(self):
        system = fd_system(fd=QoSConfig(detection_time=10.0))
        system.start()
        for i in range(8):
            system.broadcast_at(1.0 + 5 * i, (i % 2) + 1, f"m{i}")
        system.crash_at(22.0, 0)
        system.run(until=2000.0)
        sequences = system.delivery_sequences()
        # Uniform atomic broadcast: even the crashed process's deliveries must
        # be a prefix of the agreed order.
        assert_prefix_consistent(sequences)

    def test_tolerates_f_crashes_n7(self):
        system = fd_system(n=7, fd=QoSConfig(detection_time=10.0))
        system.start()
        for pid in (4, 5, 6):
            system.crash_at(30.0 + pid, pid)
        for i in range(10):
            system.broadcast_at(1.0 + 10 * i, i % 4, f"m{i}")
        system.run(until=5000.0)
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences, processes=[0, 1, 2, 3])
        assert all(len(sequences[pid]) == 10 for pid in range(4))

    def test_blocks_without_majority(self):
        system = fd_system(fd=QoSConfig(detection_time=5.0))
        system.start()
        system.crash_at(0.5, 1)
        system.crash_at(0.5, 2)
        system.broadcast_at(10.0, 0, "stuck")
        system.run(until=2000.0)
        # With only 1 of 3 processes alive no message can be ordered.
        assert system.abcast(0).delivered == []


class TestRenumbering:
    def test_renumbering_moves_coordinator_away_from_crashed_process(self):
        system = fd_system(fd=QoSConfig(detection_time=5.0), renumber_coordinators=True)
        system.start()
        system.crash_at(20.0, 0)
        for i in range(12):
            system.broadcast_at(30.0 + 10 * i, 1 + (i % 2), f"m{i}")
        system.run(until=5000.0)
        abcast = system.abcasts[1]
        # After a while the coordinator order must start with a live process.
        order = abcast._coordinator_order_for(abcast._last_decided + 1)
        assert order[0] != 0
        assert all(len(seq) == 12 for pid, seq in system.delivery_sequences().items() if pid != 0)

    def test_renumbering_can_be_disabled(self):
        system = fd_system(renumber_coordinators=False)
        system.start()
        for i in range(6):
            system.broadcast_at(1.0 + 2 * i, i % 3, f"m{i}")
        system.run(until=500.0)
        abcast = system.abcasts[0]
        assert abcast._coordinator_order_for(abcast._last_decided + 1) == (0, 1, 2)

    def test_direct_message_to_fd_abcast_rejected(self):
        system = fd_system()
        with pytest.raises(RuntimeError):
            system.abcasts[0].on_message(1, ("bogus",))
