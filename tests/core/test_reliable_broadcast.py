"""Unit tests for the reliable broadcast component."""

from repro.core.reliable_broadcast import ReliableBroadcast
from repro.failure_detectors.interface import FailureDetector
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.process import SimProcess


def build(n=3):
    sim = Simulator()
    network = Network(sim, NetworkConfig(n=n))
    processes = [SimProcess(sim, network, pid) for pid in range(n)]
    detectors = [FailureDetector(pid, range(n)) for pid in range(n)]
    rbcasts = []
    deliveries = {pid: [] for pid in range(n)}
    for pid, process in enumerate(processes):
        process.failure_detector = detectors[pid]
        rbcast = ReliableBroadcast(process)
        rbcast.add_listener(
            lambda origin, uid, payload, _pid=pid: deliveries[_pid].append((origin, payload))
        )
        rbcasts.append(rbcast)
        process.start()
    return sim, network, processes, detectors, rbcasts, deliveries


class TestReliableBroadcast:
    def test_broadcast_reaches_everyone_including_origin(self):
        sim, _n, _p, _d, rbcasts, deliveries = build()
        rbcasts[0].broadcast("hello")
        sim.run()
        assert deliveries[0] == [(0, "hello")]
        assert deliveries[1] == [(0, "hello")]
        assert deliveries[2] == [(0, "hello")]

    def test_costs_one_multicast_in_the_common_case(self):
        sim, network, _p, _d, rbcasts, _deliveries = build()
        rbcasts[0].broadcast("payload")
        sim.run()
        assert network.stats.multicasts_sent == 1
        assert network.stats.unicasts_sent == 0

    def test_uid_identifies_origin_and_sequence(self):
        _sim, _n, _p, _d, rbcasts, _deliveries = build()
        uid1 = rbcasts[1].broadcast("a")
        uid2 = rbcasts[1].broadcast("b")
        assert uid1 == (1, 1)
        assert uid2 == (1, 2)

    def test_duplicates_are_suppressed(self):
        sim, _n, _p, _d, rbcasts, deliveries = build()
        rbcasts[0].broadcast("once")
        sim.run()
        # Simulate a relayed duplicate arriving later.
        rbcasts[1].on_message(0, ("RB", (0, 1), 0, (0, 1, 2), "once"))
        assert deliveries[1] == [(0, "once")]

    def test_restricted_group(self):
        sim, _n, _p, _d, rbcasts, deliveries = build()
        rbcasts[0].broadcast("secret", group=[0, 1])
        sim.run()
        assert deliveries[2] == []
        assert deliveries[1] == [(0, "secret")]

    def test_relay_on_suspicion_of_origin(self):
        sim, network, _p, detectors, rbcasts, deliveries = build()
        rbcasts[0].broadcast("relayed")
        sim.run()
        before = network.stats.messages_sent
        detectors[1].force_suspect(0)
        sim.run()
        assert rbcasts[1].relays == 1
        assert network.stats.messages_sent == before + 1
        # Redelivery did not happen (duplicates suppressed).
        assert deliveries[2] == [(0, "relayed")]

    def test_stable_messages_are_not_relayed(self):
        sim, _n, _p, detectors, rbcasts, _deliveries = build()
        uid = rbcasts[0].broadcast("stable")
        sim.run()
        rbcasts[1].mark_stable(uid)
        detectors[1].force_suspect(0)
        sim.run()
        assert rbcasts[1].relays == 0

    def test_suspicion_of_other_process_does_not_relay(self):
        sim, _n, _p, detectors, rbcasts, _deliveries = build()
        rbcasts[0].broadcast("x")
        sim.run()
        detectors[1].force_suspect(2)
        sim.run()
        assert rbcasts[1].relays == 0

    def test_unstable_count_tracks_buffer(self):
        sim, _n, _p, _d, rbcasts, _deliveries = build()
        uid = rbcasts[0].broadcast("x")
        sim.run()
        assert rbcasts[1].unstable_count() == 1
        rbcasts[1].mark_stable(uid)
        assert rbcasts[1].unstable_count() == 0

    def test_trust_event_does_not_relay(self):
        sim, _n, _p, detectors, rbcasts, _deliveries = build()
        rbcasts[0].broadcast("x")
        sim.run()
        detectors[1].force_suspect(0)
        detectors[1].force_trust(0)
        sim.run()
        assert rbcasts[1].relays == 1  # only the suspicion relays, once
