"""Unit tests for the Chandra-Toueg consensus implementation."""

import pytest

from repro.core.consensus import ConsensusInstance
from repro.failure_detectors.qos import QoSConfig

from tests.core.helpers import ConsensusHarness


class TestFailureFreeRuns:
    def test_all_processes_decide_the_same_value(self):
        harness = ConsensusHarness(n=3)
        harness.start()
        harness.propose_all("c1", ["v0", "v1", "v2"])
        harness.run()
        decided = harness.decided_values("c1")
        assert set(decided) == {0, 1, 2}
        assert len(set(decided.values())) == 1

    def test_decision_is_a_proposed_value(self):
        harness = ConsensusHarness(n=5)
        harness.start()
        values = [f"value-{pid}" for pid in range(5)]
        harness.propose_all("c1", values)
        harness.run()
        decided = harness.decided_values("c1")
        assert all(value in values for value in decided.values())

    def test_round1_coordinator_value_wins_without_failures(self):
        harness = ConsensusHarness(n=3)
        harness.start()
        harness.propose_all("c1", ["coordinator-value", "other", "other2"])
        harness.run()
        assert set(harness.decided_values("c1").values()) == {"coordinator-value"}

    def test_single_instance_message_pattern(self):
        harness = ConsensusHarness(n=3)
        harness.start()
        harness.propose_all("c1", ["a", "b", "c"])
        harness.run()
        stats = harness.network.stats
        # 1 proposal multicast + 2 acks + 1 decision multicast.
        assert stats.multicasts_sent == 2
        assert stats.unicasts_sent == 2

    def test_each_instance_decides_in_one_round(self):
        harness = ConsensusHarness(n=3)
        harness.start()
        harness.propose_all("c1", ["a", "b", "c"])
        harness.run()
        for service in harness.services:
            assert service.instance("c1").rounds_executed == 1

    def test_multiple_instances_are_independent(self):
        harness = ConsensusHarness(n=3)
        harness.start()
        harness.propose_all("first", ["a0", "a1", "a2"])
        harness.propose_all("second", ["b0", "b1", "b2"])
        harness.run()
        assert set(harness.decided_values("first").values()) == {"a0"}
        assert set(harness.decided_values("second").values()) == {"b0"}

    def test_custom_coordinator_order(self):
        harness = ConsensusHarness(n=3)
        harness.start()
        harness.propose_all("c1", ["v0", "v1", "v2"], order=[2, 0, 1])
        harness.run()
        assert set(harness.decided_values("c1").values()) == {"v2"}

    def test_participants_subset(self):
        harness = ConsensusHarness(n=5)
        harness.start()
        harness.propose_all("c1", ["v0", "v1", "v2", "v3", "v4"], participants=[1, 2, 3])
        harness.run()
        decided = harness.decided_values("c1")
        assert set(decided) == {1, 2, 3}
        assert set(decided.values()) == {"v1"}

    def test_is_decided_and_decision_accessors(self):
        harness = ConsensusHarness(n=3)
        harness.start()
        harness.propose_all("c1", ["a", "b", "c"])
        harness.run()
        service = harness.services[1]
        assert service.is_decided("c1")
        assert service.decision("c1") == "a"
        assert not service.is_decided("unknown")

    def test_propose_twice_returns_same_instance(self):
        harness = ConsensusHarness(n=3)
        harness.start()
        first = harness.services[0].propose("c1", "a", [0, 1, 2])
        second = harness.services[0].propose("c1", "ignored", [0, 1, 2])
        assert first is second


class TestLatecomers:
    def test_messages_buffered_until_local_propose(self):
        harness = ConsensusHarness(n=3)
        harness.start()
        # Only processes 0 and 1 propose at first.
        harness.services[0].propose("c1", "a", [0, 1, 2])
        harness.services[1].propose("c1", "b", [0, 1, 2])
        harness.run(until=50.0)
        assert harness.services[2].has_buffered("c1") or harness.services[2].is_decided("c1")
        # The decision still reaches process 2 through reliable broadcast.
        assert 2 in harness.decided_values("c1")

    def test_unknown_instance_listener_fires_once(self):
        harness = ConsensusHarness(n=3)
        unknown = []
        harness.services[2].add_unknown_instance_listener(unknown.append)
        harness.start()
        harness.services[0].propose("c1", "a", [0, 1, 2])
        harness.run(until=50.0)
        assert unknown.count("c1") == 1

    def test_late_propose_adopts_existing_decision(self):
        harness = ConsensusHarness(n=3)
        harness.start()
        harness.services[0].propose("c1", "a", [0, 1, 2])
        harness.services[1].propose("c1", "b", [0, 1, 2])
        harness.run(until=100.0)
        instance = harness.services[2].propose("c1", "late", [0, 1, 2])
        assert instance.decided
        assert harness.decided_values("c1")[2] == "a"


class TestCrashes:
    def test_decides_despite_coordinator_crash(self):
        harness = ConsensusHarness(n=3, qos=QoSConfig(detection_time=20.0))
        harness.start()
        harness.processes[0].crash()
        harness.propose_all("c1", ["dead", "alive1", "alive2"], participants=[0, 1, 2])
        harness.run()
        decided = harness.decided_values("c1")
        assert 1 in decided and 2 in decided
        assert len(set(decided.values())) == 1
        assert decided[1] in ("alive1", "alive2")

    def test_crash_of_non_coordinator_does_not_prevent_decision(self):
        harness = ConsensusHarness(n=3, qos=QoSConfig(detection_time=20.0))
        harness.start()
        harness.processes[2].crash()
        harness.propose_all("c1", ["a", "b", "c"])
        harness.run()
        decided = harness.decided_values("c1")
        assert decided[0] == "a" and decided[1] == "a"

    def test_no_decision_without_majority(self):
        harness = ConsensusHarness(n=3, qos=QoSConfig(detection_time=5.0))
        harness.start()
        harness.processes[1].crash()
        harness.processes[2].crash()
        harness.services[0].propose("c1", "alone", [0, 1, 2])
        harness.run(until=5000.0)
        assert harness.decided_values("c1") == {}

    def test_coordinator_crash_after_proposal(self):
        harness = ConsensusHarness(n=5, qos=QoSConfig(detection_time=15.0))
        harness.start()
        harness.propose_all("c1", [f"v{i}" for i in range(5)])
        # Crash the coordinator shortly after it sent its proposal.
        harness.sim.schedule(2.5, harness.processes[0].crash)
        harness.run()
        decided = harness.decided_values("c1")
        assert set(decided) >= {1, 2, 3, 4}
        assert len(set(decided.values())) == 1

    def test_two_crashes_tolerated_with_n5(self):
        harness = ConsensusHarness(n=5, qos=QoSConfig(detection_time=10.0))
        harness.start()
        harness.processes[0].crash()
        harness.processes[1].crash()
        harness.propose_all("c1", [f"v{i}" for i in range(5)])
        harness.run()
        decided = harness.decided_values("c1")
        assert set(decided) == {2, 3, 4}
        assert len(set(decided.values())) == 1


class TestWrongSuspicions:
    def test_single_wrong_suspicion_does_not_block_decision(self):
        harness = ConsensusHarness(n=3)
        harness.start()
        harness.propose_all("c1", ["a", "b", "c"])
        # Process 2 wrongly suspects the coordinator right away.
        harness.fabric.detector(2).force_suspect(0)
        harness.run()
        decided = harness.decided_values("c1")
        assert set(decided) == {0, 1, 2}
        assert len(set(decided.values())) == 1

    def test_wrong_suspicion_by_majority_still_decides(self):
        harness = ConsensusHarness(n=3)
        harness.start()
        harness.propose_all("c1", ["a", "b", "c"])
        harness.fabric.detector(1).force_suspect(0)
        harness.fabric.detector(2).force_suspect(0)
        harness.run()
        decided = harness.decided_values("c1")
        assert set(decided) == {0, 1, 2}
        assert len(set(decided.values())) == 1

    def test_frequent_instantaneous_mistakes_do_not_violate_agreement(self):
        harness = ConsensusHarness(
            n=3, qos=QoSConfig(mistake_recurrence_time=5.0, mistake_duration=0.0), seed=3
        )
        harness.start()
        for k in range(10):
            harness.propose_all(("c", k), [f"{k}-a", f"{k}-b", f"{k}-c"])
        harness.run(until=20_000.0)
        for k in range(10):
            decided = harness.decided_values(("c", k))
            assert set(decided) == {0, 1, 2}, f"instance {k} did not decide everywhere"
            assert len(set(decided.values())) == 1


class TestInstanceInternals:
    def test_coordinator_rotation(self):
        harness = ConsensusHarness(n=3)
        instance = ConsensusInstance(harness.services[0], "c", "v", [0, 1, 2])
        assert [instance.coordinator_of(r) for r in (1, 2, 3, 4)] == [0, 1, 2, 0]

    def test_coordinator_order_must_be_permutation(self):
        harness = ConsensusHarness(n=3)
        with pytest.raises(ValueError):
            ConsensusInstance(harness.services[0], "c", "v", [0, 1, 2], coordinator_order=[0, 1])

    def test_majority_size(self):
        harness = ConsensusHarness(n=5)
        instance = ConsensusInstance(harness.services[0], "c", "v", [0, 1, 2, 3, 4])
        assert instance.majority == 3


class TestCatchUpRoundSkipping:
    """Regression: the catch-up rule must feed the coordinators it jumps over.

    Found by hypothesis on a GM run (n=5, one real crash plus wrong
    suspicions): processes that jumped several rounds forward never sent
    their estimates to the skipped rounds' coordinators, and the run ended
    with every alive process parked as the coordinator of a *different*
    round, each waiting for a majority of estimates that could no longer
    arrive -- no process ever suspects itself, so no failure detector event
    could unpark them and the view-change consensus deadlocked permanently.
    """

    SCENARIO = {
        "seed": 2552,
        "arrivals": [
            (7.6200076685013265, 1, "m0"),
            (36.96037530022315, 4, "m1"),
            (61.16621654725308, 4, "m2"),
            (71.16621654725307, 2, "m3"),
            (89.99733425605031, 0, "m4"),
            (119.99733425605031, 0, "m5"),
            (122.86190701016642, 0, "m6"),
        ],
    }

    def test_gm_view_change_survives_divergent_round_skips(self):
        from repro import SystemConfig, build_system

        system = build_system(
            SystemConfig(
                n=5,
                stack="gm",
                seed=self.SCENARIO["seed"],
                fd=QoSConfig(
                    detection_time=30.0,
                    mistake_recurrence_time=150.0,
                    mistake_duration=30.0,
                ),
            )
        )
        system.start()
        for time, sender, payload in self.SCENARIO["arrivals"]:
            system.broadcast_at(time, sender, payload)
        system.crash_at(100.0, 1)
        system.run(until=60_000.0, max_events=1_500_000)

        required = {"m2", "m3", "m4", "m5", "m6"}  # everything a correct sender sent
        for pid in (0, 2, 3, 4):
            delivered = {payload for _bid, payload in system.abcast(pid).delivered}
            assert required <= delivered, f"p{pid} stalled: {sorted(delivered)}"
        # the crashed process was excluded and the wrongly excluded one re-admitted
        for pid in (0, 2, 3, 4):
            members = system.membership(pid).view.members
            assert 1 not in members and 0 in members

    def test_skipping_processes_nack_the_rounds_they_jump(self):
        harness = ConsensusHarness(n=3)
        instance = ConsensusInstance(harness.services[0], "c", "v", [0, 1, 2])
        instance.round = 1
        instance._skip_rounds(2, 5)
        # rounds 2 and 3 have other coordinators (1, 2); round 4 is our own
        assert instance._nacked_round == {2, 3}
