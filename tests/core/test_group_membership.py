"""Unit tests for the group membership service."""


from repro import QoSConfig, SystemConfig, build_system
from repro.core.group_membership import EXCLUDED, JOINING, MEMBER


def gm_system(n=3, seed=17, **overrides):
    return build_system(SystemConfig(n=n, stack="gm", seed=seed, **overrides))


class TestInitialView:
    def test_initial_view_contains_everyone(self):
        system = gm_system()
        system.start()
        for pid in range(3):
            membership = system.membership(pid)
            assert membership.view.view_id == 0
            assert membership.view.members == (0, 1, 2)
            assert membership.status == MEMBER
            assert membership.is_member()

    def test_initial_sequencer_is_process_zero(self):
        system = gm_system()
        system.start()
        assert system.membership(0).is_sequencer()
        assert not system.membership(2).is_sequencer()


class TestCrashExclusion:
    def test_crashed_process_removed_from_view(self):
        system = gm_system(fd=QoSConfig(detection_time=10.0))
        system.start()
        system.crash_at(20.0, 2)
        system.run(until=1000.0)
        for pid in (0, 1):
            view = system.membership(pid).view
            assert view.members == (0, 1)
            assert view.view_id == 1

    def test_all_members_see_same_view_sequence(self):
        system = gm_system(n=5, fd=QoSConfig(detection_time=10.0))
        views = {pid: [] for pid in range(5)}
        for pid in range(5):
            system.membership(pid).add_view_listener(
                lambda view, _pid=pid: views[_pid].append(view)
            )
        system.start()
        system.crash_at(20.0, 4)
        system.crash_at(300.0, 3)
        system.run(until=3000.0)
        survivor_views = [tuple(views[pid]) for pid in (0, 1, 2)]
        assert survivor_views[0] == survivor_views[1] == survivor_views[2]
        assert [v.members for v in survivor_views[0]] == [(0, 1, 2, 3), (0, 1, 2)]

    def test_view_counter_increases(self):
        system = gm_system(fd=QoSConfig(detection_time=5.0))
        system.start()
        system.crash_at(10.0, 1)
        system.run(until=1000.0)
        assert system.membership(0).views_installed == 1

    def test_sequencer_crash_promotes_next_member(self):
        system = gm_system(fd=QoSConfig(detection_time=5.0))
        system.start()
        system.crash_at(10.0, 0)
        system.run(until=1000.0)
        assert system.membership(1).view.sequencer == 1
        assert system.membership(1).is_sequencer()


class TestWrongSuspicionExclusionAndRejoin:
    def test_wrongly_excluded_process_rejoins(self):
        # A long-lasting wrong suspicion by everyone excludes process 2; when
        # the mistake ends, the process must rejoin the group.
        system = gm_system(fd=QoSConfig())
        system.start()
        system.sim.schedule_at(
            20.0, lambda: [system.fd_fabric.detector(pid).force_suspect(2) for pid in (0, 1)]
        )
        system.sim.schedule_at(
            200.0, lambda: [system.fd_fabric.detector(pid).force_trust(2) for pid in (0, 1)]
        )
        system.run(until=5000.0)
        membership = system.membership(2)
        assert membership.status == MEMBER
        assert 2 in membership.view.members
        assert system.membership(0).view.members == system.membership(2).view.members

    def test_excluded_process_state_catches_up(self):
        system = gm_system(fd=QoSConfig())
        system.start()
        system.sim.schedule_at(
            20.0, lambda: [system.fd_fabric.detector(pid).force_suspect(2) for pid in (0, 1)]
        )
        # Messages delivered while process 2 is excluded.
        for i in range(5):
            system.broadcast_at(60.0 + 10 * i, i % 2, f"while-excluded-{i}")
        system.sim.schedule_at(
            400.0, lambda: [system.fd_fabric.detector(pid).force_trust(2) for pid in (0, 1)]
        )
        system.run(until=10_000.0)
        payloads = [p for _b, p in system.abcast(2).delivered]
        assert payloads == [f"while-excluded-{i}" for i in range(5)]

    def test_instantaneous_mistake_does_not_exclude(self):
        system = gm_system(fd=QoSConfig())
        system.start()

        def blip():
            system.fd_fabric.detector(1).force_suspect(2)
            system.fd_fabric.detector(1).force_trust(2)

        system.sim.schedule_at(20.0, blip)
        system.run(until=2000.0)
        # A view change may have run, but process 2 must still be a member.
        assert 2 in system.membership(0).view.members
        assert system.membership(2).is_member()


class TestViewSynchrony:
    def test_messages_delivered_in_same_view_set(self):
        system = gm_system(fd=QoSConfig(detection_time=10.0))
        system.start()
        for i in range(6):
            system.broadcast_at(1.0 + 3 * i, 1 + i % 2, f"m{i}")
        system.crash_at(11.0, 0)
        system.run(until=3000.0)
        delivered_1 = [b for b, _p in system.abcast(1).delivered]
        delivered_2 = [b for b, _p in system.abcast(2).delivered]
        assert delivered_1 == delivered_2

    def test_handler_required_for_state_transfer(self):
        system = gm_system()
        membership = system.membership(0)
        # The sequencer broadcast registered itself as the handler.
        assert membership._handler is system.abcasts[0]


class TestJoinProtocolEdgeCases:
    def test_join_request_from_member_answered_with_view_install(self):
        system = gm_system()
        system.start()
        # Deliver a JOIN_REQ from process 2 (already a member) to process 0:
        # process 0 must answer directly instead of forcing a view change.
        system.abcasts  # ensure built
        gm0 = system.membership(0)
        gm0.on_message(2, ("JOIN_REQ", 0))
        system.run(until=50.0)
        assert system.membership(0).view.view_id == 0

    def test_report_stale_sender_ignores_members(self):
        system = gm_system()
        system.start()
        gm0 = system.membership(0)
        gm0.report_stale_sender(1, 0)  # member, nothing should happen
        assert system.membership(1).status == MEMBER

    def test_status_constants(self):
        assert MEMBER == "member"
        assert EXCLUDED == "excluded"
        assert JOINING == "joining"
