"""Group reformation after view-majority loss: recovery, fencing, knobs.

The blocked state under test is the GM algorithm's documented liveness
limit (see ``gm_blocked_by_view_majority_loss`` in the property suite):
wrong suspicions shrink the installed view, then a real crash inside the
shrunken view leaves it without a majority of alive members, and no normal
view change can ever decide -- even though a global majority of processes
is alive.  The ``gm-reform`` stack escalates the stalled view change to a
consensus over the full static process set and installs the decided
successor view with an epoch bump that fences out any late normal view
change.
"""

import pytest

from repro import QoSConfig, SystemConfig, build_system
from repro.core.types import View
from repro.scenarios.faults import FaultSchedule
from tests.conftest import assert_no_duplicates, assert_prefix_consistent


def build_blocked_state_system(stack, seed=7, n=3, **config_kwargs):
    """A system driven into the canonical view-majority-loss blocked state."""
    config = SystemConfig(
        n=n, stack=stack, seed=seed, fd=QoSConfig(detection_time=10.0), **config_kwargs
    )
    system = build_system(config)
    system.start()
    FaultSchedule.view_majority_loss(n).apply(system)
    return system


def alive_members(system):
    return [
        pid
        for pid in range(system.config.n)
        if not system.processes[pid].crashed and system.membership(pid).is_member()
    ]


class TestBlockedStateRecovery:
    def test_plain_gm_blocks_forever(self):
        system = build_blocked_state_system("gm")
        system.broadcast_at(1000.0, 0, "after-block")
        system.run(until=30_000.0)
        membership = system.membership(0)
        assert membership.status == "view_change"
        assert membership.view.epoch == 0
        assert membership.reformations_proposed == 0
        # The post-block message is never delivered anywhere.
        assert all(
            "after-block" not in [p for _b, p in system.abcast(pid).delivered]
            for pid in range(3)
        )

    def test_gm_reform_installs_successor_view(self):
        system = build_blocked_state_system("gm-reform")
        system.broadcast_at(1000.0, 0, "after-block")
        system.broadcast_at(2000.0, 2, "from-readmitted")
        system.run(until=30_000.0)
        views = {pid: system.membership(pid).view for pid in alive_members(system)}
        assert views, "no alive member ended up operational"
        # Every alive member converged on the same reformed view.
        assert len(set(views.values())) == 1
        view = next(iter(views.values()))
        assert view.epoch == 1
        assert set(views) == set(view.members) == {0, 2}
        assert system.membership(0).reformations_proposed == 1
        # Liveness restored: both the survivor's and the re-admitted
        # process's messages deliver at every member, identically.
        logs = {pid: [p for _b, p in system.abcast(pid).delivered] for pid in (0, 2)}
        assert logs[0] == logs[2]
        assert "after-block" in logs[0] and "from-readmitted" in logs[0]

    def test_gm_reform_recovers_n5(self):
        system = build_blocked_state_system("gm-reform", n=5, seed=3)
        system.broadcast_at(1500.0, 0, "after-block")
        system.run(until=30_000.0)
        members = alive_members(system)
        views = {system.membership(pid).view for pid in members}
        assert len(views) == 1
        (view,) = views
        assert view.epoch >= 1
        alive = [m for m in view.members if not system.processes[m].crashed]
        assert len(alive) >= view.majority()
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert_no_duplicates(sequences)

    def test_recovery_on_heartbeat_fd(self):
        system = build_blocked_state_system("gm-reform", fd_kind="heartbeat")
        system.run(until=30_000.0)
        assert system.membership(0).view.epoch == 1
        assert 2 in system.membership(0).view.members


class TestSplitBrainFencing:
    def test_late_normal_view_change_decision_is_ignored(self):
        """A stale epoch-0 view-change decision must not displace the
        reformed view -- the exact race the epoch fence exists for."""
        system = build_blocked_state_system("gm-reform")
        system.run(until=10_000.0)
        membership = system.membership(0)
        reformed = membership.view
        assert reformed.epoch == 1
        # The view change of view (0, 1) the group was blocked in decides
        # late: replay it against the membership as the consensus layer
        # would.  The fence discards it.
        stale_value = (1, ((0,), ()))
        membership._on_decision(("vc", (0, 1)), stale_value)
        assert membership.view == reformed
        assert membership.is_member()

    def test_reformation_racing_healthy_view_change_converges(self):
        """A spuriously early reformation racing a normal view change must
        not split the group: the higher epoch wins, losers resync."""
        for seed in (1, 5, 11):
            config = SystemConfig(
                n=3,
                stack="gm-reform",
                seed=seed,
                fd=QoSConfig(detection_time=10.0),
                # Far below a view change's consensus round trip, so the
                # reformation fires while the normal view change is healthy
                # and both decisions race.
                reformation_timeout=5.0,
            )
            system = build_system(config)
            system.start()
            system.crash_at(100.0, 1)
            for time, sender in ((10.0, 0), (50.0, 2), (400.0, 0), (900.0, 2)):
                system.broadcast_at(time, sender, f"m{time:g}.{sender}")
            system.run(until=30_000.0)
            sequences = system.delivery_sequences()
            assert_prefix_consistent(sequences)
            assert_no_duplicates(sequences)
            members = alive_members(system)
            views = {system.membership(pid).view for pid in members}
            assert len(views) == 1, f"seed {seed}: split views {views}"
            (view,) = views
            assert set(members) == set(view.members) == {0, 2}
            logs = {pid: [p for _b, p in system.abcast(pid).delivered] for pid in members}
            assert logs[0] == logs[2]
            assert {"m10.0", "m50.2", "m400.0", "m900.2"} <= set(logs[0])

    def test_view_identities_order_across_epochs(self):
        assert View(5, (0, 1), epoch=0).vid < View(2, (0,), epoch=1).vid
        assert View(2, (0,), epoch=1).vid < View(3, (0, 2), epoch=1).vid
        assert str(View(2, (0, 2), epoch=1)) == "view#2@e1[0, 2]"


class TestReformationKnobs:
    def test_plain_gm_stacks_never_arm_the_timer(self):
        for stack in ("gm", "gm-nonuniform"):
            system = build_system(SystemConfig(n=3, stack=stack, seed=1))
            assert system.membership(0).reformation_timeout is None

    def test_gm_reform_reads_the_config_knob(self):
        system = build_system(
            SystemConfig(n=3, stack="gm-reform", reformation_timeout=750.0)
        )
        assert system.membership(0).reformation_timeout == 750.0

    def test_invalid_reformation_timeout_rejected(self):
        with pytest.raises(ValueError, match="reformation_timeout"):
            SystemConfig(n=3, stack="gm-reform", reformation_timeout=0.0)

    def test_failure_free_run_never_reforms(self):
        system = build_system(SystemConfig(n=3, stack="gm-reform", seed=2))
        system.start()
        for time, sender in ((1.0, 0), (5.0, 1), (9.0, 2)):
            system.broadcast_at(time, sender, f"m{sender}")
        system.run(until=5_000.0)
        for pid in range(3):
            membership = system.membership(pid)
            assert membership.reformations_proposed == 0
            assert membership.view == View(0, (0, 1, 2))
        assert all(len(seq) == 3 for seq in system.delivery_sequences().values())
