"""Unit tests for the fixed-sequencer (GM) atomic broadcast."""

import pytest

from repro import QoSConfig, SystemConfig, build_system
from tests.conftest import assert_no_duplicates, assert_prefix_consistent


def gm_system(n=3, seed=13, algorithm="gm", **overrides):
    return build_system(SystemConfig(n=n, stack=algorithm, seed=seed, **overrides))


class TestNormalOperation:
    def test_single_message_delivered_everywhere(self):
        system = gm_system()
        system.start()
        system.broadcast_at(1.0, 1, "hello")
        system.run(until=100.0)
        for pid in range(3):
            assert system.abcast(pid).delivered == [((1, 1), "hello")]

    def test_total_order_with_concurrent_senders(self):
        system = gm_system()
        system.start()
        for i in range(12):
            system.broadcast_at(1.0 + 0.4 * i, i % 3, f"m{i}")
        system.run(until=1000.0)
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert_no_duplicates(sequences)
        assert all(len(seq) == 12 for seq in sequences.values())

    def test_sequencer_is_first_view_member(self):
        system = gm_system()
        system.start()
        assert system.membership(0).is_sequencer()
        assert not system.membership(1).is_sequencer()

    def test_sequencer_delivers_first(self):
        system = gm_system()
        system.start()
        deliveries = []
        system.add_delivery_listener(
            lambda pid, bid, payload: deliveries.append((system.sim.now, pid))
        )
        system.broadcast_at(1.0, 2, "x")
        system.run(until=100.0)
        first_time, first_pid = min(deliveries)
        assert first_pid == 0

    def test_batching_under_burst(self):
        system = gm_system()
        system.start()
        for i in range(20):
            system.broadcast_at(1.0 + 0.1 * i, i % 3, f"m{i}")
        system.run(until=1000.0)
        sequencer = system.abcasts[0]
        assert sequencer.batches_sequenced <= 12
        assert all(len(seq) == 20 for seq in system.delivery_sequences().values())

    def test_invalid_pipeline_depth_rejected(self):
        from repro.core.sequencer_broadcast import SequencerAtomicBroadcast

        system = gm_system()
        with pytest.raises(ValueError):
            SequencerAtomicBroadcast(
                system.processes[1], system.memberships[1], pipeline_depth=0
            )


class TestNonUniformVariant:
    def test_delivers_with_fewer_messages(self):
        uniform = gm_system(algorithm="gm")
        nonuniform = gm_system(algorithm="gm-nonuniform")
        for system in (uniform, nonuniform):
            system.start()
            system.broadcast_at(1.0, 1, "x")
            system.run(until=100.0)
        assert (
            nonuniform.message_stats()["messages_sent"]
            < uniform.message_stats()["messages_sent"]
        )
        assert [p for _b, p in nonuniform.abcast(2).delivered] == ["x"]

    def test_total_order_preserved(self):
        system = gm_system(algorithm="gm-nonuniform")
        system.start()
        for i in range(10):
            system.broadcast_at(1.0 + 0.5 * i, i % 3, f"m{i}")
        system.run(until=500.0)
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert all(len(seq) == 10 for seq in sequences.values())

    def test_non_sequencer_delivery_is_faster_than_uniform(self):
        def first_delivery_at(system, pid):
            times = {}
            system.add_delivery_listener(
                lambda p, bid, payload: times.setdefault(p, system.sim.now)
            )
            system.start()
            system.broadcast_at(1.0, 1, "x")
            system.run(until=100.0)
            return times[pid]

        uniform_time = first_delivery_at(gm_system(algorithm="gm"), 2)
        nonuniform_time = first_delivery_at(gm_system(algorithm="gm-nonuniform"), 2)
        assert nonuniform_time < uniform_time


class TestSequencerCrash:
    def test_view_change_resumes_delivery(self):
        system = gm_system(fd=QoSConfig(detection_time=10.0))
        system.start()
        system.broadcast_at(1.0, 1, "before")
        system.crash_at(30.0, 0)
        system.broadcast_at(40.0, 1, "during")
        system.broadcast_at(200.0, 2, "after")
        system.run(until=3000.0)
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences, processes=[1, 2])
        assert len(sequences[1]) == 3
        assert system.membership(1).view.sequencer == 1

    def test_messages_in_flight_at_crash_not_lost(self):
        system = gm_system(fd=QoSConfig(detection_time=15.0))
        system.start()
        # Broadcast right before the sequencer crashes: the message must be
        # delivered through the view change (view synchrony) or re-sent.
        system.crash_at(10.0, 0)
        system.broadcast_at(10.0, 2, "in-flight")
        system.run(until=3000.0)
        for pid in (1, 2):
            payloads = [p for _b, p in system.abcast(pid).delivered]
            assert "in-flight" in payloads

    def test_uniformity_across_sequencer_crash(self):
        system = gm_system(fd=QoSConfig(detection_time=10.0))
        system.start()
        for i in range(8):
            system.broadcast_at(1.0 + 4 * i, 1 + i % 2, f"m{i}")
        system.crash_at(17.0, 0)
        system.run(until=3000.0)
        assert_prefix_consistent(system.delivery_sequences())

    def test_two_crashes_tolerated_n7(self):
        system = gm_system(n=7, fd=QoSConfig(detection_time=10.0))
        system.start()
        system.crash_at(20.0, 0)
        system.crash_at(120.0, 1)
        for i in range(10):
            system.broadcast_at(1.0 + 30 * i, 2 + i % 5, f"m{i}")
        system.run(until=10_000.0)
        alive = [2, 3, 4, 5, 6]
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences, processes=alive)
        assert all(len(sequences[pid]) == 10 for pid in alive)
        assert system.membership(2).view.sequencer == 2


class TestBroadcastWhileNotOperational:
    def test_broadcast_during_view_change_is_buffered_and_delivered(self):
        system = gm_system(fd=QoSConfig(detection_time=5.0))
        system.start()
        system.crash_at(10.0, 0)
        # Right after detection the group is in a view change; broadcasts
        # issued then must still be delivered eventually.
        system.broadcast_at(16.0, 1, "during-view-change")
        system.run(until=3000.0)
        payloads = [p for _b, p in system.abcast(2).delivered]
        assert payloads == ["during-view-change"]
