"""Unit tests for the Poisson workload generator."""

import pytest

from repro import SystemConfig, build_system
from repro.workload.generator import PoissonWorkload


def make_system(seed=21):
    return build_system(SystemConfig(n=3, stack="fd", seed=seed))


class TestPoissonWorkload:
    def test_invalid_throughput_rejected(self):
        with pytest.raises(ValueError):
            PoissonWorkload(make_system(), 0.0)

    def test_empty_senders_rejected(self):
        with pytest.raises(ValueError):
            PoissonWorkload(make_system(), 10.0, senders=[])

    def test_negative_count_rejected(self):
        workload = PoissonWorkload(make_system(), 10.0)
        with pytest.raises(ValueError):
            workload.schedule_messages(-1)

    def test_mean_interarrival_conversion(self):
        workload = PoissonWorkload(make_system(), 200.0)
        assert workload.mean_interarrival == pytest.approx(5.0)

    def test_all_scheduled_messages_are_sent(self):
        system = make_system()
        workload = PoissonWorkload(system, 100.0)
        workload.schedule_messages(20)
        system.run(until=100_000.0)
        assert len(workload.sent) == 20
        assert workload.scheduled_count() == 20

    def test_senders_restricted(self):
        system = make_system()
        workload = PoissonWorkload(system, 100.0, senders=[1, 2])
        workload.schedule_messages(30)
        system.run(until=100_000.0)
        assert {sent.sender for sent in workload.sent} <= {1, 2}

    def test_sent_callback_invoked_in_order(self):
        system = make_system()
        workload = PoissonWorkload(system, 100.0)
        seen = []
        workload.add_sent_callback(lambda index, bid, time: seen.append(index))
        workload.schedule_messages(10)
        system.run(until=100_000.0)
        assert seen == list(range(10))

    def test_interarrival_mean_roughly_matches_throughput(self):
        system = make_system()
        workload = PoissonWorkload(system, 200.0)
        last = workload.schedule_messages(2000)
        # 2000 messages at 200/s should span roughly 10 seconds.
        assert 8_000.0 < last < 12_500.0

    def test_same_seed_gives_same_schedule(self):
        def schedule(seed):
            system = make_system(seed)
            workload = PoissonWorkload(system, 50.0)
            workload.schedule_messages(15)
            system.run(until=100_000.0)
            return [(round(s.time, 6), s.sender) for s in workload.sent]

        assert schedule(5) == schedule(5)
        assert schedule(5) != schedule(6)

    def test_payload_factory(self):
        system = make_system()
        workload = PoissonWorkload(
            system, 50.0, payload_factory=lambda index: {"request": index}
        )
        workload.schedule_messages(3)
        system.run(until=100_000.0)
        delivered = [p for _b, p in system.abcast(0).delivered]
        assert {"request": 0} in delivered
