"""Unit tests for campaign specifications, keys and seed derivation."""

import pytest

from repro.campaigns.spec import (
    CampaignSpec,
    PointSpec,
    SeriesPointSpec,
    SeriesSpec,
    derive_seed,
    grid,
    replicate_seeds,
)
from repro.sim.rng import RandomStreams


class TestPointSpec:
    def test_key_is_stable_and_type_normalised(self):
        a = PointSpec(kind="normal-steady", throughput=10, num_messages=50)
        b = PointSpec(kind="normal-steady", throughput=10.0, num_messages=50)
        assert a.key() == b.key()
        assert a.key() == a.key()

    def test_key_depends_on_every_axis(self):
        base = PointSpec(kind="normal-steady", throughput=10.0, num_messages=50)
        variants = [
            PointSpec(kind="normal-steady", throughput=20.0, num_messages=50),
            PointSpec(kind="normal-steady", throughput=10.0, num_messages=60),
            PointSpec(kind="normal-steady", throughput=10.0, num_messages=50, seed=2),
            PointSpec(kind="normal-steady", throughput=10.0, num_messages=50, stack="gm"),
            PointSpec(kind="normal-steady", throughput=10.0, num_messages=50, n=5),
            PointSpec(
                kind="normal-steady", throughput=10.0, num_messages=50, fd_kind="heartbeat"
            ),
        ]
        keys = {point.key() for point in variants}
        assert base.key() not in keys
        assert len(keys) == len(variants)

    def test_invalid_kind_stack_and_fd_kind_rejected(self):
        with pytest.raises(ValueError):
            PointSpec(kind="nope")
        with pytest.raises(ValueError, match="unknown stack"):
            PointSpec(kind="normal-steady", stack="nope")
        with pytest.raises(ValueError, match="unknown fd kind"):
            PointSpec(kind="normal-steady", fd_kind="nope")

    def test_deprecated_algorithm_alias_warns_and_maps(self):
        with pytest.warns(DeprecationWarning):
            point = PointSpec(kind="normal-steady", algorithm="gm")
        assert point.stack == "gm"
        assert point.key() == PointSpec(kind="normal-steady", stack="gm").key()

    def test_slash_stack_normalises_into_both_fields(self):
        a = PointSpec(kind="churn-steady", stack="fd/heartbeat", churn_rate=1, mean_downtime=100)
        b = PointSpec(
            kind="churn-steady", stack="fd", fd_kind="heartbeat", churn_rate=1, mean_downtime=100
        )
        assert (a.stack, a.fd_kind) == ("fd", "heartbeat")
        assert a.key() == b.key()

    def test_qos_only_kinds_reject_other_fd_kinds(self):
        with pytest.raises(ValueError, match="fd_kind"):
            PointSpec(
                kind="suspicion-steady", fd_kind="heartbeat", mistake_recurrence_time=100.0
            )
        with pytest.raises(ValueError, match="fd_kind"):
            PointSpec(
                kind="asymmetric-qos", fd_kind="perfect", mistake_recurrence_time=100.0
            )

    def test_kind_specific_validation(self):
        with pytest.raises(ValueError):
            PointSpec(kind="crash-steady")  # needs a crashed tuple
        with pytest.raises(ValueError):
            PointSpec(kind="suspicion-steady")  # needs a finite T_MR

    def test_as_dict_is_strict_json(self):
        import json

        # The default infinite T_MR must not serialise as the non-standard
        # ``Infinity`` token (it would break external JSONL consumers).
        point = PointSpec(kind="normal-steady", throughput=10.0, num_messages=50)
        text = json.dumps(point.as_dict())
        assert "Infinity" not in text
        json.loads(text, parse_constant=lambda token: pytest.fail(f"lenient {token}"))
        assert point.as_dict()["mistake_recurrence_time"] == "inf"

    def test_config_override_values_are_normalised(self):
        a = PointSpec(kind="normal-steady", config_overrides=(("lambda_cpu", 2),))
        b = PointSpec(kind="normal-steady", config_overrides=(("lambda_cpu", 2.0),))
        assert a.key() == b.key()

    def test_config_round_trip(self):
        point = PointSpec(
            kind="normal-steady",
            stack="gm",
            fd_kind="perfect",
            n=5,
            seed=9,
            config_overrides=(("lambda_cpu", 2.0),),
        )
        config = point.config()
        assert (config.n, config.stack, config.fd_kind) == (5, "gm", "perfect")
        assert (config.seed, config.lambda_cpu) == (9, 2.0)


class TestSeedDerivation:
    def test_follows_random_streams_convention(self):
        # Same Knuth + CRC32 mixing as RandomStreams._derive.
        assert derive_seed(42, "replica/1") == RandomStreams(42)._derive("replica/1")

    def test_replica_zero_keeps_root_seed(self):
        seeds = replicate_seeds(7, 3)
        assert seeds[0] == 7
        assert len(set(seeds)) == 3
        assert seeds == replicate_seeds(7, 3)

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            replicate_seeds(1, 0)


class TestCampaignSpec:
    def test_points_deduplicate_across_series(self):
        shared = PointSpec(kind="normal-steady", throughput=10.0, num_messages=30)
        only_b = PointSpec(kind="normal-steady", throughput=20.0, num_messages=30)
        campaign = CampaignSpec(
            name="dedup",
            series=[
                SeriesSpec(label="a", points=[SeriesPointSpec(x=10.0, points=[shared])]),
                SeriesSpec(
                    label="b",
                    points=[
                        SeriesPointSpec(x=10.0, points=[shared]),
                        SeriesPointSpec(x=20.0, points=[only_b]),
                    ],
                ),
            ],
        )
        assert campaign.points() == [shared, only_b]


class TestGrid:
    def test_cartesian_product_shape(self):
        campaign = grid(
            "normal-steady",
            stacks=("fd", "gm"),
            n_values=(3, 7),
            throughputs=(10.0, 50.0),
            seeds=(1, 2),
            num_messages=30,
        )
        assert len(campaign.series) == 4  # (stack, n) pairs
        assert all(len(series.points) == 2 for series in campaign.series)
        assert len(campaign.points()) == 16  # 2 stacks * 2 n * 2 T * 2 seeds

    def test_fd_kinds_axis_crosses_every_stack(self):
        campaign = grid(
            "churn-steady",
            stacks=("fd", "gm"),
            fd_kinds=("qos", "heartbeat"),
            throughputs=(10.0,),
        )
        labels = [series.label for series in campaign.series]
        assert labels == ["fd, n=3", "fd/heartbeat, n=3", "gm, n=3", "gm/heartbeat, n=3"]
        assert {point.fd_kind for point in campaign.points()} == {"qos", "heartbeat"}

    def test_slash_stacks_deduplicate_against_fd_kind_axis(self):
        campaign = grid(
            "normal-steady", stacks=("fd/heartbeat",), fd_kinds=(None, "heartbeat"),
            throughputs=(10.0,),
        )
        assert [series.label for series in campaign.series] == ["fd/heartbeat, n=3"]

    def test_explicit_qos_conflicting_with_slash_stack_raises(self):
        with pytest.raises(ValueError, match="conflicting"):
            PointSpec(kind="normal-steady", stack="fd/heartbeat", fd_kind="qos")
        with pytest.raises(ValueError, match="conflicting"):
            grid("normal-steady", stacks=("fd/heartbeat",), fd_kinds=("qos",))

    def test_deprecated_algorithms_kwarg_warns(self):
        with pytest.warns(DeprecationWarning):
            campaign = grid("normal-steady", algorithms=("fd",), throughputs=(10.0,))
        assert campaign.series[0].params["stack"] == "fd"

    def test_crash_steady_respects_crash_bound(self):
        with pytest.raises(ValueError):
            grid("crash-steady", n_values=(3,), crashes=2)

    def test_crash_steady_selects_highest_pids(self):
        campaign = grid("crash-steady", n_values=(7,), crashes=2, stacks=("fd",))
        point = campaign.points()[0]
        assert point.crashed == (5, 6)

    def test_duplicate_seeds_are_dropped(self):
        campaign = grid(
            "normal-steady", stacks=("fd",), throughputs=(10.0,), seeds=(1, 1, 2)
        )
        series_point = campaign.series[0].points[0]
        assert [point.seed for point in series_point.points] == [1, 2]

    def test_nan_parameters_are_rejected(self):
        point = PointSpec(kind="normal-steady", throughput=float("nan"))
        with pytest.raises(ValueError):
            point.key()


class TestFdKindGuards:
    def test_crash_transient_rejects_heartbeat_fd(self):
        with pytest.raises(ValueError, match="period \\+ timeout"):
            PointSpec(kind="crash-transient", fd_kind="heartbeat")

    def test_grid_conflicting_slash_stack_and_fd_kind_raises(self):
        with pytest.raises(ValueError, match="conflicting"):
            grid("normal-steady", stacks=("fd/heartbeat",), fd_kinds=("perfect",))

    def test_alias_conflicting_with_explicit_stack_raises(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="conflicting"):
                PointSpec(kind="normal-steady", stack="fd", algorithm="gm")


class TestReformationAndHeartbeatDimensions:
    """The v4 sweep dimensions: reformation timeout and heartbeat plane."""

    def test_new_dimensions_enter_the_cache_key(self):
        base = PointSpec(kind="view-majority-loss", stack="gm-reform", detection_time=10.0)
        variants = [
            PointSpec(
                kind="view-majority-loss",
                stack="gm-reform",
                detection_time=10.0,
                reformation_timeout=800.0,
            ),
            PointSpec(
                kind="normal-steady", stack="gm", fd_kind="heartbeat", heartbeat_period=20.0
            ),
            PointSpec(
                kind="normal-steady", stack="gm", fd_kind="heartbeat", heartbeat_timeout=90.0
            ),
        ]
        keys = {point.key() for point in variants}
        assert base.key() not in keys
        assert len(keys) == len(variants)
        for point in [base] + variants:
            for field in ("reformation_timeout", "heartbeat_period", "heartbeat_timeout"):
                assert field in point.as_dict()

    def test_view_majority_loss_accepts_any_n_from_3(self):
        with pytest.raises(ValueError, match="n >= 3"):
            PointSpec(kind="view-majority-loss", stack="gm-reform", n=2)
        PointSpec(kind="view-majority-loss", stack="gm-reform", n=4)  # staged even-n
        PointSpec(kind="view-majority-loss", stack="gm-reform", n=5)  # fine

    def test_negative_knobs_rejected(self):
        for knob in ("reformation_timeout", "heartbeat_period", "heartbeat_timeout"):
            with pytest.raises(ValueError, match=knob):
                PointSpec(kind="normal-steady", **{knob: -1.0})

    def test_knobs_reach_the_system_config(self):
        point = PointSpec(
            kind="view-majority-loss",
            stack="gm-reform",
            reformation_timeout=750.0,
        )
        assert point.config().reformation_timeout == 750.0
        hb = PointSpec(
            kind="normal-steady",
            stack="gm",
            fd_kind="heartbeat",
            heartbeat_period=20.0,
        ).config().heartbeat
        assert hb.period == 20.0
        assert hb.timeout == 30.0  # unset knob keeps the default

    def test_zero_knobs_keep_defaults(self):
        point = PointSpec(kind="view-majority-loss", stack="gm-reform")
        config = point.config()
        assert config.reformation_timeout == 500.0
        assert config.heartbeat.period == 10.0

    def test_grid_scopes_the_reformation_knob_by_stack_capability(self):
        campaign = grid(
            "view-majority-loss",
            stacks=("gm", "gm-reform"),
            throughputs=(10.0,),
            reformation_timeout=800.0,
            heartbeat_period=25.0,
        )
        by_stack = {point.stack: point for point in campaign.points()}
        # Only the reformation-capable stack reads the knob; scoping it by
        # stack (not kind) keeps e.g. churn sweeps of the knob honest.
        assert by_stack["gm-reform"].reformation_timeout == 800.0
        assert by_stack["gm"].reformation_timeout == 0.0
        for point in campaign.points():
            assert point.heartbeat_period == 0.0  # qos fd kind: knob inert

    def test_grid_applies_reformation_knob_under_any_kind(self):
        campaign = grid(
            "churn-steady",
            stacks=("gm-reform",),
            throughputs=(10.0,),
            reformation_timeout=250.0,
        )
        (point,) = campaign.points()
        assert point.reformation_timeout == 250.0
        assert point.config().reformation_timeout == 250.0

    def test_out_of_window_crash_time_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="suspicion window"):
            PointSpec(kind="view-majority-loss", stack="gm-reform", crash_time=500.0)
        PointSpec(kind="view-majority-loss", stack="gm-reform", crash_time=200.0)

    def test_grid_heartbeat_knobs_follow_the_fd_axis(self):
        campaign = grid(
            "normal-steady",
            stacks=("gm",),
            fd_kinds=("qos", "heartbeat"),
            throughputs=(10.0,),
            heartbeat_period=25.0,
            heartbeat_timeout=75.0,
        )
        by_kind = {point.fd_kind: point for point in campaign.points()}
        assert by_kind["heartbeat"].heartbeat_period == 25.0
        assert by_kind["heartbeat"].heartbeat_timeout == 75.0
        assert by_kind["qos"].heartbeat_period == 0.0

    def test_label_mentions_the_reformation_window(self):
        point = PointSpec(
            kind="view-majority-loss", stack="gm-reform", reformation_timeout=800.0
        )
        assert "reform=800ms" in point.label()


class TestServiceLoadDimensions:
    """The v6 sweep dimensions: client population, batching, FD scan."""

    def test_new_dimensions_enter_the_cache_key(self):
        base = PointSpec(kind="service-load", stack="fd", throughput=200.0)
        variants = [
            PointSpec(kind="service-load", stack="fd", throughput=200.0, clients=8),
            PointSpec(
                kind="service-load", stack="fd", throughput=200.0, clients=8,
                think_time=25.0,
            ),
            PointSpec(
                kind="service-load", stack="fd", throughput=200.0, consistency="local"
            ),
            PointSpec(kind="service-load", stack="fd", throughput=200.0, max_batch=8),
            PointSpec(
                kind="service-load", stack="fd", throughput=200.0, max_batch=8,
                max_delay=3.0,
            ),
            PointSpec(kind="normal-steady", stack="fd", fd_scan_interval=5.0),
        ]
        keys = {point.key() for point in variants}
        assert base.key() not in keys
        assert len(keys) == len(variants)
        for point in [base] + variants:
            for field in (
                "clients", "think_time", "consistency",
                "max_batch", "max_delay", "fd_scan_interval",
            ):
                assert field in point.as_dict()

    def test_knobs_reach_the_system_config(self):
        point = PointSpec(
            kind="service-load", stack="gm", max_batch=4, max_delay=2.5,
            fd_scan_interval=10.0,
        )
        config = point.config()
        assert config.max_batch == 4
        assert config.max_delay == 2.5
        assert config.fd_scan_interval == 10.0

    def test_zero_knobs_keep_defaults(self):
        config = PointSpec(kind="service-load", stack="fd").config()
        assert config.max_batch == 0
        assert config.max_delay == 0.0
        assert config.fd_scan_interval is None

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError, match="clients"):
            PointSpec(kind="service-load", clients=-1)
        with pytest.raises(ValueError, match="max_batch"):
            PointSpec(kind="service-load", max_batch=-1)
        with pytest.raises(ValueError, match="consistency"):
            PointSpec(kind="service-load", consistency="eventual")
        for knob in ("think_time", "max_delay", "fd_scan_interval"):
            with pytest.raises(ValueError, match=knob):
                PointSpec(kind="service-load", **{knob: -1.0})

    def test_grid_zeroes_the_scan_tick_for_heartbeat(self):
        campaign = grid(
            "normal-steady",
            stacks=("gm",),
            fd_kinds=("qos", "heartbeat"),
            throughputs=(10.0,),
            fd_scan_interval=5.0,
        )
        by_kind = {point.fd_kind: point for point in campaign.points()}
        assert by_kind["qos"].fd_scan_interval == 5.0
        assert by_kind["heartbeat"].fd_scan_interval == 0.0

    def test_label_mentions_the_population(self):
        open_loop = PointSpec(kind="service-load", stack="fd", max_batch=8)
        assert "open-loop" in open_loop.label()
        assert "batch=8" in open_loop.label()
        closed = PointSpec(
            kind="service-load", stack="fd", clients=16, think_time=50.0,
            consistency="local",
        )
        assert "clients=16" in closed.label()
        assert "local" in closed.label()


class TestFaultInjectionDimensions:
    """The v7 sweep dimensions: partitions, WAN profiles, gray failures."""

    def test_new_dimensions_enter_the_cache_key(self):
        base = PointSpec(kind="partition-transient", stack="gm", throughput=50.0)
        variants = [
            PointSpec(
                kind="partition-transient", stack="gm", throughput=50.0,
                fault_duration=500.0,
            ),
            PointSpec(
                kind="partition-transient", stack="gm", throughput=50.0,
                crash_time=120.0,
            ),
            PointSpec(kind="wan-steady", stack="gm", throughput=50.0,
                      wan_profile="wan-3dc"),
            PointSpec(kind="wan-steady", stack="gm", throughput=50.0,
                      wan_profile="wan-5dc"),
            PointSpec(kind="gray-degradation", stack="gm", throughput=50.0,
                      degrade_factor=4.0),
            PointSpec(kind="gray-degradation", stack="gm", throughput=50.0,
                      link_loss=0.2),
        ]
        keys = {point.key() for point in variants}
        assert base.key() not in keys
        assert len(keys) == len(variants)

    def test_round_trip_preserves_the_key(self):
        for point in (
            PointSpec(kind="partition-transient", stack="gm-reform",
                      fault_duration=750.0, crash_time=200.0),
            PointSpec(kind="wan-steady", stack="fd", wan_profile="wan-5dc"),
            PointSpec(kind="gray-degradation", stack="gm", degrade_factor=6.0,
                      link_loss=0.1, crashed_process=1),
        ):
            clone = PointSpec.from_dict(point.as_dict())
            assert clone == point
            assert clone.key() == point.key()

    def test_wan_profile_must_name_a_registered_topology(self):
        with pytest.raises(ValueError, match="wan_profile"):
            PointSpec(kind="wan-steady", stack="gm")
        with pytest.raises(ValueError, match="unknown WAN profile"):
            PointSpec(kind="wan-steady", stack="gm", wan_profile="wan-nope")

    def test_wan_profile_rejected_on_other_kinds(self):
        with pytest.raises(ValueError, match="wan_profile"):
            PointSpec(kind="normal-steady", wan_profile="wan-3dc")

    def test_gray_dimension_validation(self):
        with pytest.raises(ValueError, match="degrade_factor"):
            PointSpec(kind="gray-degradation", stack="gm", degrade_factor=0.5)
        with pytest.raises(ValueError, match="link_loss"):
            PointSpec(kind="gray-degradation", stack="gm", link_loss=1.0)
        with pytest.raises(ValueError, match="fault_duration"):
            PointSpec(kind="gray-degradation", stack="gm", fault_duration=-1.0)
        # Zero means "the scenario default" for both knobs.
        PointSpec(kind="gray-degradation", stack="gm")

    def test_partition_transient_needs_three_processes(self):
        with pytest.raises(ValueError, match="n >= 3"):
            PointSpec(kind="partition-transient", stack="gm", n=2)

    def test_labels_mention_the_fault_axes(self):
        partition = PointSpec(
            kind="partition-transient", stack="gm", fault_duration=500.0
        )
        assert "window=500ms" in partition.label()
        wan = PointSpec(kind="wan-steady", stack="gm", wan_profile="wan-5dc")
        assert "profile=wan-5dc" in wan.label()
        gray = PointSpec(
            kind="gray-degradation", stack="gm", crashed_process=2,
            degrade_factor=4.0, link_loss=0.2,
        )
        assert "slow=p2" in gray.label()
        assert "x4" in gray.label()
        assert "loss=0.2" in gray.label()

    def test_grid_scopes_the_axes_by_kind(self):
        for kind, expectations in (
            (
                "partition-transient",
                {"fault_duration": 500.0, "wan_profile": "", "degrade_factor": 0.0},
            ),
            (
                "wan-steady",
                {"fault_duration": 0.0, "wan_profile": "wan-5dc", "link_loss": 0.0},
            ),
            (
                "gray-degradation",
                {"fault_duration": 500.0, "wan_profile": "", "degrade_factor": 4.0,
                 "link_loss": 0.2},
            ),
        ):
            campaign = grid(
                kind,
                stacks=("gm",),
                throughputs=(50.0,),
                fault_duration=500.0,
                wan_profile="wan-5dc",
                degrade_factor=4.0,
                link_loss=0.2,
            )
            (point,) = campaign.points()
            for field, expected in expectations.items():
                assert getattr(point, field) == expected, (kind, field)
