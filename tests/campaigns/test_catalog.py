"""Tests for the campaign catalog and its provenance records."""

import json
import os

import pytest

from repro import __version__
from repro.campaigns.catalog import (
    CampaignCatalog,
    campaign_spec_hash,
    catalog_name,
    git_revision,
)
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import SCHEMA_VERSION, grid


def quick_campaign(throughputs=(25.0,)):
    return grid(
        "normal-steady", stacks=("fd",), throughputs=throughputs, num_messages=10
    )


class TestSpecHash:
    def test_hash_is_stable_for_identical_grids(self):
        assert campaign_spec_hash(quick_campaign()) == campaign_spec_hash(quick_campaign())

    def test_hash_changes_with_the_grid(self):
        assert campaign_spec_hash(quick_campaign((25.0,))) != campaign_spec_hash(
            quick_campaign((50.0,))
        )

    def test_hash_is_name_independent(self):
        renamed = quick_campaign()
        renamed.name = "something-else"
        assert campaign_spec_hash(renamed) == campaign_spec_hash(quick_campaign())


class TestCatalogName:
    def test_passes_portable_names_through(self):
        assert catalog_name("figure4-quick") == "figure4-quick"

    def test_sanitises_hostile_names(self):
        assert "/" not in catalog_name("a/b c:d")
        assert catalog_name("../../etc") == "etc"

    def test_empty_name_gets_a_default(self):
        assert catalog_name("///") == "campaign"


class TestGitRevision:
    def test_resolves_inside_this_checkout(self):
        rev = git_revision()
        assert rev == "unknown" or (len(rev) == 40 and all(
            ch in "0123456789abcdef" for ch in rev
        ))

    def test_unknown_outside_a_checkout(self, tmp_path):
        assert git_revision(cwd=str(tmp_path)) == "unknown"


class TestCampaignCatalog:
    def record_quick_run(self, catalog, name=None, store_path=None):
        campaign = quick_campaign()
        run = CampaignRunner().run(campaign)
        return campaign, catalog.record_run(
            campaign, run, wall_clock_s=1.25, name=name, store_path=store_path
        )

    def test_record_run_writes_summary_and_history(self, tmp_path):
        catalog = CampaignCatalog(str(tmp_path))
        campaign, summary_path = self.record_quick_run(catalog, name="smoke")
        assert os.path.exists(summary_path)
        summary = catalog.load("smoke")
        assert summary["name"] == "smoke"
        assert summary["campaign"] == campaign.name
        assert summary["spec_hash"] == campaign_spec_hash(campaign)
        assert summary["schema_version"] == SCHEMA_VERSION
        assert summary["repro_version"] == __version__
        assert summary["points"] == 1 and summary["executed"] == 1
        assert summary["cache_hits"] == 0
        assert summary["wall_clock_s"] == 1.25
        assert summary["series"] == [series.label for series in campaign.series]
        assert catalog.history("smoke") == [summary]

    def test_reruns_append_history_and_replace_summary(self, tmp_path):
        catalog = CampaignCatalog(str(tmp_path))
        self.record_quick_run(catalog, name="smoke")
        self.record_quick_run(catalog, name="smoke")
        assert len(catalog.history("smoke")) == 2
        with open(catalog.summary_path("smoke"), encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 1  # summary.json is the latest run only
        assert json.loads(lines[0]) == catalog.history("smoke")[-1]

    def test_store_path_recorded_absolute(self, tmp_path):
        catalog = CampaignCatalog(str(tmp_path / "cat"))
        self.record_quick_run(
            catalog, name="stored", store_path=str(tmp_path / "cache" / "results.jsonl")
        )
        assert os.path.isabs(catalog.load("stored")["store_path"])

    def test_names_and_summaries_enumerate_entries(self, tmp_path):
        catalog = CampaignCatalog(str(tmp_path))
        self.record_quick_run(catalog, name="beta")
        self.record_quick_run(catalog, name="alpha")
        assert catalog.names() == ["alpha", "beta"]
        assert [summary["name"] for summary in catalog.summaries()] == ["alpha", "beta"]

    def test_load_unknown_name_raises_key_error(self, tmp_path):
        with pytest.raises(KeyError):
            CampaignCatalog(str(tmp_path)).load("nope")

    def test_default_name_is_the_campaign_name(self, tmp_path):
        catalog = CampaignCatalog(str(tmp_path))
        campaign, _ = self.record_quick_run(catalog)
        assert catalog_name(campaign.name) in catalog.names()
