"""Tests for the columnar mirror and the cross-campaign query path."""

import os

import pytest

from repro.campaigns import columnar
from repro.campaigns.aggregate import cross_campaign_summary, load_store_table
from repro.campaigns.columnar import fresh_mirror_path, read_rcol, write_rcol
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import grid
from repro.campaigns.store import ResultStore


def sample_entries():
    return [
        (
            "key-a",
            {"kind": "normal-steady", "stack": "fd", "fd_kind": "qos", "n": 3, "seed": 7},
            {
                "type": "scenario",
                "measured": 10,
                "undelivered": 1,
                "events": 120,
                "throughput": 25.0,
                "duration": 400.0,
                "latencies": [1.5, 2.5, 3.0],
            },
        ),
        (
            "key-b",
            None,  # legacy line without a point dict: columns reconstruct
            {
                "type": "transient",
                "scenario": None,
                "algorithm": "gm",
                "n": 5,
                "throughput": 50.0,
                "detection_time": 4.0,
                "failed_runs": 2,
                "latencies": [],
            },
        ),
    ]


class TestRcolRoundTrip:
    def test_round_trip_preserves_rows(self, tmp_path):
        path = str(tmp_path / "results.rcol")
        assert write_rcol(sample_entries(), path) == 2
        table = read_rcol(path)
        assert table.count == 2
        assert table.keys == ["key-a", "key-b"]
        row = table.row(0)
        assert row["kind"] == "normal-steady"
        assert row["stack"] == "fd"
        assert row["fd_kind"] == "qos"
        assert row["n"] == 3 and row["seed"] == 7
        assert row["measured"] == 10 and row["undelivered"] == 1
        assert row["throughput"] == 25.0 and row["duration"] == 400.0
        assert row["latencies"] == [1.5, 2.5, 3.0]
        assert row["latency_sum"] == pytest.approx(7.0)

    def test_pointless_entry_reconstructs_from_record(self, tmp_path):
        path = str(tmp_path / "results.rcol")
        write_rcol(sample_entries(), path)
        row = read_rcol(path).row(1)
        assert row["kind"] == "crash-transient"  # inferred from type=transient
        assert row["stack"] == "gm"
        assert row["type"] == "transient"
        assert row["failed_runs"] == 2
        assert row["detection_time"] == 4.0
        assert row["latencies"] == []

    def test_latency_vectors_slice_per_row(self, tmp_path):
        path = str(tmp_path / "results.rcol")
        write_rcol(sample_entries(), path)
        table = read_rcol(path)
        assert table.latency_count(0) == 3
        assert table.latency_count(1) == 0
        assert list(table.latencies(0)) == [1.5, 2.5, 3.0]

    def test_empty_store_round_trips(self, tmp_path):
        path = str(tmp_path / "results.rcol")
        assert write_rcol([], path) == 0
        table = read_rcol(path)
        assert table.count == 0 and table.keys == []

    def test_floats_round_trip_bit_exact(self, tmp_path):
        latencies = [0.1 + 0.2, 1e-17, 123456.789012345]
        entries = [("k", None, {"latencies": latencies, "throughput": 1e300})]
        path = str(tmp_path / "results.rcol")
        write_rcol(entries, path)
        table = read_rcol(path)
        assert list(table.latencies(0)) == latencies
        assert table.numbers["throughput"][0] == 1e300

    def test_foreign_file_is_rejected(self, tmp_path):
        path = str(tmp_path / "bogus.rcol")
        with open(path, "wb") as handle:
            handle.write(b"not a mirror at all")
        with pytest.raises(ValueError):
            read_rcol(path)


class TestMirrorFreshness:
    def test_no_mirror_is_not_fresh(self, tmp_path):
        jsonl = str(tmp_path / "results.jsonl")
        with open(jsonl, "w", encoding="utf-8") as handle:
            handle.write("{}\n")
        assert fresh_mirror_path(jsonl) is None

    def test_mirror_written_after_jsonl_is_fresh(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("k", {"measured": 1, "latencies": [1.0]})
        store.close()  # refreshes the mirror after the last append
        fresh = fresh_mirror_path(store.path)
        assert fresh is not None and fresh.endswith(".rcol")

    def test_stale_mirror_is_ignored(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("k", {"measured": 1, "latencies": [1.0]})
        store.close()
        mirror = fresh_mirror_path(store.path)
        old = os.stat(mirror).st_mtime - 60.0
        os.utime(mirror, (old, old))
        assert fresh_mirror_path(store.path) is None


class TestLoadStoreTable:
    def test_missing_store_loads_empty(self, tmp_path):
        table = load_store_table(str(tmp_path))
        assert table.count == 0

    def test_load_rebuilds_missing_mirror_from_jsonl(self, tmp_path):
        store = ResultStore(str(tmp_path), mirror=False)
        store.put(
            "k",
            {"type": "scenario", "measured": 3, "latencies": [2.0]},
            point={"kind": "normal-steady", "stack": "fd", "n": 3, "seed": 1},
        )
        store.close()
        assert fresh_mirror_path(store.path) is None
        table = load_store_table(str(tmp_path))
        assert table.count == 1 and table.row(0)["kind"] == "normal-steady"
        # The rebuild left a fresh mirror for the next aggregation.
        assert fresh_mirror_path(store.path) is not None

    def test_corrupt_mirror_falls_back_to_jsonl(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("k", {"measured": 3, "latencies": [2.0]})
        store.close()
        mirror = fresh_mirror_path(store.path)
        with open(mirror, "wb") as handle:
            handle.write(b"RCOL1\ngarbage")
        # Keep the torn mirror newer than the JSONL so it is still "fresh".
        newer = os.stat(store.path).st_mtime + 60.0
        os.utime(mirror, (newer, newer))
        table = load_store_table(str(tmp_path))
        assert table.count == 1 and table.keys == ["k"]

    def test_table_matches_campaign_records(self, tmp_path):
        campaign = grid(
            "normal-steady", stacks=("fd",), throughputs=(25.0, 50.0), num_messages=10
        )
        store = ResultStore(str(tmp_path))
        CampaignRunner(store=store).run(campaign)
        store.close()
        table = load_store_table(str(tmp_path))
        assert table.count == 2
        by_key = {table.keys[i]: table.row(i) for i in range(table.count)}
        for point in campaign.points():
            row = by_key[point.key()]
            assert row["kind"] == "normal-steady"
            assert row["stack"] == "fd"
            assert row["throughput"] == point.throughput
            assert row["measured"] == 10


class TestCrossCampaignSummary:
    def make_store(self, tmp_path, name, throughputs):
        directory = str(tmp_path / name)
        campaign = grid(
            "normal-steady", stacks=("fd",), throughputs=throughputs, num_messages=10
        )
        store = ResultStore(directory)
        CampaignRunner(store=store).run(campaign)
        store.close()
        return directory

    def test_groups_pool_across_stores(self, tmp_path):
        dir_a = self.make_store(tmp_path, "a", (25.0, 50.0))
        dir_b = self.make_store(tmp_path, "b", (25.0,))
        summary = cross_campaign_summary([dir_a, dir_b])
        by_group = {(entry["kind"], entry["throughput"]): entry for entry in summary}
        pooled = by_group[("normal-steady", 25.0)]
        assert pooled["records"] == 2  # same operating point from both stores
        assert pooled["measured"] == 20
        assert pooled["latency_count"] == 20
        assert pooled["mean_latency"] == pytest.approx(
            pooled["latency_sum"] / pooled["latency_count"]
        )
        assert by_group[("normal-steady", 50.0)]["records"] == 1

    def test_percentiles_pool_latency_vectors(self, tmp_path):
        directory = self.make_store(tmp_path, "a", (25.0,))
        [entry] = cross_campaign_summary([directory], percentiles=(0.5, 0.99))
        assert entry["p50"] <= entry["p99"]
        table = load_store_table(directory)
        pooled = sorted(table.latencies(0))
        assert entry["p99"] == pooled[min(len(pooled) - 1, round(0.99 * (len(pooled) - 1)))]

    def test_unknown_group_column_raises(self, tmp_path):
        directory = self.make_store(tmp_path, "a", (25.0,))
        with pytest.raises(KeyError):
            cross_campaign_summary([directory], group_by=("no-such-column",))

    def test_summary_matches_jsonl_truth(self, tmp_path):
        # The columnar fast path must agree with a dict-per-record fold.
        directory = self.make_store(tmp_path, "a", (25.0, 50.0))
        store = ResultStore(directory)
        expected_measured = sum(
            record.get("measured", 0) for _, _, record in store.entries()
        )
        store.close()
        summary = cross_campaign_summary([directory])
        assert sum(entry["measured"] for entry in summary) == expected_measured

    def test_empty_store_contributes_nothing(self, tmp_path):
        directory = self.make_store(tmp_path, "a", (25.0,))
        empty = str(tmp_path / "empty")
        os.makedirs(empty)
        assert len(cross_campaign_summary([directory, empty])) == 1


class TestMirrorHelpers:
    def test_mirror_path_matches_toolchain(self, tmp_path):
        path = columnar.mirror_path(str(tmp_path / "results.jsonl"))
        expected = ".parquet" if columnar.HAVE_PYARROW else ".rcol"
        assert path.endswith(expected)

    def test_write_mirror_round_trips_through_read_mirror(self, tmp_path):
        jsonl = str(tmp_path / "results.jsonl")
        path = columnar.write_mirror(sample_entries(), jsonl)
        table = columnar.read_mirror(path)
        assert table.count == 2
