"""Tests for the shared-directory work queue and its execution protocol.

The distribution contract: every enqueued point is executed exactly once
while workers stay alive, crashed workers' leases are reclaimed after the
TTL, and a queue-backed campaign run produces records bit-identical to the
serial path (points travel as dicts and come back under the same key).
"""

import json
import os

import pytest

from repro.campaigns.queue import QueueWorker, WorkQueue
from repro.campaigns.runner import CampaignRunner, execute_point
from repro.campaigns.spec import PointSpec, grid


def quick_points(count=4):
    campaign = grid(
        "normal-steady",
        stacks=("fd",),
        n_values=(3,),
        throughputs=tuple(10.0 + 5.0 * index for index in range(count)),
        num_messages=8,
    )
    return campaign.points()


class TestPointSpecRoundTrip:
    def test_from_dict_preserves_key(self):
        point = PointSpec(
            kind="crash-steady",
            throughput=30.0,
            num_messages=10,
            crashed=(2,),
            config_overrides=(("alpha", 2.0),),
        )
        rebuilt = PointSpec.from_dict(point.as_dict())
        assert rebuilt == point
        assert rebuilt.key() == point.key()

    def test_from_dict_preserves_infinity_fields(self):
        # normal-steady defaults to an infinite mistake recurrence, which
        # serialises as the string "inf" to stay strict JSON.
        point = PointSpec(kind="normal-steady", throughput=25.0)
        data = json.loads(json.dumps(point.as_dict()))  # through real JSON
        rebuilt = PointSpec.from_dict(data)
        assert rebuilt.mistake_recurrence_time == float("inf")
        assert rebuilt.key() == point.key()

    def test_from_dict_rejects_unknown_fields(self):
        data = PointSpec(kind="normal-steady").as_dict()
        data["from_the_future"] = 1
        with pytest.raises(ValueError):
            PointSpec.from_dict(data)


class TestWorkQueue:
    def test_rejects_non_positive_ttl(self, tmp_path):
        with pytest.raises(ValueError):
            WorkQueue(str(tmp_path), lease_ttl=0)

    def test_enqueue_claim_commit_round_trip(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        points = quick_points(2)
        assert queue.enqueue(points) == 2
        assert queue.pending_count() == 2

        lease = queue.claim("w1")
        assert lease is not None and lease.worker == "w1"
        assert lease.point in points and lease.point.key() == lease.key
        queue.commit(lease, {"measured": 8}, {"worker": "w1"})
        assert queue.result(lease.key) == {"measured": 8}
        assert queue.result_entry(lease.key)["provenance"]["worker"] == "w1"
        assert queue.pending_count() == 1
        assert queue.result_count() == 1

    def test_enqueue_skips_done_and_pending_points(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        points = quick_points(2)
        queue.enqueue(points)
        assert queue.enqueue(points) == 0  # already pending
        lease = queue.claim("w1")
        queue.commit(lease, {"measured": 8})
        assert queue.enqueue(points) == 0  # one done, one still pending
        assert queue.pending_count() == 1

    def test_leased_point_is_not_claimable_by_another_worker(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.enqueue(quick_points(1))
        assert queue.claim("w1") is not None
        assert queue.claim("w2") is None  # live lease blocks the point

    def test_two_workers_never_execute_the_same_point(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        points = quick_points(6)
        queue.enqueue(points)
        claims = {"w1": [], "w2": []}
        while True:
            progressed = False
            for worker in claims:
                lease = queue.claim(worker)
                if lease is not None:
                    claims[worker].append(lease.key)
                    queue.commit(lease, {"measured": 8})
                    progressed = True
            if not progressed:
                break
        executed = claims["w1"] + claims["w2"]
        assert sorted(executed) == sorted(point.key() for point in points)
        assert len(executed) == len(set(executed))  # no point ran twice

    def test_released_point_is_claimable_again(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.enqueue(quick_points(1))
        lease = queue.claim("w1")
        queue.release(lease)
        retry = queue.claim("w2")
        assert retry is not None and retry.key == lease.key

    def test_crashed_lease_reclaimed_after_ttl(self, tmp_path):
        queue = WorkQueue(str(tmp_path), lease_ttl=0.05)
        queue.enqueue(quick_points(1))
        crashed = queue.claim("crashed-worker")
        assert crashed is not None
        # Age the lease past the TTL instead of sleeping through it.
        lease_path = queue._lease_path(crashed.key)
        old = os.stat(lease_path).st_mtime - 10.0
        os.utime(lease_path, (old, old))
        reclaimed = queue.claim("survivor")
        assert reclaimed is not None and reclaimed.key == crashed.key
        assert reclaimed.worker == "survivor"
        queue.commit(reclaimed, {"measured": 8})
        assert queue.result(crashed.key) == {"measured": 8}

    def test_live_lease_not_reclaimed_before_ttl(self, tmp_path):
        queue = WorkQueue(str(tmp_path), lease_ttl=300.0)
        queue.enqueue(quick_points(1))
        assert queue.claim("w1") is not None
        assert queue.claim("w2") is None

    def test_orphaned_pending_with_result_is_tidied(self, tmp_path):
        # A worker crashed between committing the result and removing the
        # pending marker; the next claim finishes the tidy-up.
        queue = WorkQueue(str(tmp_path))
        [point] = quick_points(1)
        queue.enqueue([point])
        lease = queue.claim("w1")
        queue.commit(lease, {"measured": 8})
        # Resurrect the pending marker as the crash would leave it.
        with open(queue._pending_path(point.key()), "w", encoding="utf-8") as handle:
            json.dump({"key": point.key(), "point": point.as_dict()}, handle)
        assert queue.claim("w2") is None
        assert queue.pending_count() == 0

    def test_results_iterates_committed_entries(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        points = quick_points(2)
        queue.enqueue(points)
        for _ in points:
            lease = queue.claim("w1")
            queue.commit(lease, {"measured": 8})
        entries = list(queue.results())
        assert sorted(key for key, _, _ in entries) == sorted(
            point.key() for point in points
        )
        for _, point_dict, record in entries:
            assert point_dict is not None and record == {"measured": 8}


class TestQueueWorker:
    def test_worker_drains_queue_with_provenance(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        points = quick_points(2)
        queue.enqueue(points)
        worker = QueueWorker(queue, worker_id="unit-worker")
        assert worker.run() == 2
        assert queue.pending_count() == 0
        for point in points:
            entry = queue.result_entry(point.key())
            assert entry["record"] == execute_point(point)
            provenance = entry["provenance"]
            assert provenance["worker"] == "unit-worker"
            for field in ("host", "pid", "wall_clock_s", "schema_version", "git_rev"):
                assert field in provenance

    def test_worker_respects_max_points(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.enqueue(quick_points(3))
        assert QueueWorker(queue, worker_id="w").run(max_points=1) == 1
        assert queue.pending_count() == 2

    def test_idle_worker_returns_zero(self, tmp_path):
        assert QueueWorker(WorkQueue(str(tmp_path)), worker_id="w").run() == 0


class TestQueueBackedRunner:
    def test_queue_run_matches_serial_records(self, tmp_path):
        campaign = grid(
            "normal-steady",
            stacks=("fd",),
            n_values=(3,),
            throughputs=(20.0, 60.0),
            num_messages=15,
        )
        serial = CampaignRunner(jobs=1).run(campaign)
        queue_run = CampaignRunner(
            queue=WorkQueue(str(tmp_path)), queue_timeout=120.0
        ).run(campaign)
        assert queue_run.records == serial.records
        assert queue_run.executed == 2

    def test_queue_run_uses_results_committed_by_others(self, tmp_path):
        campaign = grid(
            "normal-steady",
            stacks=("fd",),
            n_values=(3,),
            throughputs=(25.0,),
            num_messages=10,
        )
        queue = WorkQueue(str(tmp_path))
        # A "remote" worker commits the whole grid before the runner joins.
        queue.enqueue(campaign.points())
        QueueWorker(queue, worker_id="remote").run()
        run = CampaignRunner(queue=queue, queue_timeout=60.0).run(campaign)
        assert run.executed == 1
        [key] = [point.key() for point in campaign.points()]
        assert run.records[key] == queue.result(key)

    def test_queue_run_times_out_on_unclaimable_grid(self, tmp_path, monkeypatch):
        campaign = grid(
            "normal-steady",
            stacks=("fd",),
            n_values=(3,),
            throughputs=(25.0,),
            num_messages=10,
        )
        queue = WorkQueue(str(tmp_path))
        runner = CampaignRunner(queue=queue, queue_poll=0.01, queue_timeout=0.05)
        # Make the embedded worker unable to claim anything, simulating a
        # grid whose points are all leased by stalled remote workers.
        monkeypatch.setattr(WorkQueue, "claim", lambda self, worker: None)
        with pytest.raises(TimeoutError):
            runner.run(campaign)
