"""Tests for the ``python -m repro.campaigns`` ad-hoc grid CLI."""

from repro.campaigns.__main__ import main


class TestCampaignsCLI:
    def test_adhoc_grid_runs_and_reports(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        code = main(
            [
                "--scenario",
                "normal-steady",
                "--algorithms",
                "fd",
                "--n",
                "3",
                "--throughputs",
                "25",
                "--messages",
                "10",
                "-o",
                str(output),
            ]
        )
        assert code == 0
        text = output.read_text()
        assert "campaign 'adhoc': 1 points (1 simulated, 0 from cache)" in text
        assert "normal-steady" in text
        assert capsys.readouterr().out.strip() == text.strip()

    def test_cache_dir_makes_second_run_free(self, tmp_path, capsys):
        argv = [
            "--scenario",
            "normal-steady",
            "--algorithms",
            "fd",
            "--n",
            "3",
            "--throughputs",
            "25",
            "--messages",
            "10",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "(1 simulated, 0 from cache)" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "(0 simulated, 1 from cache)" in second
        # identical point lines, only the header timing differs
        assert first.splitlines()[1:] == second.splitlines()[1:]
