"""Tests for the ``python -m repro.campaigns`` ad-hoc grid CLI."""

import pytest

from repro.campaigns.__main__ import main


class TestCampaignsCLI:
    def test_adhoc_grid_runs_and_reports(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        code = main(
            [
                "--scenario",
                "normal-steady",
                "--algorithms",
                "fd",
                "--n",
                "3",
                "--throughputs",
                "25",
                "--messages",
                "10",
                "-o",
                str(output),
            ]
        )
        assert code == 0
        text = output.read_text()
        assert "campaign 'adhoc': 1 points (1 simulated, 0 from cache)" in text
        assert "normal-steady" in text
        assert capsys.readouterr().out.strip() == text.strip()

    def test_cache_dir_makes_second_run_free(self, tmp_path, capsys):
        argv = [
            "--scenario",
            "normal-steady",
            "--algorithms",
            "fd",
            "--n",
            "3",
            "--throughputs",
            "25",
            "--messages",
            "10",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "(1 simulated, 0 from cache)" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "(0 simulated, 1 from cache)" in second
        # identical point lines, only the header timing differs
        assert first.splitlines()[1:] == second.splitlines()[1:]

    @pytest.mark.parametrize(
        "scenario_args",
        [
            ["--scenario", "churn-steady", "--churn-rate", "4", "--downtime", "100"],
            ["--scenario", "correlated-crash", "--crashes", "1"],
            ["--scenario", "asymmetric-qos", "--tmr", "300"],
        ],
        ids=["churn", "correlated", "asymmetric"],
    )
    def test_new_scenario_kinds_run_and_resume(self, scenario_args, tmp_path, capsys):
        argv = scenario_args + [
            "--algorithms",
            "fd",
            "gm",
            "--n",
            "3",
            "--throughputs",
            "25",
            "--messages",
            "10",
            "--detection-time",
            "5",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "(2 simulated, 0 from cache)" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "(0 simulated, 2 from cache)" in second
        assert first.splitlines()[1:] == second.splitlines()[1:]

    def test_stack_and_fd_flags_run_heartbeat_churn_resumably(self, tmp_path, capsys):
        """The acceptance scenario: a heartbeat-FD stack, unreachable before
        the registry redesign, sweeps churn end-to-end through the cache."""
        argv = [
            "--scenario",
            "churn-steady",
            "--stack",
            "fd",
            "--fd",
            "heartbeat",
            "--n",
            "3",
            "--throughputs",
            "25",
            "--messages",
            "10",
            "--churn-rate",
            "2",
            "--downtime",
            "100",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "(1 simulated, 0 from cache)" in first
        assert "fd/heartbeat" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "(0 simulated, 1 from cache)" in second
        assert first.splitlines()[1:] == second.splitlines()[1:]

    def test_fd_axis_sweeps_kinds_across_stacks(self, capsys):
        assert (
            main(
                [
                    "--scenario",
                    "normal-steady",
                    "--stack",
                    "fd",
                    "--fd",
                    "qos",
                    "perfect",
                    "--n",
                    "3",
                    "--throughputs",
                    "25",
                    "--messages",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "series: fd, n=3" in out
        assert "series: fd/perfect, n=3" in out

    def test_algorithms_alias_still_accepted(self, capsys):
        assert (
            main(
                [
                    "--scenario",
                    "normal-steady",
                    "--algorithms",
                    "fd",
                    "--throughputs",
                    "25",
                    "--messages",
                    "10",
                ]
            )
            == 0
        )
        assert "normal-steady" in capsys.readouterr().out

    def test_conflicting_stack_and_algorithms_flags_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["--stack", "fd", "--algorithms", "gm"])

    def test_scenario_alias_resolves(self, capsys):
        assert (
            main(
                [
                    "--scenario",
                    "churn",
                    "--algorithms",
                    "fd",
                    "--n",
                    "3",
                    "--throughputs",
                    "25",
                    "--messages",
                    "10",
                ]
            )
            == 0
        )
        assert "churn-steady" in capsys.readouterr().out

    def test_experiments_cli_delegates_scenario_grids(self, capsys):
        from repro.experiments.__main__ import main as experiments_main

        assert (
            experiments_main(
                [
                    "--scenario",
                    "asymmetric",
                    "--algorithms",
                    "fd",
                    "--n",
                    "3",
                    "--throughputs",
                    "25",
                    "--messages",
                    "10",
                    "--tmr",
                    "300",
                ]
            )
            == 0
        )
        assert "asymmetric-qos" in capsys.readouterr().out
