"""Determinism and caching tests for the campaign runner.

The heart of the subsystem's contract: serial execution, ``jobs=N`` and a
warm cache must all produce identical records.
"""

import pytest

import repro.campaigns.runner as runner_module
from repro.campaigns.runner import CampaignRunner, execute_point
from repro.campaigns.spec import (
    CampaignSpec,
    PointSpec,
    SeriesPointSpec,
    SeriesSpec,
    grid,
)
from repro.campaigns.store import ResultStore


def tiny_campaign(**kwargs):
    defaults = dict(
        stacks=("fd",),
        n_values=(3,),
        throughputs=(20.0, 60.0),
        num_messages=15,
    )
    defaults.update(kwargs)
    return grid("normal-steady", **defaults)


class TestExecutePoint:
    def test_is_deterministic(self):
        point = PointSpec(kind="normal-steady", throughput=30.0, num_messages=15)
        assert execute_point(point) == execute_point(point)

    def test_dispatches_every_kind(self):
        records = [
            execute_point(PointSpec(kind="normal-steady", throughput=30.0, num_messages=10)),
            execute_point(
                PointSpec(kind="crash-steady", throughput=30.0, num_messages=10, crashed=(2,))
            ),
            execute_point(
                PointSpec(
                    kind="suspicion-steady",
                    throughput=30.0,
                    num_messages=10,
                    mistake_recurrence_time=1000.0,
                )
            ),
            execute_point(
                PointSpec(kind="crash-transient", throughput=30.0, num_runs=2)
            ),
        ]
        assert [record["type"] for record in records] == [
            "scenario",
            "scenario",
            "scenario",
            "transient",
        ]
        assert records[0]["scenario"] == "normal-steady"
        assert records[1]["scenario"] == "crash-steady"
        assert records[2]["scenario"] == "suspicion-steady"

    def test_dispatches_fault_schedule_kinds(self):
        records = [
            execute_point(
                PointSpec(
                    kind="correlated-crash",
                    n=5,
                    throughput=30.0,
                    num_messages=10,
                    crashed=(3, 4),
                    detection_time=5.0,
                )
            ),
            execute_point(
                PointSpec(
                    kind="churn-steady",
                    throughput=30.0,
                    num_messages=10,
                    churn_rate=4.0,
                    mean_downtime=100.0,
                    detection_time=5.0,
                )
            ),
            execute_point(
                PointSpec(
                    kind="asymmetric-qos",
                    throughput=30.0,
                    num_messages=10,
                    mistake_recurrence_time=300.0,
                )
            ),
        ]
        assert [record["scenario"] for record in records] == [
            "correlated-crash",
            "churn-steady",
            "asymmetric-qos",
        ]

    def test_transient_point_respects_explicit_sender(self):
        record = execute_point(
            PointSpec(kind="crash-transient", throughput=30.0, num_runs=1, sender=1)
        )
        assert record["sender"] == 1


class TestCampaignRunner:
    def test_rejects_non_positive_jobs(self):
        with pytest.raises(ValueError):
            CampaignRunner(jobs=0)

    def test_serial_and_parallel_records_identical(self):
        campaign = tiny_campaign()
        serial = CampaignRunner(jobs=1).run(campaign)
        parallel = CampaignRunner(jobs=2).run(campaign)
        assert serial.records == parallel.records
        assert serial.executed == parallel.executed == 2

    def test_serial_and_parallel_identical_for_churn_points(self):
        campaign = grid(
            "churn-steady",
            stacks=("fd", "gm"),
            n_values=(3,),
            throughputs=(25.0,),
            num_messages=10,
            churn_rate=4.0,
            mean_downtime=100.0,
            detection_time=5.0,
        )
        serial = CampaignRunner(jobs=1).run(campaign)
        parallel = CampaignRunner(jobs=2).run(campaign)
        assert serial.records == parallel.records

    def test_warm_cache_reproduces_cold_run(self, tmp_path):
        campaign = tiny_campaign()
        cold_runner = CampaignRunner(jobs=1, store=ResultStore(str(tmp_path)))
        cold = cold_runner.run(campaign)
        assert (cold.executed, cold.cache_hits) == (2, 0)

        warm_runner = CampaignRunner(jobs=1, store=ResultStore(str(tmp_path)))
        warm = warm_runner.run(campaign)
        assert (warm.executed, warm.cache_hits) == (0, 2)
        assert warm.records == cold.records

    def test_warm_cache_never_simulates(self, tmp_path, monkeypatch):
        campaign = tiny_campaign()
        CampaignRunner(jobs=1, store=ResultStore(str(tmp_path))).run(campaign)

        def boom(point):
            raise AssertionError(f"re-simulated cached point {point.label()}")

        monkeypatch.setattr(runner_module, "execute_point", boom)
        warm = CampaignRunner(jobs=1, store=ResultStore(str(tmp_path))).run(campaign)
        assert warm.cache_hits == 2

    def test_interrupted_campaign_resumes_missing_points_only(self, tmp_path):
        small = tiny_campaign(throughputs=(20.0,))
        full = tiny_campaign(throughputs=(20.0, 60.0))
        store_dir = str(tmp_path)
        CampaignRunner(jobs=1, store=ResultStore(store_dir)).run(small)

        resumed_runner = CampaignRunner(jobs=1, store=ResultStore(store_dir))
        resumed = resumed_runner.run(full)
        assert (resumed.executed, resumed.cache_hits) == (1, 1)
        # The resumed record set matches a from-scratch run of the full grid.
        scratch = CampaignRunner(jobs=1).run(full)
        assert resumed.records == scratch.records

    def test_run_result_objects_rebuild(self):
        campaign = tiny_campaign(throughputs=(20.0,))
        run = CampaignRunner().run(campaign)
        point = campaign.points()[0]
        result = run.result(point)
        assert result.scenario == "normal-steady"
        assert result.measured == 15


class TestRunnerScanRewrite:
    """CampaignRunner(fd_scan_interval=...) rewrites points like instrument."""

    def test_points_rewritten_and_aliased(self):
        campaign = CampaignSpec(name="scan")
        point = PointSpec(kind="normal-steady", throughput=30.0, num_messages=10)
        campaign.add_series(
            SeriesSpec(label="fd", points=[SeriesPointSpec(x=30.0, points=[point])])
        )
        runner = CampaignRunner(fd_scan_interval=5.0)
        run = runner.run(campaign)
        executed_key = run.aliases[point.key()]
        assert executed_key != point.key()
        # Lookup by the declared point still works through the alias.
        assert run.result(point).scenario == "normal-steady"

    def test_heartbeat_points_not_rewritten(self):
        campaign = CampaignSpec(name="scan-hb")
        point = PointSpec(
            kind="normal-steady", stack="fd", fd_kind="heartbeat",
            throughput=30.0, num_messages=10,
        )
        campaign.add_series(
            SeriesSpec(label="hb", points=[SeriesPointSpec(x=30.0, points=[point])])
        )
        run = CampaignRunner(fd_scan_interval=5.0).run(campaign)
        assert point.key() not in run.aliases

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner(fd_scan_interval=-1.0)
