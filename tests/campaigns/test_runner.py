"""Determinism and caching tests for the campaign runner.

The heart of the subsystem's contract: serial execution, ``jobs=N`` and a
warm cache must all produce identical records.
"""

import pytest

import repro.campaigns.runner as runner_module
from repro.campaigns.runner import CampaignRunner, execute_point
from repro.campaigns.spec import (
    CampaignSpec,
    PointSpec,
    SeriesPointSpec,
    SeriesSpec,
    grid,
)
from repro.campaigns.store import ResultStore


def tiny_campaign(**kwargs):
    defaults = dict(
        stacks=("fd",),
        n_values=(3,),
        throughputs=(20.0, 60.0),
        num_messages=15,
    )
    defaults.update(kwargs)
    return grid("normal-steady", **defaults)


class TestExecutePoint:
    def test_is_deterministic(self):
        point = PointSpec(kind="normal-steady", throughput=30.0, num_messages=15)
        assert execute_point(point) == execute_point(point)

    def test_dispatches_every_kind(self):
        records = [
            execute_point(PointSpec(kind="normal-steady", throughput=30.0, num_messages=10)),
            execute_point(
                PointSpec(kind="crash-steady", throughput=30.0, num_messages=10, crashed=(2,))
            ),
            execute_point(
                PointSpec(
                    kind="suspicion-steady",
                    throughput=30.0,
                    num_messages=10,
                    mistake_recurrence_time=1000.0,
                )
            ),
            execute_point(
                PointSpec(kind="crash-transient", throughput=30.0, num_runs=2)
            ),
        ]
        assert [record["type"] for record in records] == [
            "scenario",
            "scenario",
            "scenario",
            "transient",
        ]
        assert records[0]["scenario"] == "normal-steady"
        assert records[1]["scenario"] == "crash-steady"
        assert records[2]["scenario"] == "suspicion-steady"

    def test_dispatches_fault_schedule_kinds(self):
        records = [
            execute_point(
                PointSpec(
                    kind="correlated-crash",
                    n=5,
                    throughput=30.0,
                    num_messages=10,
                    crashed=(3, 4),
                    detection_time=5.0,
                )
            ),
            execute_point(
                PointSpec(
                    kind="churn-steady",
                    throughput=30.0,
                    num_messages=10,
                    churn_rate=4.0,
                    mean_downtime=100.0,
                    detection_time=5.0,
                )
            ),
            execute_point(
                PointSpec(
                    kind="asymmetric-qos",
                    throughput=30.0,
                    num_messages=10,
                    mistake_recurrence_time=300.0,
                )
            ),
        ]
        assert [record["scenario"] for record in records] == [
            "correlated-crash",
            "churn-steady",
            "asymmetric-qos",
        ]

    def test_transient_point_respects_explicit_sender(self):
        record = execute_point(
            PointSpec(kind="crash-transient", throughput=30.0, num_runs=1, sender=1)
        )
        assert record["sender"] == 1


class TestCampaignRunner:
    def test_rejects_non_positive_jobs(self):
        with pytest.raises(ValueError):
            CampaignRunner(jobs=0)

    def test_serial_and_parallel_records_identical(self):
        campaign = tiny_campaign()
        serial = CampaignRunner(jobs=1).run(campaign)
        parallel = CampaignRunner(jobs=2).run(campaign)
        assert serial.records == parallel.records
        assert serial.executed == parallel.executed == 2

    def test_serial_and_parallel_identical_for_churn_points(self):
        campaign = grid(
            "churn-steady",
            stacks=("fd", "gm"),
            n_values=(3,),
            throughputs=(25.0,),
            num_messages=10,
            churn_rate=4.0,
            mean_downtime=100.0,
            detection_time=5.0,
        )
        serial = CampaignRunner(jobs=1).run(campaign)
        parallel = CampaignRunner(jobs=2).run(campaign)
        assert serial.records == parallel.records

    def test_warm_cache_reproduces_cold_run(self, tmp_path):
        campaign = tiny_campaign()
        cold_runner = CampaignRunner(jobs=1, store=ResultStore(str(tmp_path)))
        cold = cold_runner.run(campaign)
        assert (cold.executed, cold.cache_hits) == (2, 0)

        warm_runner = CampaignRunner(jobs=1, store=ResultStore(str(tmp_path)))
        warm = warm_runner.run(campaign)
        assert (warm.executed, warm.cache_hits) == (0, 2)
        assert warm.records == cold.records

    def test_warm_cache_never_simulates(self, tmp_path, monkeypatch):
        campaign = tiny_campaign()
        CampaignRunner(jobs=1, store=ResultStore(str(tmp_path))).run(campaign)

        def boom(point):
            raise AssertionError(f"re-simulated cached point {point.label()}")

        monkeypatch.setattr(runner_module, "execute_point", boom)
        warm = CampaignRunner(jobs=1, store=ResultStore(str(tmp_path))).run(campaign)
        assert warm.cache_hits == 2

    def test_interrupted_campaign_resumes_missing_points_only(self, tmp_path):
        small = tiny_campaign(throughputs=(20.0,))
        full = tiny_campaign(throughputs=(20.0, 60.0))
        store_dir = str(tmp_path)
        CampaignRunner(jobs=1, store=ResultStore(store_dir)).run(small)

        resumed_runner = CampaignRunner(jobs=1, store=ResultStore(store_dir))
        resumed = resumed_runner.run(full)
        assert (resumed.executed, resumed.cache_hits) == (1, 1)
        # The resumed record set matches a from-scratch run of the full grid.
        scratch = CampaignRunner(jobs=1).run(full)
        assert resumed.records == scratch.records

    def test_run_result_objects_rebuild(self):
        campaign = tiny_campaign(throughputs=(20.0,))
        run = CampaignRunner().run(campaign)
        point = campaign.points()[0]
        result = run.result(point)
        assert result.scenario == "normal-steady"
        assert result.measured == 15


class TestChunkedDispatch:
    def test_rejects_negative_chunking_knobs(self):
        with pytest.raises(ValueError):
            CampaignRunner(chunk_size=-1)
        with pytest.raises(ValueError):
            CampaignRunner(max_inflight=-1)

    def test_explicit_chunk_size_matches_serial(self):
        campaign = tiny_campaign(throughputs=(20.0, 40.0, 60.0))
        serial = CampaignRunner(jobs=1).run(campaign)
        with CampaignRunner(jobs=2, chunk_size=2, max_inflight=1) as chunked:
            assert chunked.run(campaign).records == serial.records

    def test_execute_chunk_matches_per_point_execution(self):
        points = tiny_campaign().points()
        assert runner_module.execute_chunk(points) == [
            execute_point(point) for point in points
        ]

    def test_warm_pool_survives_across_runs(self):
        with CampaignRunner(jobs=2) as runner:
            runner.run(tiny_campaign(throughputs=(20.0, 40.0)))
            assert runner.pool.started
            first_checkouts = runner.pool.checkouts
            runner.run(tiny_campaign(throughputs=(25.0, 45.0)))
            # Same pool object handed out again, not a respun executor.
            assert runner.pool.checkouts == first_checkouts + 1
            assert runner.pool.started
        assert not runner.pool.started  # context exit released the workers

    def test_serial_runner_never_starts_a_pool(self):
        runner = CampaignRunner(jobs=1)
        runner.run(tiny_campaign())
        assert runner._pool is None

    def test_close_is_idempotent(self):
        runner = CampaignRunner(jobs=2)
        runner.run(tiny_campaign())
        runner.close()
        runner.close()


class TestForcedReexecution:
    def test_rejects_unknown_force_kind(self):
        with pytest.raises(ValueError):
            CampaignRunner(force_kinds=("no-such-scenario",))

    def test_force_bypasses_cache_and_rewrites_store(self, tmp_path):
        campaign = tiny_campaign()
        store_dir = str(tmp_path)
        cold = CampaignRunner(jobs=1, store=ResultStore(store_dir)).run(campaign)

        forced_store = ResultStore(store_dir)
        forced = CampaignRunner(jobs=1, store=forced_store, force=True).run(campaign)
        assert (forced.executed, forced.cache_hits) == (2, 0)
        assert forced.records == cold.records  # deterministic rewrite
        # The rewrite landed in the store (one duplicate line per point).
        assert forced_store._dupes == 2

    def test_force_kind_only_reexecutes_matching_points(self, tmp_path):
        store_dir = str(tmp_path)
        normal = tiny_campaign(throughputs=(20.0,))
        transient = grid("crash-transient", stacks=("fd",), throughputs=(30.0,), num_runs=2)
        CampaignRunner(jobs=1, store=ResultStore(store_dir)).run(normal)
        CampaignRunner(jobs=1, store=ResultStore(store_dir)).run(transient)

        runner = CampaignRunner(
            jobs=1,
            store=ResultStore(store_dir),
            force_kinds=("crash-transient",),
        )
        warm_normal = runner.run(normal)
        assert (warm_normal.executed, warm_normal.cache_hits) == (0, 1)
        forced_transient = runner.run(transient)
        assert (forced_transient.executed, forced_transient.cache_hits) == (1, 0)


class TestRunnerScanRewrite:
    """CampaignRunner(fd_scan_interval=...) rewrites points like instrument."""

    def test_points_rewritten_and_aliased(self):
        campaign = CampaignSpec(name="scan")
        point = PointSpec(kind="normal-steady", throughput=30.0, num_messages=10)
        campaign.add_series(
            SeriesSpec(label="fd", points=[SeriesPointSpec(x=30.0, points=[point])])
        )
        runner = CampaignRunner(fd_scan_interval=5.0)
        run = runner.run(campaign)
        executed_key = run.aliases[point.key()]
        assert executed_key != point.key()
        # Lookup by the declared point still works through the alias.
        assert run.result(point).scenario == "normal-steady"

    def test_heartbeat_points_not_rewritten(self):
        campaign = CampaignSpec(name="scan-hb")
        point = PointSpec(
            kind="normal-steady", stack="fd", fd_kind="heartbeat",
            throughput=30.0, num_messages=10,
        )
        campaign.add_series(
            SeriesSpec(label="hb", points=[SeriesPointSpec(x=30.0, points=[point])])
        )
        run = CampaignRunner(fd_scan_interval=5.0).run(campaign)
        assert point.key() not in run.aliases

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner(fd_scan_interval=-1.0)
