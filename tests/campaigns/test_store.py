"""Unit tests for the JSONL result store."""

import json
import os

import pytest

from repro.campaigns.store import ResultStore


class TestResultStore:
    def test_round_trip_and_persistence(self, tmp_path):
        store = ResultStore(str(tmp_path))
        record = {"type": "scenario", "latencies": [1.25, 3.5], "measured": 2}
        store.put("k1", record, point={"kind": "normal-steady"})
        assert store.get("k1") == record
        assert "k1" in store and len(store) == 1

        reopened = ResultStore(str(tmp_path))
        assert reopened.get("k1") == record

    def test_floats_round_trip_exactly(self, tmp_path):
        store = ResultStore(str(tmp_path))
        latencies = [0.1 + 0.2, 1e-17, 123456.789012345]
        store.put("k", {"latencies": latencies})
        assert ResultStore(str(tmp_path)).get("k")["latencies"] == latencies

    def test_torn_final_line_is_skipped(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("good", {"measured": 1})
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "torn", "record": {"measu')  # interrupted write
        reopened = ResultStore(str(tmp_path))
        assert reopened.get("good") == {"measured": 1}
        assert reopened.get("torn") is None

    def test_duplicate_key_last_line_wins(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("k", {"measured": 1})
        store.put("k", {"measured": 2})
        assert ResultStore(str(tmp_path)).get("k") == {"measured": 2}

    def test_missing_key_is_none(self, tmp_path):
        assert ResultStore(str(tmp_path)).get("nope") is None

    def test_stored_lines_are_strict_json(self, tmp_path):
        from repro.campaigns.runner import CampaignRunner
        from repro.campaigns.spec import grid

        campaign = grid(
            "normal-steady", stacks=("fd",), throughputs=(25.0,), num_messages=10
        )
        CampaignRunner(store=ResultStore(str(tmp_path))).run(campaign)
        with open(ResultStore(str(tmp_path)).path, encoding="utf-8") as handle:
            for line in handle:
                assert "Infinity" not in line and "NaN" not in line
                json.loads(line)

    def test_entries_are_one_json_object_per_line(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("a", {"measured": 1})
        store.put("b", {"measured": 2})
        with open(store.path, encoding="utf-8") as handle:
            entries = [json.loads(line) for line in handle if line.strip()]
        assert [entry["key"] for entry in entries] == ["a", "b"]


def line_count(path):
    with open(path, encoding="utf-8") as handle:
        return sum(1 for line in handle if line.strip())


class TestDurabilityModes:
    def test_rejects_unknown_mode(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(str(tmp_path), durability="paranoid")

    def test_rejects_non_positive_flush_every(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(str(tmp_path), durability="batch", flush_every=0)

    def test_fsync_mode_is_durable_per_put(self, tmp_path):
        store = ResultStore(str(tmp_path), durability="fsync")
        store.put("k", {"measured": 1})
        # Visible to an independent reader before close/flush.
        assert ResultStore(str(tmp_path)).get("k") == {"measured": 1}
        store.close()

    def test_batch_mode_flushes_every_n_puts(self, tmp_path):
        store = ResultStore(str(tmp_path), durability="batch", flush_every=3, mirror=False)
        store.put("a", {"measured": 1})
        store.put("b", {"measured": 2})
        buffered = line_count(store.path)
        store.put("c", {"measured": 3})  # third put crosses flush_every
        assert line_count(store.path) == 3 >= buffered
        store.close()

    def test_batch_mode_flush_and_close_drain_the_buffer(self, tmp_path):
        store = ResultStore(str(tmp_path), durability="batch", flush_every=100, mirror=False)
        store.put("a", {"measured": 1})
        store.flush()
        assert line_count(store.path) == 1
        store.put("b", {"measured": 2})
        store.close()
        assert line_count(store.path) == 2

    def test_closed_store_rejects_puts(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.close()
        with pytest.raises(ValueError):
            store.put("k", {"measured": 1})

    def test_context_manager_closes_and_mirrors(self, tmp_path):
        with ResultStore(str(tmp_path)) as store:
            store.put("k", {"measured": 1, "latencies": [1.0]})
        assert os.path.exists(os.path.join(str(tmp_path), "results.rcol"))


class TestCompaction:
    def test_compact_rewrites_to_one_line_per_key(self, tmp_path):
        store = ResultStore(str(tmp_path), mirror=False)
        for value in range(5):
            store.put("k", {"measured": value}, point={"kind": "normal-steady"})
        store.put("other", {"measured": 99})
        assert line_count(store.path) == 6
        store.compact()
        assert line_count(store.path) == 2
        reopened = ResultStore(str(tmp_path))
        assert reopened.get("k") == {"measured": 4}
        assert reopened.get("other") == {"measured": 99}
        assert reopened.point("k") == {"kind": "normal-steady"}

    def test_store_appends_again_after_compact(self, tmp_path):
        store = ResultStore(str(tmp_path), mirror=False)
        store.put("a", {"measured": 1})
        store.compact()
        store.put("b", {"measured": 2})
        store.close()
        assert ResultStore(str(tmp_path)).get("b") == {"measured": 2}

    def test_auto_compaction_bounds_file_growth(self, tmp_path):
        store = ResultStore(str(tmp_path), auto_compact_dupes=10, mirror=False)
        for value in range(50):
            store.put("hot", {"measured": value})
        assert line_count(store.path) <= 11
        assert store.get("hot") == {"measured": 49}
        store.close()

    def test_auto_compaction_disabled_with_zero(self, tmp_path):
        store = ResultStore(str(tmp_path), auto_compact_dupes=0, mirror=False)
        for value in range(20):
            store.put("hot", {"measured": value})
        assert line_count(store.path) == 20
        store.close()


class TestConcurrentStores:
    """Two runner processes sharing one store directory (the multi-writer
    contract: appends interleave, loads are last-wins, compaction swaps are
    atomic under a live reader)."""

    def test_interleaved_appends_from_two_stores(self, tmp_path):
        writer_a = ResultStore(str(tmp_path), mirror=False)
        writer_b = ResultStore(str(tmp_path), mirror=False)
        for index in range(10):
            writer_a.put(f"a{index}", {"measured": index})
            writer_b.put(f"b{index}", {"measured": index})
        writer_a.close()
        writer_b.close()
        merged = ResultStore(str(tmp_path))
        assert len(merged) == 20
        assert merged.get("a7") == {"measured": 7}
        assert merged.get("b3") == {"measured": 3}

    def test_same_key_from_two_stores_is_last_wins_on_reload(self, tmp_path):
        writer_a = ResultStore(str(tmp_path), mirror=False)
        writer_b = ResultStore(str(tmp_path), mirror=False)
        writer_a.put("shared", {"measured": 1})
        writer_b.put("shared", {"measured": 2})
        writer_a.close()
        writer_b.close()
        assert ResultStore(str(tmp_path)).get("shared") == {"measured": 2}

    def test_compaction_under_live_reader(self, tmp_path):
        writer = ResultStore(str(tmp_path), mirror=False)
        for value in range(5):
            writer.put("k", {"measured": value})
        reader = open(writer.path, encoding="utf-8")
        first_line = reader.readline()  # hold the old file open mid-read
        writer.compact()
        # The reader's handle still sees the complete pre-compaction file.
        rest = reader.read()
        reader.close()
        assert json.loads(first_line)["record"] == {"measured": 0}
        assert len([line for line in rest.splitlines() if line.strip()]) == 4
        # A fresh reader sees the complete post-compaction file.
        assert line_count(writer.path) == 1
        assert ResultStore(str(tmp_path)).get("k") == {"measured": 4}
        writer.close()

    def test_peer_compaction_never_leaves_a_torn_file(self, tmp_path):
        # A compacts while B holds an append handle on the replaced inode:
        # B's unseen lines go with the old inode (B's in-memory view stays
        # correct; deterministic points re-simulate for free), but the file
        # a fresh reader loads must always be complete and well-formed.
        writer_a = ResultStore(str(tmp_path), mirror=False)
        writer_b = ResultStore(str(tmp_path), mirror=False)
        writer_a.put("a", {"measured": 1})
        writer_b.put("b", {"measured": 2})  # opens B's handle on the old inode
        writer_a.compact()
        writer_a.close()
        writer_b.close()
        assert writer_b.get("b") == {"measured": 2}
        reloaded = ResultStore(str(tmp_path))
        assert reloaded.get("a") == {"measured": 1}
        with open(reloaded.path, encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    json.loads(line)  # every surviving line parses
