"""Unit tests for the JSONL result store."""

import json

from repro.campaigns.store import ResultStore


class TestResultStore:
    def test_round_trip_and_persistence(self, tmp_path):
        store = ResultStore(str(tmp_path))
        record = {"type": "scenario", "latencies": [1.25, 3.5], "measured": 2}
        store.put("k1", record, point={"kind": "normal-steady"})
        assert store.get("k1") == record
        assert "k1" in store and len(store) == 1

        reopened = ResultStore(str(tmp_path))
        assert reopened.get("k1") == record

    def test_floats_round_trip_exactly(self, tmp_path):
        store = ResultStore(str(tmp_path))
        latencies = [0.1 + 0.2, 1e-17, 123456.789012345]
        store.put("k", {"latencies": latencies})
        assert ResultStore(str(tmp_path)).get("k")["latencies"] == latencies

    def test_torn_final_line_is_skipped(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("good", {"measured": 1})
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "torn", "record": {"measu')  # interrupted write
        reopened = ResultStore(str(tmp_path))
        assert reopened.get("good") == {"measured": 1}
        assert reopened.get("torn") is None

    def test_duplicate_key_last_line_wins(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("k", {"measured": 1})
        store.put("k", {"measured": 2})
        assert ResultStore(str(tmp_path)).get("k") == {"measured": 2}

    def test_missing_key_is_none(self, tmp_path):
        assert ResultStore(str(tmp_path)).get("nope") is None

    def test_stored_lines_are_strict_json(self, tmp_path):
        from repro.campaigns.runner import CampaignRunner
        from repro.campaigns.spec import grid

        campaign = grid(
            "normal-steady", stacks=("fd",), throughputs=(25.0,), num_messages=10
        )
        CampaignRunner(store=ResultStore(str(tmp_path))).run(campaign)
        with open(ResultStore(str(tmp_path)).path, encoding="utf-8") as handle:
            for line in handle:
                assert "Infinity" not in line and "NaN" not in line
                json.loads(line)

    def test_entries_are_one_json_object_per_line(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("a", {"measured": 1})
        store.put("b", {"measured": 2})
        with open(store.path, encoding="utf-8") as handle:
            entries = [json.loads(line) for line in handle if line.strip()]
        assert [entry["key"] for entry in entries] == ["a", "b"]
