"""Tests for instrumented campaigns: metrics records, keys, traces, caching."""

import json
import os
from dataclasses import replace

from repro.campaigns.records import record_to_result
from repro.campaigns.runner import CampaignRunner, execute_point
from repro.campaigns.spec import PointSpec, grid
from repro.campaigns.store import ResultStore


def small_campaign(**kwargs):
    return grid(
        "normal-steady",
        stacks=("fd",),
        throughputs=(50.0,),
        seeds=(1,),
        num_messages=8,
        **kwargs,
    )


class TestInstrumentKey:
    def test_instrument_enters_the_cache_key(self):
        base = PointSpec(kind="normal-steady", stack="fd", num_messages=8)
        instrumented = replace(base, instrument=True)
        assert base.key() != instrumented.key()
        assert base.as_dict()["instrument"] is False
        assert instrumented.as_dict()["instrument"] is True

    def test_instrument_flows_into_the_config(self):
        point = PointSpec(kind="normal-steady", stack="fd", instrument=True)
        assert point.config().instrument is True
        assert PointSpec(kind="normal-steady", stack="fd").config().instrument is False


class TestExecutePoint:
    def test_uninstrumented_record_has_no_metrics_key(self):
        point = PointSpec(kind="normal-steady", stack="fd", num_messages=8)
        record = execute_point(point)
        assert "metrics" not in record

    def test_instrumented_record_carries_a_metrics_snapshot(self):
        point = PointSpec(
            kind="normal-steady", stack="fd", num_messages=8, instrument=True
        )
        record = execute_point(point)
        metrics = record["metrics"]
        assert metrics["provenance"]["stack"] == "fd"
        assert metrics["provenance"]["scenario"] == "normal-steady"
        assert metrics["counters"]["abcast.broadcasts"] >= 8
        assert metrics["sim"]["events_processed"] > 0
        json.dumps(record)  # records must stay JSONL-storable

    def test_metrics_round_trip_through_result(self):
        point = PointSpec(
            kind="normal-steady", stack="fd", num_messages=8, instrument=True
        )
        record = execute_point(point)
        result = record_to_result(record)
        assert result.metrics == record["metrics"]

    def test_instrumented_transient_point_aggregates_runs(self):
        point = PointSpec(
            kind="crash-transient",
            stack="fd",
            detection_time=20.0,
            num_runs=2,
            instrument=True,
        )
        record = execute_point(point)
        metrics = record["metrics"]
        assert metrics["provenance"]["runs"] == 2
        assert "sim" not in metrics  # aggregated over several kernels
        assert metrics["counters"]["abcast.broadcasts"] > 0

    def test_instrumented_result_matches_uninstrumented(self):
        point = PointSpec(kind="normal-steady", stack="fd", num_messages=8)
        base = record_to_result(execute_point(point))
        inst = record_to_result(execute_point(replace(point, instrument=True)))
        assert inst.latencies == base.latencies
        assert inst.events == base.events


class TestCampaignRunnerInstrument:
    def test_runner_clones_points_and_aliases_resolve(self):
        campaign = small_campaign()
        declared = campaign.points()[0]
        run = CampaignRunner(instrument=True).run(campaign)
        record = run.record(declared)  # looked up by the *declared* point
        assert "metrics" in record
        assert run.aliases[declared.key()] in run.records

    def test_uninstrumented_runner_records_no_metrics(self):
        campaign = small_campaign()
        run = CampaignRunner().run(campaign)
        assert run.aliases == {}
        assert all("metrics" not in record for record in run.records.values())

    def test_metrics_survive_the_result_cache(self, tmp_path):
        store = ResultStore(str(tmp_path))
        campaign = small_campaign()
        first = CampaignRunner(store=store, instrument=True).run(campaign)
        second = CampaignRunner(store=store, instrument=True).run(campaign)
        assert second.cache_hits == len(campaign.points())
        assert second.executed == 0
        point = campaign.points()[0]
        assert second.record(point)["metrics"] == first.record(point)["metrics"]

    def test_instrumented_and_plain_runs_use_disjoint_cache_entries(self, tmp_path):
        store = ResultStore(str(tmp_path))
        campaign = small_campaign()
        CampaignRunner(store=store).run(campaign)
        instrumented = CampaignRunner(store=store, instrument=True).run(campaign)
        # The plain cache entry must not satisfy the instrumented run.
        assert instrumented.cache_hits == 0
        assert "metrics" in instrumented.record(campaign.points()[0])

    def test_trace_dir_implies_instrumentation_and_writes_files(self, tmp_path):
        trace_dir = tmp_path / "traces"
        campaign = small_campaign()
        runner = CampaignRunner(trace_dir=str(trace_dir))
        assert runner.instrument
        run = runner.run(campaign)
        assert "metrics" in run.record(campaign.points()[0])
        names = sorted(os.listdir(trace_dir))
        assert any(name.endswith(".trace.jsonl") for name in names)
        assert any(name.endswith(".chrome.json") for name in names)

    def test_parallel_instrumented_run_matches_serial(self, tmp_path):
        campaign = grid(
            "normal-steady",
            stacks=("fd", "gm"),
            throughputs=(50.0,),
            seeds=(1,),
            num_messages=8,
        )
        serial = CampaignRunner(instrument=True).run(campaign)
        parallel = CampaignRunner(jobs=2, instrument=True).run(campaign)
        for point in campaign.points():
            assert parallel.record(point) == serial.record(point)
