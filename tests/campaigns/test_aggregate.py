"""Tests for folding campaign records into figure containers."""

from repro.campaigns.aggregate import (
    merge_scenario_results,
    merge_transient_results,
)
from repro.campaigns.records import record_to_result, result_to_record
from repro.campaigns.runner import CampaignRunner
from repro.experiments import figure4, figure8
from repro.experiments.helpers import base_config, point_from_scenario, point_from_transient
from repro.scenarios.results import ScenarioResult, TransientResult
from repro.scenarios.steady import run_normal_steady
from repro.scenarios.transient import run_crash_transient


class TestRecords:
    def test_scenario_record_round_trip(self):
        result = run_normal_steady(base_config("fd", 3, 1), 30.0, num_messages=10)
        rebuilt = record_to_result(result_to_record(result))
        assert isinstance(rebuilt, ScenarioResult)
        assert rebuilt.latencies == result.latencies
        assert rebuilt.summary().mean == result.summary().mean

    def test_transient_record_round_trip(self):
        result = run_crash_transient(
            base_config("fd", 3, 1), 30.0, detection_time=0.0, num_runs=2
        )
        rebuilt = record_to_result(result_to_record(result))
        assert isinstance(rebuilt, TransientResult)
        assert rebuilt.latencies == result.latencies
        assert rebuilt.overhead_summary().mean == result.overhead_summary().mean


class TestMerge:
    def test_single_replica_is_identity(self):
        result = run_normal_steady(base_config("fd", 3, 1), 30.0, num_messages=10)
        assert merge_scenario_results([result]) is result

    def test_replicas_pool_latencies(self):
        results = [
            run_normal_steady(base_config("fd", 3, seed), 30.0, num_messages=10)
            for seed in (1, 2)
        ]
        merged = merge_scenario_results(results)
        assert merged.latencies == results[0].latencies + results[1].latencies
        assert merged.measured == 20
        assert merged.params["replicas"] == 2

    def test_transient_replicas_pool_runs(self):
        results = [
            run_crash_transient(
                base_config("fd", 3, seed), 30.0, detection_time=0.0, num_runs=2
            )
            for seed in (1, 2)
        ]
        merged = merge_transient_results(results)
        assert merged.runs == results[0].runs + results[1].runs


class TestFigureEquivalence:
    def test_figure4_matches_direct_scenario_calls(self):
        figure = figure4.run(
            quick=True, seed=1, n_values=(3,), throughputs=(20, 60), num_messages=15
        )
        expected = []
        for algorithm in ("fd", "gm"):
            for throughput in (20, 60):
                result = run_normal_steady(
                    base_config(algorithm, 3, 1), throughput, num_messages=15
                )
                expected.append(point_from_scenario(throughput, result))
        got = [point for series in figure.series for point in series.points]
        assert got == expected

    def test_figure8_matches_direct_scenario_calls(self):
        figure = figure8.run(
            quick=True,
            seed=1,
            n_values=(3,),
            detection_times=(0.0,),
            throughputs=(10,),
            num_runs=2,
        )
        expected = []
        for algorithm in ("fd", "gm"):
            result = run_crash_transient(
                base_config(algorithm, 3, 1),
                10,
                detection_time=0.0,
                crashed_process=0,
                num_runs=2,
            )
            expected.append(point_from_transient(10, result))
        got = [point for series in figure.series for point in series.points]
        assert got == expected

    def test_multi_seed_replicas_increase_samples(self):
        single = figure4.run(
            quick=True, seed=1, n_values=(3,), throughputs=(30,), num_messages=10
        )
        pooled = figure4.run(
            quick=True,
            seed=1,
            n_values=(3,),
            throughputs=(30,),
            num_messages=10,
            replicas=2,
        )
        assert pooled.series[0].points[0].samples > single.series[0].points[0].samples

    def test_parallel_runner_yields_identical_figure(self):
        serial = figure4.run(
            quick=True, seed=1, n_values=(3,), throughputs=(20, 60), num_messages=15
        )
        parallel = figure4.run(
            quick=True,
            seed=1,
            n_values=(3,),
            throughputs=(20, 60),
            num_messages=15,
            runner=CampaignRunner(jobs=2),
        )
        for a, b in zip(serial.series, parallel.series):
            assert a.label == b.label
            assert a.points == b.points
