"""Integration test: a replicated key-value store stays consistent end to end."""

from repro import QoSConfig, SystemConfig, build_system
from repro.replication.service import ReplicatedService
from repro.replication.state_machine import Command


class TestReplicatedStoreEndToEnd:
    def test_store_consistent_across_sequencer_crash_and_suspicions(self, algorithm):
        config = SystemConfig(
            n=5,
            stack=algorithm,
            seed=91,
            fd=QoSConfig(
                detection_time=20.0, mistake_recurrence_time=500.0, mistake_duration=10.0
            ),
        )
        system = build_system(config)
        service = ReplicatedService(system)
        system.start()
        for i in range(40):
            sender = 1 + i % 4
            service.submit_at(
                5.0 + 12.0 * i,
                sender,
                Command("increment", f"key-{i % 5}", client=sender, request_id=i),
            )
        system.crash_at(150.0, 0)
        system.run(until=60_000.0, max_events=3_000_000)

        assert service.replicas_consistent()
        correct = system.correct_processes()
        snapshots = {service.replicas[pid].snapshot() for pid in correct}
        assert len(snapshots) == 1
        # Every submitted command was executed exactly once: the five counters
        # sum to the number of requests.
        state = dict(service.replicas[correct[0]].snapshot())
        assert sum(state.values()) == 40

    def test_response_times_track_first_delivery(self, algorithm):
        system = build_system(SystemConfig(n=3, stack=algorithm, seed=93))
        service = ReplicatedService(system, processing_time=2.0)
        system.start()
        for i in range(10):
            service.submit_at(1.0 + 5 * i, i % 3, Command("put", f"k{i}", i))
        system.run(until=5_000.0)
        times = service.response_times()
        assert len(times) == 10
        assert all(time >= 2.0 for time in times)
