"""Integration test: Fig. 1 -- identical message patterns in suspicion-free runs.

The paper builds its comparison on the observation that, with neither
crashes nor suspicions, the FD and GM algorithms generate *the same exchange
of messages* given the same arrival pattern (Section 4, Fig. 1).  These
tests verify that property end to end on the simulated network.
"""

import pytest

from repro import SystemConfig, build_system


def message_trace(algorithm, arrivals, n=3, seed=61):
    """Run a system and return (time, sender, remote destinations) per send.

    Only remote destinations are compared: a copy to the sender itself never
    touches the network or any CPU resource, so it is not part of the
    "message exchange" the paper talks about (the FD algorithm's reliable
    broadcast self-delivers its decision, the GM algorithm's deliver message
    does not, and neither copy exists on the wire).
    """
    system = build_system(SystemConfig(n=n, stack=algorithm, seed=seed))
    trace = []
    original_send = system.network.send

    def recording_send(message):
        trace.append(
            (
                round(system.sim.now, 9),
                message.sender,
                tuple(sorted(message.remote_destinations())),
            )
        )
        original_send(message)

    system.network.send = recording_send
    system.start()
    for time, sender, payload in arrivals:
        system.broadcast_at(time, sender, payload)
    system.run(until=60_000.0)
    return trace, system


ARRIVAL_PATTERNS = {
    "single message": [(1.0, 0, "a")],
    "two senders": [(1.0, 0, "a"), (2.0, 1, "b")],
    "burst": [(1.0 + 0.2 * i, i % 3, f"m{i}") for i in range(12)],
    "spread": [(1.0 + 7.0 * i, (i * 2) % 3, f"m{i}") for i in range(8)],
}


class TestIdenticalMessagePattern:
    @pytest.mark.parametrize("pattern", sorted(ARRIVAL_PATTERNS))
    def test_fd_and_gm_generate_identical_message_exchanges(self, pattern):
        arrivals = ARRIVAL_PATTERNS[pattern]
        fd_trace, fd_system = message_trace("fd", arrivals)
        gm_trace, gm_system = message_trace("gm", arrivals)
        assert fd_trace == gm_trace
        fd_stats = fd_system.message_stats()
        gm_stats = gm_system.message_stats()
        for key in ("messages_sent", "unicasts_sent", "multicasts_sent"):
            assert fd_stats[key] == gm_stats[key]

    @pytest.mark.parametrize("pattern", sorted(ARRIVAL_PATTERNS))
    def test_fd_and_gm_deliver_at_identical_times(self, pattern):
        # The two algorithms may order the messages of one batch differently
        # (consensus decisions use the identifier order, the sequencer uses
        # the arrival order), so individual messages are not compared -- the
        # multiset of (delivery time, process) pairs must nevertheless be
        # identical, which pins down the latency behaviour.
        arrivals = ARRIVAL_PATTERNS[pattern]

        def delivery_times(algorithm):
            system = build_system(SystemConfig(n=3, stack=algorithm, seed=61))
            deliveries = []
            system.add_delivery_listener(
                lambda pid, bid, payload: deliveries.append(
                    (round(system.sim.now, 9), pid)
                )
            )
            system.start()
            for time, sender, payload in arrivals:
                system.broadcast_at(time, sender, payload)
            system.run(until=60_000.0)
            return sorted(deliveries)

        assert delivery_times("fd") == delivery_times("gm")

    def test_single_broadcast_message_counts_match_figure1(self):
        # Fig. 1 for n = 3: the initial multicast of m, the proposal/seqnum
        # multicast, one ack per non-coordinator (n - 1 unicasts) and the
        # decision/deliver multicast.
        arrivals = [(1.0, 1, "m")]
        _trace, system = message_trace("fd", arrivals)
        stats = system.message_stats()
        assert stats["multicasts_sent"] == 3
        assert stats["unicasts_sent"] == 2

    def test_non_uniform_gm_uses_two_multicasts_per_message(self):
        arrivals = [(1.0, 1, "m")]
        _trace, system = message_trace("gm-nonuniform", arrivals)
        stats = system.message_stats()
        assert stats["multicasts_sent"] == 2
        assert stats["unicasts_sent"] == 0
