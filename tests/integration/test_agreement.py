"""Integration tests: atomic broadcast safety under adverse conditions.

These tests exercise larger mixed scenarios (crashes plus wrong suspicions
plus load) and check the uniform atomic broadcast properties on the full
delivery logs:

* *uniform agreement / total order*: the delivery sequences of any two
  processes (including crashed and wrongly excluded ones) are prefixes of
  one another;
* *integrity*: no duplicates, only broadcast messages are delivered;
* *validity*: every message broadcast by a correct process is eventually
  delivered by every correct process.
"""

import pytest

from repro import QoSConfig, SystemConfig, build_system
from tests.conftest import (
    assert_no_duplicates,
    assert_prefix_consistent,
    poisson_broadcasts,
)


def run_scenario(algorithm, n, seed, broadcasts, crashes=(), qos=None, until=120_000.0):
    config = SystemConfig(n=n, stack=algorithm, seed=seed, fd=qos or QoSConfig())
    system = build_system(config)
    system.start()
    sent = []
    for time, sender, payload in broadcasts:
        system.broadcast_at(time, sender, payload)
        sent.append((time, sender, payload))
    for time, pid in crashes:
        system.crash_at(time, pid)
    system.run(until=until, max_events=3_000_000)
    return system, sent


class TestSafetyUnderCrashes:
    def test_total_order_with_one_crash(self, algorithm):
        broadcasts = poisson_broadcasts(30, 0.02, senders=[1, 2], seed=3)
        system, _sent = run_scenario(
            algorithm,
            3,
            71,
            broadcasts,
            crashes=[(150.0, 0)],
            qos=QoSConfig(detection_time=20.0),
        )
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert_no_duplicates(sequences)

    def test_validity_with_one_crash(self, algorithm):
        broadcasts = poisson_broadcasts(30, 0.02, senders=[1, 2], seed=5)
        system, sent = run_scenario(
            algorithm,
            3,
            73,
            broadcasts,
            crashes=[(140.0, 0)],
            qos=QoSConfig(detection_time=20.0),
        )
        payloads_sent = {payload for _t, _s, payload in sent}
        for pid in (1, 2):
            delivered = {payload for _bid, payload in system.abcast(pid).delivered}
            assert delivered == payloads_sent

    def test_total_order_n7_three_crashes(self, algorithm):
        broadcasts = poisson_broadcasts(40, 0.03, senders=[0, 1, 2, 3], seed=7)
        system, _sent = run_scenario(
            algorithm,
            7,
            75,
            broadcasts,
            crashes=[(200.0, 6), (400.0, 5), (600.0, 4)],
            qos=QoSConfig(detection_time=30.0),
        )
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert_no_duplicates(sequences)
        for pid in range(4):
            assert len(sequences[pid]) == 40

    def test_delivery_of_crashed_process_is_prefix(self, algorithm):
        # Uniformity: whatever the crashed process delivered before dying is a
        # prefix of what the correct processes deliver.
        broadcasts = poisson_broadcasts(25, 0.05, senders=[0, 1, 2], seed=11)
        system, _sent = run_scenario(
            algorithm,
            3,
            77,
            broadcasts,
            crashes=[(180.0, 1)],
            qos=QoSConfig(detection_time=15.0),
        )
        assert_prefix_consistent(system.delivery_sequences())


class TestSafetyUnderWrongSuspicions:
    @pytest.mark.parametrize("tmr,tm", [(200.0, 0.0), (300.0, 40.0), (80.0, 5.0)])
    def test_total_order_under_suspicion_storm(self, algorithm, tmr, tm):
        broadcasts = poisson_broadcasts(40, 0.02, senders=[0, 1, 2], seed=13)
        system, sent = run_scenario(
            algorithm,
            3,
            79,
            broadcasts,
            qos=QoSConfig(mistake_recurrence_time=tmr, mistake_duration=tm),
        )
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert_no_duplicates(sequences)
        # No crash happened: everything must be delivered everywhere.
        payloads_sent = {payload for _t, _s, payload in sent}
        for pid in range(3):
            assert {p for _b, p in system.abcast(pid).delivered} == payloads_sent

    def test_crash_plus_wrong_suspicions(self, algorithm):
        broadcasts = poisson_broadcasts(35, 0.02, senders=[1, 2, 3, 4], seed=17)
        system, _sent = run_scenario(
            algorithm,
            5,
            83,
            broadcasts,
            crashes=[(250.0, 0)],
            qos=QoSConfig(
                detection_time=25.0, mistake_recurrence_time=400.0, mistake_duration=20.0
            ),
        )
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert_no_duplicates(sequences)
        correct = [1, 2, 3, 4]
        lengths = {len(sequences[pid]) for pid in correct}
        assert lengths == {35}
