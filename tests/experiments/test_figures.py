"""Smoke tests of the figure experiments with tiny parameters.

The full sweeps run in ``benchmarks/``; these tests only check that every
figure module produces well-formed series and that the headline shape of the
cheap figures holds even at very small message counts.
"""


from repro.experiments import figure4, figure5, figure6, figure7, figure8
from repro.experiments.shape_checks import (
    check_figure4,
    check_figure5,
    check_figure6,
    check_figure7,
    check_figure8,
)


class TestFigure4:
    def test_small_run_produces_expected_series(self):
        result = figure4.run(
            quick=True, n_values=(3,), throughputs=(10, 200), num_messages=40
        )
        assert {series.label for series in result.series} == {"FD, n=3", "GM, n=3"}
        assert all(len(series.points) == 2 for series in result.series)

    def test_fd_equals_gm_even_in_small_runs(self):
        result = figure4.run(
            quick=True, n_values=(3,), throughputs=(50, 300), num_messages=50
        )
        checks = check_figure4(result)
        assert checks["fd_equals_gm_n3"]
        assert checks["latency_increases_with_T_n3"]


class TestFigure5:
    def test_series_labels(self):
        result = figure5.run(
            quick=True, n_values=(3,), throughputs=(100,), num_messages=30
        )
        labels = {series.label for series in result.series}
        assert "FD and GM, no crash, n=3" in labels
        assert "FD, 1 crash(es), n=3" in labels
        assert "GM, 1 crash(es), n=3" in labels

    def test_crash_does_not_increase_latency(self):
        result = figure5.run(
            quick=True, n_values=(3,), throughputs=(400,), num_messages=60
        )
        checks = check_figure5(result)
        assert checks.get("crash_reduces_latency_n3", True)


class TestFigure6:
    def test_gm_worse_at_small_tmr(self):
        result = figure6.run(
            quick=True,
            panels=((3, 10.0),),
            tmr_values=(20.0, 10000.0),
            num_messages=40,
        )
        checks = check_figure6(result, small_tmr=20.0, large_tmr=10000.0)
        assert checks["gm_much_worse_at_small_tmr_n3_T10"]
        assert checks["curves_join_at_large_tmr_n3_T10"]


class TestFigure7:
    def test_gm_more_sensitive_to_mistake_duration(self):
        result = figure7.run(
            quick=True,
            panels=((3, 10.0, 1000.0),),
            tm_values=(1.0, 500.0),
            num_messages=40,
        )
        checks = check_figure7(result)
        assert checks["gm_more_sensitive_to_tm_n3_T10"]


class TestFigure8:
    def test_series_and_moderate_overhead(self):
        result = figure8.run(
            quick=True,
            n_values=(3,),
            detection_times=(0.0,),
            throughputs=(10,),
            num_runs=3,
        )
        assert {series.label for series in result.series} == {
            "FD, n=3, T_D=0ms",
            "GM, n=3, T_D=0ms",
        }
        checks = check_figure8(result)
        assert checks["overhead_moderate_n3"]
        assert checks["fd_wins_at_low_T_n3"]
