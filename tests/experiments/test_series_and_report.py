"""Unit tests for the experiment result containers and text reports."""

import math

from repro.experiments.report import format_figure, format_markdown_table
from repro.experiments.series import FigurePoint, FigureResult, Series


def make_figure():
    figure = FigureResult(
        figure="4",
        title="Latency vs throughput",
        x_label="throughput [1/s]",
        y_label="latency [ms]",
    )
    fd = Series(label="FD, n=3")
    fd.add(FigurePoint(x=10, mean=8.0, ci=0.5, samples=100))
    fd.add(FigurePoint(x=100, mean=11.0, ci=0.7, samples=100))
    gm = Series(label="GM, n=3")
    gm.add(FigurePoint(x=10, mean=8.0, ci=0.5, samples=100))
    gm.add(FigurePoint(x=300, mean=float("nan"), ci=0.0, samples=0, completed=False))
    figure.add_series(fd)
    figure.add_series(gm)
    figure.notes.append("expected: curves coincide")
    return figure


class TestSeries:
    def test_point_lookup(self):
        figure = make_figure()
        series = figure.get_series("FD, n=3")
        assert series.point_at(10).mean == 8.0
        assert series.point_at(999) is None

    def test_xs_and_means(self):
        series = make_figure().get_series("FD, n=3")
        assert series.xs() == [10, 100]
        assert series.means() == [8.0, 11.0]

    def test_incomplete_point_mean_is_nan(self):
        series = make_figure().get_series("GM, n=3")
        assert math.isnan(series.means()[1])

    def test_get_series_unknown_label(self):
        assert make_figure().get_series("nope") is None

    def test_point_formatting(self):
        assert "±" in FigurePoint(x=1, mean=5.0, ci=0.1, samples=10).formatted()
        assert "--" in FigurePoint(x=1, mean=float("nan"), ci=0.0, samples=0, completed=False).formatted()


class TestTextReport:
    def test_contains_title_and_labels(self):
        text = format_figure(make_figure())
        assert "Figure 4" in text
        assert "throughput [1/s]" in text
        assert "FD, n=3" in text

    def test_contains_all_x_values(self):
        text = format_figure(make_figure())
        for x in ("10", "100", "300"):
            assert x in text

    def test_empty_figure(self):
        empty = FigureResult(figure="9", title="t", x_label="x", y_label="y")
        assert "(no data)" in format_figure(empty)

    def test_notes_rendered(self):
        assert "expected: curves coincide" in format_figure(make_figure())


class TestMarkdownReport:
    def test_markdown_table_structure(self):
        text = format_markdown_table(make_figure())
        assert text.count("|") > 10
        assert "did not complete" in text
        assert "**Figure 4" in text
