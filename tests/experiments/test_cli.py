"""Tests for the experiments command-line interface."""

from repro.experiments.__main__ import main


def patch_tiny_figure4(monkeypatch, throughputs=(50,), num_messages=20):
    """Shrink figure 4 to a tiny sweep so CLI tests stay fast."""
    from repro.experiments import figure4 as figure4_module

    def tiny_run(quick=True, seed=1, replicas=1, runner=None):
        return figure4_module.run(
            quick=True,
            seed=seed,
            n_values=(3,),
            throughputs=throughputs,
            num_messages=num_messages,
            replicas=replicas,
            runner=runner,
        )

    monkeypatch.setitem(
        __import__("repro.experiments.__main__", fromlist=["FIGURES"]).FIGURES,
        "4",
        tiny_run,
    )


def table_lines(out):
    """The table rows of a report, without the timing/cache status lines."""
    return [line for line in out.splitlines() if line and not line.startswith("(")]


class TestExperimentsCLI:
    def test_single_quick_figure_to_file(self, tmp_path, capsys):
        output = tmp_path / "figure4.txt"
        code = main(
            [
                "--figure",
                "4",
                "--quick",
                "--seed",
                "3",
                "-o",
                str(output),
            ]
        )
        assert code == 0
        text = output.read_text()
        assert "Figure 4" in text
        assert "FD, n=3" in text
        captured = capsys.readouterr()
        assert "Figure 4" in captured.out

    def test_markdown_output_with_checks(self, capsys, monkeypatch, tmp_path):
        patch_tiny_figure4(monkeypatch)
        code = main(["--figure", "4", "--quick", "--markdown", "--check"])
        assert code == 0
        out = capsys.readouterr().out
        assert "| throughput [1/s] |" in out
        assert "check" in out

    def test_jobs_and_cache_reproduce_serial_tables(self, capsys, monkeypatch, tmp_path):
        patch_tiny_figure4(monkeypatch, throughputs=(30, 60), num_messages=15)
        cache_dir = str(tmp_path / "cache")

        assert main(["--figure", "4"]) == 0
        serial = table_lines(capsys.readouterr().out)

        assert main(["--figure", "4", "--jobs", "2", "--cache-dir", cache_dir]) == 0
        parallel_out = capsys.readouterr().out
        assert table_lines(parallel_out) == serial
        assert "4 points simulated, 0 from cache" in parallel_out

        # A second run against the same cache re-simulates nothing.
        assert main(["--figure", "4", "--jobs", "2", "--cache-dir", cache_dir]) == 0
        warm_out = capsys.readouterr().out
        assert table_lines(warm_out) == serial
        assert "0 points simulated, 4 from cache" in warm_out

    def test_replicas_flag_pools_more_samples(self, capsys, monkeypatch):
        patch_tiny_figure4(monkeypatch, throughputs=(30,), num_messages=10)
        assert main(["--figure", "4", "--replicas", "2", "--markdown"]) == 0
        assert "Figure 4" in capsys.readouterr().out
