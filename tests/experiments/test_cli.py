"""Tests for the experiments command-line interface."""

import os

from repro.experiments.__main__ import main


class TestExperimentsCLI:
    def test_single_quick_figure_to_file(self, tmp_path, capsys):
        output = tmp_path / "figure4.txt"
        code = main(
            [
                "--figure",
                "4",
                "--quick",
                "--seed",
                "3",
                "-o",
                str(output),
            ]
        )
        assert code == 0
        text = output.read_text()
        assert "Figure 4" in text
        assert "FD, n=3" in text
        captured = capsys.readouterr()
        assert "Figure 4" in captured.out

    def test_markdown_output_with_checks(self, capsys, monkeypatch, tmp_path):
        # Patch figure 4 to a tiny sweep so the CLI test stays fast.
        from repro.experiments import figure4 as figure4_module

        def tiny_run(quick=True, seed=1):
            return figure4_module.run(
                quick=True,
                seed=seed,
                n_values=(3,),
                throughputs=(50,),
                num_messages=20,
            )

        monkeypatch.setitem(
            __import__("repro.experiments.__main__", fromlist=["FIGURES"]).FIGURES,
            "4",
            tiny_run,
        )
        code = main(["--figure", "4", "--quick", "--markdown", "--check"])
        assert code == 0
        out = capsys.readouterr().out
        assert "| throughput [1/s] |" in out
        assert "check" in out
