"""Unit tests for the shape checks (fed with hand-built figure data)."""

from repro.experiments.series import FigurePoint, FigureResult, Series
from repro.experiments.shape_checks import (
    ALL_CHECKS,
    check_figure4,
    check_figure6,
    check_figure8,
)


def series(label, points):
    built = Series(label=label)
    for x, mean in points:
        built.add(FigurePoint(x=x, mean=mean, ci=0.1, samples=10))
    return built


def figure(*all_series):
    result = FigureResult(figure="t", title="t", x_label="x", y_label="y")
    for one in all_series:
        result.add_series(one)
    return result


class TestCheckFigure4:
    def test_passes_on_identical_increasing_curves(self):
        fd3 = series("FD, n=3", [(10, 8.0), (300, 20.0)])
        gm3 = series("GM, n=3", [(10, 8.0), (300, 20.0)])
        fd7 = series("FD, n=7", [(10, 12.0), (300, 40.0)])
        gm7 = series("GM, n=7", [(10, 12.0), (300, 40.0)])
        checks = check_figure4(figure(fd3, gm3, fd7, gm7))
        assert all(checks.values())

    def test_fails_when_curves_differ(self):
        fd3 = series("FD, n=3", [(10, 8.0), (300, 20.0)])
        gm3 = series("GM, n=3", [(10, 16.0), (300, 40.0)])
        checks = check_figure4(figure(fd3, gm3))
        assert not checks["fd_equals_gm_n3"]

    def test_fails_when_latency_decreases(self):
        fd3 = series("FD, n=3", [(10, 20.0), (300, 8.0)])
        gm3 = series("GM, n=3", [(10, 20.0), (300, 8.0)])
        checks = check_figure4(figure(fd3, gm3))
        assert not checks["latency_increases_with_T_n3"]


class TestCheckFigure6:
    def test_detects_gm_blowup_and_joining(self):
        fd = series("FD, n=3, T=10/s", [(10, 10.0), (10000, 9.0)])
        gm = series("GM, n=3, T=10/s", [(10, 80.0), (10000, 9.2)])
        checks = check_figure6(figure(fd, gm))
        assert checks["gm_much_worse_at_small_tmr_n3_T10"]
        assert checks["curves_join_at_large_tmr_n3_T10"]

    def test_incomplete_gm_point_counts_as_blowup(self):
        fd = series("FD, n=3, T=10/s", [(10, 10.0)])
        gm = Series(label="GM, n=3, T=10/s")
        gm.add(FigurePoint(x=10, mean=float("nan"), ci=0.0, samples=0, completed=False))
        checks = check_figure6(figure(fd, gm))
        assert checks["gm_much_worse_at_small_tmr_n3_T10"]


class TestCheckFigure8:
    def test_fd_at_or_below_gm_passes(self):
        fd = series("FD, n=3, T_D=0ms", [(10, 10.0), (100, 20.0)])
        gm = series("GM, n=3, T_D=0ms", [(10, 25.0), (100, 30.0)])
        checks = check_figure8(figure(fd, gm))
        assert checks["fd_not_worse_than_gm_td0_n3"]
        assert checks["fd_wins_at_low_T_n3"]
        assert checks["overhead_moderate_n3"]

    def test_huge_overhead_flagged(self):
        fd = series("FD, n=3, T_D=0ms", [(10, 900.0)])
        gm = series("GM, n=3, T_D=0ms", [(10, 950.0)])
        checks = check_figure8(figure(fd, gm))
        assert not checks["overhead_moderate_n3"]


class TestRegistry:
    def test_all_checks_registered(self):
        assert set(ALL_CHECKS) == {"4", "5", "6", "7", "8"}
