"""Unit tests for the concrete heartbeat failure detector (extension)."""

import pytest

from repro.failure_detectors.heartbeat import HeartbeatConfig, HeartbeatFailureDetector
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.process import SimProcess


def build(n=3, period=10.0, timeout=30.0):
    sim = Simulator()
    network = Network(sim, NetworkConfig(n=n))
    processes = [SimProcess(sim, network, pid) for pid in range(n)]
    detectors = [
        HeartbeatFailureDetector(process, HeartbeatConfig(period=period, timeout=timeout))
        for process in processes
    ]
    for process in processes:
        process.start()
    return sim, network, processes, detectors


class TestHeartbeatConfig:
    def test_rejects_non_positive_period(self):
        with pytest.raises(ValueError):
            HeartbeatConfig(period=0.0)

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ValueError):
            HeartbeatConfig(timeout=0.0)

    def test_check_interval_defaults_to_period(self):
        config = HeartbeatConfig(period=7.0, timeout=20.0)
        assert config.effective_check_interval == 7.0
        explicit = HeartbeatConfig(period=7.0, timeout=20.0, check_interval=3.0)
        assert explicit.effective_check_interval == 3.0


class TestHeartbeatDetector:
    def test_no_suspicions_without_crash(self):
        sim, _network, _processes, detectors = build()
        sim.run(until=500.0)
        for detector in detectors:
            assert detector.suspected() == set()

    def test_crashed_process_eventually_suspected(self):
        sim, _network, processes, detectors = build()
        sim.schedule(100.0, processes[2].crash)
        sim.run(until=200.0)
        assert detectors[0].is_suspected(2)
        assert detectors[1].is_suspected(2)

    def test_detection_latency_bounded_by_timeout_plus_period(self):
        sim, _network, processes, detectors = build(period=10.0, timeout=30.0)
        detection = {}

        def listener(pid, suspected):
            if suspected and pid not in detection:
                detection[pid] = sim.now

        detectors[0].add_listener(listener)
        sim.schedule(100.0, processes[1].crash)
        sim.run(until=300.0)
        assert 1 in detection
        assert detection[1] - 100.0 <= 30.0 + 2 * 10.0 + 5.0

    def test_heartbeats_generate_network_traffic(self):
        sim, network, _processes, _detectors = build()
        sim.run(until=100.0)
        assert network.stats.multicasts_sent > 0

    def test_correct_processes_never_suspected_long_run(self):
        sim, _network, _processes, detectors = build(period=5.0, timeout=25.0)
        sim.run(until=2000.0)
        assert all(not detector.suspected() for detector in detectors)
