"""Unit tests for the heartbeat failure detector and its fabric."""

import pytest

from repro import build_system
from repro.failure_detectors.heartbeat import (
    HeartbeatConfig,
    HeartbeatFailureDetector,
    HeartbeatFailureDetectorFabric,
)
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.process import SimProcess


def build(n=3, period=10.0, timeout=30.0):
    sim = Simulator()
    network = Network(sim, NetworkConfig(n=n))
    processes = [SimProcess(sim, network, pid) for pid in range(n)]
    detectors = [
        HeartbeatFailureDetector(process, HeartbeatConfig(period=period, timeout=timeout))
        for process in processes
    ]
    for process in processes:
        process.start()
    return sim, network, processes, detectors


class TestHeartbeatConfig:
    def test_rejects_non_positive_period(self):
        with pytest.raises(ValueError):
            HeartbeatConfig(period=0.0)

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ValueError):
            HeartbeatConfig(timeout=0.0)

    def test_check_interval_defaults_to_period(self):
        config = HeartbeatConfig(period=7.0, timeout=20.0)
        assert config.effective_check_interval == 7.0
        explicit = HeartbeatConfig(period=7.0, timeout=20.0, check_interval=3.0)
        assert explicit.effective_check_interval == 3.0


class TestHeartbeatDetector:
    def test_no_suspicions_without_crash(self):
        sim, _network, _processes, detectors = build()
        sim.run(until=500.0)
        for detector in detectors:
            assert detector.suspected() == set()

    def test_crashed_process_eventually_suspected(self):
        sim, _network, processes, detectors = build()
        sim.schedule(100.0, processes[2].crash)
        sim.run(until=200.0)
        assert detectors[0].is_suspected(2)
        assert detectors[1].is_suspected(2)

    def test_detection_latency_bounded_by_timeout_plus_period(self):
        sim, _network, processes, detectors = build(period=10.0, timeout=30.0)
        detection = {}

        def listener(pid, suspected):
            if suspected and pid not in detection:
                detection[pid] = sim.now

        detectors[0].add_listener(listener)
        sim.schedule(100.0, processes[1].crash)
        sim.run(until=300.0)
        assert 1 in detection
        assert detection[1] - 100.0 <= 30.0 + 2 * 10.0 + 5.0

    def test_heartbeats_generate_network_traffic(self):
        sim, network, _processes, _detectors = build()
        sim.run(until=100.0)
        assert network.stats.multicasts_sent > 0

    def test_correct_processes_never_suspected_long_run(self):
        sim, _network, _processes, detectors = build(period=5.0, timeout=25.0)
        sim.run(until=2000.0)
        assert all(not detector.suspected() for detector in detectors)


def build_fabric(n=3, period=10.0, timeout=30.0):
    """A fabric wired through the fabric protocol (attach per process)."""
    sim = Simulator()
    network = Network(sim, NetworkConfig(n=n))
    config = HeartbeatConfig(period=period, timeout=timeout)
    fabric = HeartbeatFailureDetectorFabric(sim, network, config)
    processes = [SimProcess(sim, network, pid) for pid in range(n)]
    for process in processes:
        process.failure_detector = fabric.attach(process)
    for process in processes:
        process.start()
    fabric.start()
    return sim, network, processes, fabric


class TestHeartbeatFabric:
    def test_attach_creates_one_component_per_process(self):
        _sim, _network, processes, fabric = build_fabric()
        assert sorted(fabric.detectors()) == [0, 1, 2]
        for process in processes:
            assert fabric.detector(process.pid) is process.failure_detector
            assert process.has_component("heartbeat-fd")

    def test_double_attach_rejected(self):
        _sim, _network, processes, fabric = build_fabric()
        with pytest.raises(ValueError):
            fabric.attach(processes[0])

    def test_crash_suspected_then_recovery_restores_trust(self):
        """Recovery catch-up parity with the QoS fabric: a crash is
        suspected after the timeout, and a recovery earns trust back
        (here: as soon as heartbeats flow again)."""
        sim, _network, processes, fabric = build_fabric(period=10.0, timeout=30.0)
        transitions = []
        fabric.detector(0).add_listener(
            lambda pid, suspected: transitions.append((sim.now, pid, suspected))
        )
        sim.schedule(100.0, processes[2].crash)
        sim.run(until=250.0)
        assert fabric.detector(0).is_suspected(2)
        assert fabric.detector(1).is_suspected(2)

        sim.schedule_at(300.0, processes[2].recover)
        sim.run(until=500.0)
        assert not fabric.detector(0).is_suspected(2)
        assert not fabric.detector(1).is_suspected(2)
        # exactly one suspicion + one trust transition for p2 at p0
        assert [(pid, s) for _t, pid, s in transitions] == [(2, True), (2, False)]

    def test_recovered_process_gets_a_grace_period(self):
        """The recovered monitor's own clocks are re-armed: it does not
        instantly suspect every peer whose last heartbeat predates its
        downtime."""
        sim, _network, processes, fabric = build_fabric(period=10.0, timeout=30.0)
        sim.schedule(100.0, processes[2].crash)
        sim.schedule_at(400.0, processes[2].recover)
        sim.run(until=420.0)
        # p2 was down for 300 ms (> timeout) but trusts its peers right away.
        assert fabric.detector(2).suspected() == set()
        sim.run(until=600.0)
        assert fabric.detector(2).suspected() == set()

    def test_short_crash_goes_unnoticed(self):
        sim, _network, processes, fabric = build_fabric(period=10.0, timeout=50.0)
        events = []
        fabric.detector(0).add_listener(lambda pid, s: events.append((pid, s)))
        sim.schedule(100.0, processes[1].crash)
        sim.schedule_at(110.0, processes[1].recover)
        sim.run(until=400.0)
        assert events == []

    def test_suspect_permanently_sticks_even_for_live_targets(self):
        sim, _network, _processes, fabric = build_fabric()
        fabric.suspect_permanently(1)
        sim.run(until=500.0)
        # p1 is alive and heartbeating, but the forced window never expires.
        assert fabric.detector(0).is_suspected(1)
        assert fabric.detector(2).is_suspected(1)
        assert not fabric.detector(1).suspected()

    def test_suspect_during_window_ignores_heartbeats(self):
        sim, _network, _processes, fabric = build_fabric(period=10.0, timeout=30.0)
        fabric.suspect_during(0, start=100.0, duration=50.0, monitors=[1])
        sim.run(until=120.0)
        assert fabric.detector(1).is_suspected(0)  # heartbeats keep arriving
        assert not fabric.detector(2).is_suspected(0)  # only p1 was told
        sim.run(until=200.0)
        assert not fabric.detector(1).is_suspected(0)  # window over, trust back

    def test_suspect_during_rejects_negative_duration(self):
        _sim, _network, _processes, fabric = build_fabric()
        with pytest.raises(ValueError):
            fabric.suspect_during(0, start=10.0, duration=-1.0)

    def test_permanent_suspicion_survives_an_overlapping_window(self):
        """A suspect_permanently layered onto an active suspect_during window
        must not be wiped when the window's scheduled lift fires."""
        sim, _network, _processes, fabric = build_fabric()
        fabric.suspect_during(0, start=10.0, duration=100.0, monitors=[1])
        sim.schedule_at(50.0, fabric.suspect_permanently, 0)
        sim.run(until=500.0)
        assert fabric.detector(1).is_suspected(0)
        assert fabric.detector(2).is_suspected(0)

    def test_heartbeat_system_counts_fd_traffic(self):
        system = build_system(n=3, fd_kind="heartbeat", seed=1)
        system.run(until=200.0)
        qos_system = build_system(n=3, fd_kind="qos", seed=1)
        qos_system.run(until=200.0)
        # The message-based detector loads the network; the QoS model is free.
        assert system.message_stats()["messages_sent"] > qos_system.message_stats()["messages_sent"]
