"""Partition awareness of the clock-driven failure detector fabrics.

Clock-driven detectors (QoS, perfect) exchange no real messages, so a
partitioned link cannot starve them the way it starves heartbeats.  The
fabric therefore listens for partition changes: a blocked
``monitored -> monitor`` link looks exactly like a crash from the
monitor's side -- suspected one detection time after the cut, trusted
again one detection time after the heal -- while unblocked monitors keep
their view.  These tests pin that semantics and its interplay with the
crash path and with random QoS mistakes.
"""

import pytest

from repro.failure_detectors.qos import QoSConfig, QoSFailureDetectorFabric
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.rng import RandomStreams


def build_fabric(n=3, seed=1, scan_interval=None, **qos):
    sim = Simulator()
    network = Network(sim, NetworkConfig(n=n))
    for pid in range(n):
        network.attach(pid, lambda p, m: None)
    fabric = QoSFailureDetectorFabric(
        sim, network, RandomStreams(seed), QoSConfig(**qos), scan_interval=scan_interval
    )
    return sim, network, fabric


class TestPartitionSuspicion:
    def test_blocked_link_suspected_after_detection_time(self):
        sim, network, fabric = build_fabric(detection_time=25.0)
        fabric.start()
        # Monitor 0 stops hearing from 2; the reverse direction is fine.
        sim.schedule(10.0, network.block_links, [(2, 0)])
        sim.run(until=34.9)
        assert not fabric.detector(0).is_suspected(2)
        sim.run(until=35.0)
        assert fabric.detector(0).is_suspected(2)
        assert not fabric.detector(2).is_suspected(0)
        assert not fabric.detector(1).is_suspected(2)

    def test_cut_shorter_than_detection_time_goes_unnoticed(self):
        sim, network, fabric = build_fabric(detection_time=25.0)
        fabric.start()
        sim.schedule(10.0, network.block_links, [(2, 0)])
        sim.schedule(20.0, network.heal)
        sim.run(until=200.0)
        assert not fabric.detector(0).is_suspected(2)

    def test_symmetric_partition_suspects_across_sides_only(self):
        sim, network, fabric = build_fabric(detection_time=25.0)
        fabric.start()
        sim.schedule(10.0, network.partition, [(0, 1), (2,)])
        sim.run(until=50.0)
        assert fabric.detector(0).is_suspected(2)
        assert fabric.detector(1).is_suspected(2)
        assert fabric.detector(2).is_suspected(0)
        assert fabric.detector(2).is_suspected(1)
        assert not fabric.detector(0).is_suspected(1)
        assert not fabric.detector(1).is_suspected(0)

    def test_trust_restored_one_detection_time_after_heal(self):
        sim, network, fabric = build_fabric(detection_time=25.0)
        fabric.start()
        sim.schedule(10.0, network.block_links, [(2, 0)])
        sim.schedule(100.0, network.heal)
        sim.run(until=124.9)
        assert fabric.detector(0).is_suspected(2)
        sim.run(until=125.0)
        assert not fabric.detector(0).is_suspected(2)

    def test_replacing_the_mask_reschedules_per_pair(self):
        sim, network, fabric = build_fabric(detection_time=25.0)
        fabric.start()
        sim.schedule(10.0, network.block_links, [(2, 0)])
        # Before the first cut is detected, shift the partition to a
        # different link: the old pair must never become suspected.
        sim.schedule(20.0, network.block_links, [(1, 0)])
        sim.run(until=60.0)
        assert not fabric.detector(0).is_suspected(2)
        assert fabric.detector(0).is_suspected(1)


class TestPartitionCrashInterplay:
    def test_crash_path_owns_an_already_crashed_monitored(self):
        sim, network, fabric = build_fabric(detection_time=25.0)
        fabric.start()
        sim.schedule(5.0, network.crash, 2)
        sim.schedule(10.0, network.partition, [(0, 1), (2,)])
        sim.schedule(50.0, network.heal)
        sim.run(until=500.0)
        # Crashed processes stay suspected through partition and heal.
        assert fabric.detector(0).is_suspected(2)
        assert fabric.detector(1).is_suspected(2)

    def test_heal_owns_trust_after_recovery_while_partitioned(self):
        sim, network, fabric = build_fabric(detection_time=25.0)
        fabric.start()
        sim.schedule(5.0, network.crash, 2)
        sim.schedule(10.0, network.block_links, [(2, 0)])
        sim.schedule(50.0, network.recover, 2)
        sim.schedule(200.0, network.heal)
        sim.run(until=100.0)
        # Monitor 1 hears from the recovered process again...
        assert not fabric.detector(1).is_suspected(2)
        # ...but monitor 0's link is still cut: suspicion persists.
        assert fabric.detector(0).is_suspected(2)
        sim.run(until=224.9)
        assert fabric.detector(0).is_suspected(2)
        sim.run(until=225.0)
        assert not fabric.detector(0).is_suspected(2)

    def test_partition_detect_rearmed_when_recovery_unmasks_it(self):
        sim, network, fabric = build_fabric(detection_time=25.0)
        fabric.start()
        # The crash fires first, so the partition defers to the crash
        # path; when the process recovers with the link still cut, the
        # partition must take over and keep the pair suspected.
        sim.schedule(5.0, network.crash, 2)
        sim.schedule(10.0, network.block_links, [(2, 0)])
        sim.schedule(40.0, network.recover, 2)
        sim.run(until=500.0)
        assert fabric.detector(0).is_suspected(2)
        assert not fabric.detector(1).is_suspected(2)


class TestPartitionMistakeInterplay:
    def test_mistakes_cannot_lift_partition_suspicion(self):
        sim, network, fabric = build_fabric(
            detection_time=10.0,
            mistake_recurrence_time=40.0,
            mistake_duration=5.0,
        )
        fabric.start()
        sim.schedule(50.0, network.block_links, [(2, 0)])
        sim.schedule(1_000.0, network.heal)
        # A mistake window ending mid-partition must not clear the
        # partition suspicion: sample densely across the blocked window.
        detector = fabric.detector(0)
        for instant in range(61, 1_000, 7):
            sim.run(until=float(instant))
            assert detector.is_suspected(2), f"suspicion lost at t={instant}"
        sim.run(until=2_000.0)
        assert not detector.is_suspected(2)

    def test_mistakes_resume_after_heal(self):
        sim, network, fabric = build_fabric(
            detection_time=10.0,
            mistake_recurrence_time=200.0,
            mistake_duration=5.0,
        )
        fabric.start()
        sim.schedule(50.0, network.block_links, [(2, 0)])
        sim.schedule(100.0, network.heal)
        mistakes = []
        fabric.detector(0).add_listener(
            lambda pid, suspected: mistakes.append((sim.now, pid, suspected))
        )
        sim.run(until=20_000.0)
        # The pair keeps generating wrong suspicions after the heal.
        assert any(time > 110.0 and suspected for time, _pid, suspected in mistakes)


class TestBatchedScanPartitions:
    def test_partition_transitions_stay_exact_in_batch_mode(self):
        # Partition changes are rare, externally injected instants: they
        # bypass the quantized calendar (the suspect_during precedent).
        sim, network, fabric = build_fabric(detection_time=25.0, scan_interval=10.0)
        fabric.start()
        sim.schedule(12.0, network.block_links, [(2, 0)])
        sim.schedule(100.0, network.heal)
        sim.run(until=36.9)
        assert not fabric.detector(0).is_suspected(2)
        sim.run(until=37.0)
        assert fabric.detector(0).is_suspected(2)
        sim.run(until=124.9)
        assert fabric.detector(0).is_suspected(2)
        sim.run(until=125.0)
        assert not fabric.detector(0).is_suspected(2)
