"""Unit tests for the QoS failure detector model (T_D, T_MR, T_M)."""


import pytest

from repro.failure_detectors.qos import QoSConfig, QoSFailureDetectorFabric
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.rng import RandomStreams


def build_fabric(n=3, seed=1, **qos):
    sim = Simulator()
    network = Network(sim, NetworkConfig(n=n))
    for pid in range(n):
        network.attach(pid, lambda p, m: None)
    fabric = QoSFailureDetectorFabric(sim, network, RandomStreams(seed), QoSConfig(**qos))
    return sim, network, fabric


class TestQoSConfig:
    def test_defaults_produce_no_mistakes(self):
        config = QoSConfig()
        assert not config.generates_mistakes
        assert config.detection_time == 0.0

    def test_finite_recurrence_generates_mistakes(self):
        assert QoSConfig(mistake_recurrence_time=100.0).generates_mistakes

    def test_negative_detection_time_rejected(self):
        with pytest.raises(ValueError):
            QoSConfig(detection_time=-1.0)

    def test_zero_recurrence_rejected(self):
        with pytest.raises(ValueError):
            QoSConfig(mistake_recurrence_time=0.0)

    def test_negative_mistake_duration_rejected(self):
        with pytest.raises(ValueError):
            QoSConfig(mistake_duration=-5.0)


class TestCrashDetection:
    def test_crash_detected_after_detection_time(self):
        sim, network, fabric = build_fabric(detection_time=25.0)
        fabric.start()
        sim.schedule(10.0, network.crash, 2)
        sim.run(until=34.9)
        assert not fabric.detector(0).is_suspected(2)
        sim.run(until=100.0)
        assert fabric.detector(0).is_suspected(2)
        assert fabric.detector(1).is_suspected(2)

    def test_detection_time_zero_is_immediate(self):
        sim, network, fabric = build_fabric(detection_time=0.0)
        fabric.start()
        sim.schedule(10.0, network.crash, 1)
        sim.run(until=10.0)
        assert fabric.detector(0).is_suspected(1)

    def test_crashed_process_suspected_permanently(self):
        sim, network, fabric = build_fabric(detection_time=0.0, mistake_recurrence_time=5.0)
        fabric.start()
        network.crash(2)
        sim.run(until=500.0)
        assert fabric.detector(0).is_suspected(2)
        assert fabric.detector(1).is_suspected(2)

    def test_suspect_permanently_helper(self):
        sim, _network, fabric = build_fabric(detection_time=100.0)
        fabric.suspect_permanently(1)
        assert fabric.detector(0).is_suspected(1)
        assert fabric.detector(2).is_suspected(1)

    def test_suspect_permanently_with_delay(self):
        sim, _network, fabric = build_fabric()
        fabric.suspect_permanently(1, delay=50.0)
        assert not fabric.detector(0).is_suspected(1)
        sim.run(until=50.0)
        assert fabric.detector(0).is_suspected(1)


class TestWrongSuspicions:
    def test_no_mistakes_with_infinite_recurrence(self):
        sim, _network, fabric = build_fabric()
        fabric.start()
        sim.run(until=10_000.0)
        for pid in range(3):
            assert fabric.detector(pid).suspicion_events == 0

    def test_mistake_rate_roughly_matches_recurrence_time(self):
        sim, _network, fabric = build_fabric(
            n=2, mistake_recurrence_time=100.0, mistake_duration=0.0, seed=3
        )
        fabric.start()
        sim.run(until=100_000.0)
        events = fabric.detector(0).suspicion_events
        # Expect about 1000 mistakes; allow generous statistical slack.
        assert 700 < events < 1300

    def test_mistakes_have_requested_duration(self):
        sim, _network, fabric = build_fabric(
            n=2, mistake_recurrence_time=500.0, mistake_duration=50.0, seed=5
        )
        detector = fabric.detector(0)
        durations = []
        state = {}

        def listener(pid, suspected):
            if suspected:
                state[pid] = sim.now
            elif pid in state:
                durations.append(sim.now - state.pop(pid))

        detector.add_listener(listener)
        fabric.start()
        sim.run(until=200_000.0)
        assert durations, "expected some completed mistakes"
        mean = sum(durations) / len(durations)
        assert 30.0 < mean < 75.0

    def test_zero_duration_mistake_still_notifies(self):
        sim, _network, fabric = build_fabric(
            n=2, mistake_recurrence_time=50.0, mistake_duration=0.0, seed=7
        )
        events = []
        fabric.detector(0).add_listener(lambda pid, s: events.append((sim.now, pid, s)))
        fabric.start()
        sim.run(until=1000.0)
        assert events, "instantaneous mistakes must still fire listeners"
        # Every suspicion is immediately followed by a trust at the same time.
        suspicions = [e for e in events if e[2]]
        trusts = [e for e in events if not e[2]]
        assert len(suspicions) == len(trusts)
        assert not fabric.detector(0).is_suspected(1)

    def test_mistakes_stop_after_crash(self):
        sim, network, fabric = build_fabric(
            n=2, detection_time=0.0, mistake_recurrence_time=10.0, mistake_duration=5.0, seed=9
        )
        fabric.start()
        sim.schedule(100.0, network.crash, 1)
        sim.run(until=10_000.0)
        detector = fabric.detector(0)
        # Once crashed, the suspicion is permanent: no trust event afterwards.
        assert detector.is_suspected(1)

    def test_pairs_are_independent(self):
        sim, _network, fabric = build_fabric(
            n=3, mistake_recurrence_time=100.0, mistake_duration=0.0, seed=11
        )
        fabric.start()
        sim.run(until=20_000.0)
        counts = [fabric.detector(pid).suspicion_events for pid in range(3)]
        assert all(count > 0 for count in counts)
        assert len(set(counts)) > 1, "independent streams should not be identical"
