"""Unit tests for the perfect failure detector fabric."""

from repro.failure_detectors.perfect import PerfectFailureDetectorFabric
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig


def build(n=3, detection_time=0.0):
    sim = Simulator()
    network = Network(sim, NetworkConfig(n=n))
    for pid in range(n):
        network.attach(pid, lambda p, m: None)
    fabric = PerfectFailureDetectorFabric(sim, network, detection_time=detection_time)
    fabric.start()
    return sim, network, fabric


class TestPerfectFailureDetector:
    def test_never_suspects_correct_processes(self):
        sim, _network, fabric = build()
        sim.run(until=100_000.0)
        for pid in range(3):
            assert fabric.detector(pid).suspected() == set()

    def test_detects_crash(self):
        sim, network, fabric = build()
        sim.schedule(5.0, network.crash, 1)
        sim.run(until=10.0)
        assert fabric.detector(0).is_suspected(1)

    def test_detection_delay_respected(self):
        sim, network, fabric = build(detection_time=40.0)
        sim.schedule(5.0, network.crash, 1)
        sim.run(until=44.0)
        assert not fabric.detector(0).is_suspected(1)
        sim.run(until=45.0)
        assert fabric.detector(0).is_suspected(1)
