"""Unit tests for the perfect failure detector fabric."""

import pytest

from repro.failure_detectors.fabric import CrashDetectionFabric
from repro.failure_detectors.perfect import PerfectFailureDetectorFabric
from repro.failure_detectors.qos import QoSFailureDetectorFabric
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig


def build(n=3, detection_time=0.0):
    sim = Simulator()
    network = Network(sim, NetworkConfig(n=n))
    for pid in range(n):
        network.attach(pid, lambda p, m: None)
    fabric = PerfectFailureDetectorFabric(sim, network, detection_time=detection_time)
    fabric.start()
    return sim, network, fabric


class TestPerfectFailureDetector:
    def test_never_suspects_correct_processes(self):
        sim, _network, fabric = build()
        sim.run(until=100_000.0)
        for pid in range(3):
            assert fabric.detector(pid).suspected() == set()

    def test_detects_crash(self):
        sim, network, fabric = build()
        sim.schedule(5.0, network.crash, 1)
        sim.run(until=10.0)
        assert fabric.detector(0).is_suspected(1)

    def test_detection_delay_respected(self):
        sim, network, fabric = build(detection_time=40.0)
        sim.schedule(5.0, network.crash, 1)
        sim.run(until=44.0)
        assert not fabric.detector(0).is_suspected(1)
        sim.run(until=45.0)
        assert fabric.detector(0).is_suspected(1)

    def test_negative_detection_time_rejected(self):
        with pytest.raises(ValueError):
            build(detection_time=-1.0)


class TestPerfectIsNotQoS:
    """The base-class extraction: "perfect" shares the crash-detection base
    but cannot inherit QoS mistake behaviour by accident."""

    def test_shares_the_crash_detection_base(self):
        _sim, _network, fabric = build()
        assert isinstance(fabric, CrashDetectionFabric)

    def test_is_not_a_qos_fabric_subclass(self):
        _sim, _network, fabric = build()
        assert not isinstance(fabric, QoSFailureDetectorFabric)
        assert not issubclass(PerfectFailureDetectorFabric, QoSFailureDetectorFabric)

    def test_has_no_mistake_machinery(self):
        _sim, _network, fabric = build()
        for attribute in ("_schedule_next_mistake", "_mistake_begins", "_pending"):
            assert not hasattr(fabric, attribute)


class TestPerfectRecovery:
    def test_short_crash_goes_unnoticed(self):
        sim, network, fabric = build(detection_time=40.0)
        sim.schedule(5.0, network.crash, 1)
        sim.schedule(10.0, network.recover, 1)
        sim.run(until=200.0)
        assert not fabric.detector(0).is_suspected(1)

    def test_trust_restored_one_detection_time_after_recovery(self):
        """Recovery catch-up parity with the QoS fabric."""
        sim, network, fabric = build(detection_time=10.0)
        sim.schedule(5.0, network.crash, 1)
        sim.run(until=20.0)
        assert fabric.detector(0).is_suspected(1)
        sim.schedule_at(50.0, network.recover, 1)
        sim.run(until=59.0)
        assert fabric.detector(0).is_suspected(1)  # not yet: T_D after recovery
        sim.run(until=61.0)
        assert not fabric.detector(0).is_suspected(1)

    def test_suspect_during_forces_a_window(self):
        sim, _network, fabric = build()
        fabric.suspect_during(0, start=10.0, duration=5.0, monitors=[1])
        sim.run(until=12.0)
        assert fabric.detector(1).is_suspected(0)
        sim.run(until=20.0)
        assert not fabric.detector(1).is_suspected(0)

    def test_suspect_permanently_marks_everyone(self):
        sim, _network, fabric = build()
        fabric.suspect_permanently(2)
        sim.run(until=1.0)
        assert fabric.detector(0).is_suspected(2)
        assert fabric.detector(1).is_suspected(2)
