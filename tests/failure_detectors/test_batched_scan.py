"""Tests for the batched-scan failure detector mode (``fd_scan_interval``).

Batch mode replaces O(n^2) per-pair timer events with one fabric-local
calendar drained by a single armed scan event.  It is *quantized*, not
bit-identical: every transition fires at the first multiple of the scan
interval at or after its exact due time.  These tests pin the semantics
(quantization, O(1) generation-based cancellation, trust bookkeeping,
mistake generation) and that the full stacks stay safe on top of it.
"""

import pytest

from repro import QoSConfig, SystemConfig, build_system
from repro.failure_detectors.qos import QoSFailureDetectorFabric
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.rng import RandomStreams
from tests.conftest import assert_no_duplicates, assert_prefix_consistent, poisson_broadcasts


def build_fabric(n=3, seed=1, scan_interval=10.0, **qos):
    sim = Simulator()
    network = Network(sim, NetworkConfig(n=n))
    for pid in range(n):
        network.attach(pid, lambda p, m: None)
    fabric = QoSFailureDetectorFabric(
        sim, network, RandomStreams(seed), QoSConfig(**qos), scan_interval=scan_interval
    )
    return sim, network, fabric


def suspicion_trace(fabric):
    """Record every (time, monitor, pid, suspected) transition of the fabric."""
    trace = []
    sim = fabric._sim
    for monitor, detector in fabric.detectors().items():
        detector.add_listener(
            lambda pid, suspected, monitor=monitor: trace.append(
                (sim.now, monitor, pid, suspected)
            )
        )
    return trace


class TestScanIntervalValidation:
    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_scan_interval_rejected(self, bad):
        with pytest.raises(ValueError):
            build_fabric(scan_interval=bad)

    @pytest.mark.parametrize("bad", [0.0, -2.5])
    def test_nonpositive_system_config_rejected(self, bad):
        with pytest.raises(ValueError):
            SystemConfig(n=3, fd_scan_interval=bad)

    def test_none_means_exact_mode(self):
        sim, _network, fabric = build_fabric(scan_interval=None)
        assert fabric.scan_interval is None

    def test_scan_interval_exposed(self):
        _sim, _network, fabric = build_fabric(scan_interval=2.5)
        assert fabric.scan_interval == 2.5


class TestBatchedCrashDetection:
    def test_detection_lands_on_the_next_tick(self):
        # Crash at 10 with T_D = 25 is due at 35; on a 10-tick grid the
        # suspicion fires at 40, not 35.
        sim, network, fabric = build_fabric(detection_time=25.0, scan_interval=10.0)
        fabric.start()
        sim.schedule(10.0, network.crash, 2)
        sim.run(until=39.9)
        assert not fabric.detector(0).is_suspected(2)
        sim.run(until=40.0)
        assert fabric.detector(0).is_suspected(2)
        assert fabric.detector(1).is_suspected(2)

    def test_due_time_on_the_grid_is_not_delayed(self):
        # Crash at 10 with T_D = 30 is due exactly at the 40 tick.
        sim, network, fabric = build_fabric(detection_time=30.0, scan_interval=10.0)
        fabric.start()
        sim.schedule(10.0, network.crash, 2)
        sim.run(until=40.0)
        assert fabric.detector(0).is_suspected(2)

    def test_recovery_before_detection_cancels_it(self):
        # Generation-based cancellation: the calendar entry stays on the
        # heap but must be dead when the scan reaches it.
        sim, network, fabric = build_fabric(detection_time=25.0, scan_interval=10.0)
        fabric.start()
        sim.schedule(10.0, network.crash, 2)
        sim.schedule(20.0, network.recover, 2)
        sim.run(until=200.0)
        assert not fabric.detector(0).is_suspected(2)
        assert not fabric.detector(1).is_suspected(2)

    def test_one_scan_event_replaces_per_pair_timers(self):
        # Exact mode schedules one detection event per monitor after a
        # crash; batch mode arms exactly one scan event however many pairs
        # become due.
        sim, network, fabric = build_fabric(n=10, detection_time=25.0, scan_interval=10.0)
        fabric.start()
        network.crash(0)
        assert sim.pending_events == 1

    def test_transitions_only_happen_on_grid_ticks(self):
        sim, network, fabric = build_fabric(
            n=4, detection_time=7.3, scan_interval=2.0, seed=5
        )
        trace = suspicion_trace(fabric)
        fabric.start()
        sim.schedule(3.1, network.crash, 1)
        sim.schedule(29.9, network.recover, 1)
        sim.run(until=300.0)
        assert trace, "expected suspicion activity"
        for time, _monitor, _pid, _suspected in trace:
            ticks = time / 2.0
            assert ticks == int(ticks), f"transition off the scan grid at {time}"


class TestBatchedTrustRestoration:
    def test_trust_restored_one_quantized_detection_time_after_recovery(self):
        sim, network, fabric = build_fabric(detection_time=25.0, scan_interval=10.0)
        fabric.start()
        sim.schedule(10.0, network.crash, 2)
        sim.schedule(100.0, network.recover, 2)
        sim.run(until=129.9)
        assert fabric.detector(0).is_suspected(2)
        # Due at 125, quantized to 130.
        sim.run(until=130.0)
        assert not fabric.detector(0).is_suspected(2)

    def test_recrash_cancels_pending_trust(self):
        sim, network, fabric = build_fabric(detection_time=25.0, scan_interval=10.0)
        fabric.start()
        sim.schedule(10.0, network.crash, 2)
        sim.schedule(100.0, network.recover, 2)
        sim.schedule(121.0, network.crash, 2)  # before the 130 trust tick
        sim.run(until=500.0)
        assert fabric.detector(0).is_suspected(2)

    def test_trust_pending_bookkeeping(self):
        sim, network, fabric = build_fabric(detection_time=25.0, scan_interval=10.0)
        fabric.start()
        sim.schedule(10.0, network.crash, 2)
        sim.schedule(100.0, network.recover, 2)
        sim.run(until=120.0)
        assert fabric._trust_pending(0, 2)
        sim.run(until=130.0)
        assert not fabric._trust_pending(0, 2)


class TestBatchedMistakes:
    def test_mistakes_are_generated_and_corrected(self):
        sim, _network, fabric = build_fabric(
            mistake_recurrence_time=50.0,
            mistake_duration=5.0,
            scan_interval=1.0,
            seed=3,
        )
        fabric.start()
        sim.run(until=2_000.0)
        for pid in range(3):
            detector = fabric.detector(pid)
            assert detector.suspicion_events > 0
            assert detector.trust_events > 0

    def test_crash_stops_mistakes_for_the_pair(self):
        sim, network, fabric = build_fabric(
            detection_time=0.0,
            mistake_recurrence_time=20.0,
            mistake_duration=2.0,
            scan_interval=1.0,
            seed=7,
        )
        fabric.start()
        network.crash(2)
        sim.run(until=1_000.0)
        # The crashed process stays permanently suspected: the mistake
        # machinery must never "correct" a real crash.
        assert fabric.detector(0).is_suspected(2)
        assert fabric.detector(1).is_suspected(2)

    def test_instantaneous_mistakes_still_flip_listeners(self):
        sim, _network, fabric = build_fabric(
            mistake_recurrence_time=30.0,
            mistake_duration=0.0,
            scan_interval=1.0,
            seed=9,
        )
        trace = suspicion_trace(fabric)
        fabric.start()
        sim.run(until=1_000.0)
        flips = [entry for entry in trace if entry[1] == 0]
        assert any(suspected for _t, _m, _p, suspected in flips)
        assert any(not suspected for _t, _m, _p, suspected in flips)
        assert not fabric.detector(0).suspected()


class TestStacksOnBatchedScan:
    def test_safety_under_suspicion_storm(self, algorithm):
        config = SystemConfig(
            n=3,
            stack=algorithm,
            seed=79,
            fd=QoSConfig(mistake_recurrence_time=120.0, mistake_duration=10.0),
            fd_scan_interval=1.0,
        )
        system = build_system(config)
        assert system.fd_fabric.scan_interval == 1.0
        system.start()
        broadcasts = poisson_broadcasts(30, 0.02, senders=[0, 1, 2], seed=13)
        for time, sender, payload in broadcasts:
            system.broadcast_at(time, sender, payload)
        system.run(until=120_000.0, max_events=3_000_000)
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert_no_duplicates(sequences)
        sent = {payload for _t, _s, payload in broadcasts}
        for pid in range(3):
            assert {p for _b, p in system.abcast(pid).delivered} == sent

    def test_safety_with_crash_and_recovery(self, algorithm):
        config = SystemConfig(
            n=5,
            stack=algorithm,
            seed=83,
            fd=QoSConfig(
                detection_time=25.0,
                mistake_recurrence_time=400.0,
                mistake_duration=20.0,
            ),
            fd_scan_interval=1.0,
        )
        system = build_system(config)
        system.start()
        broadcasts = poisson_broadcasts(25, 0.02, senders=[1, 2, 3], seed=17)
        for time, sender, payload in broadcasts:
            system.broadcast_at(time, sender, payload)
        system.crash_at(250.0, 0)
        system.run(until=120_000.0, max_events=3_000_000)
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert_no_duplicates(sequences)
        for pid in (1, 2, 3, 4):
            assert len(sequences[pid]) == 25

    def test_batch_mode_changes_event_counts_but_not_safety(self):
        # The whole point: fewer events, same delivered payloads.
        def run(scan_interval):
            config = SystemConfig(
                n=5,
                stack="fd",
                seed=91,
                fd=QoSConfig(mistake_recurrence_time=60.0, mistake_duration=5.0),
                fd_scan_interval=scan_interval,
            )
            system = build_system(config)
            system.start()
            for time, sender, payload in poisson_broadcasts(
                20, 0.02, senders=[0, 1, 2, 3, 4], seed=23
            ):
                system.broadcast_at(time, sender, payload)
            system.run(until=60_000.0, max_events=3_000_000)
            return system

        exact = run(None)
        batched = run(1.0)
        assert batched.sim.events_processed < exact.sim.events_processed
        for pid in range(5):
            assert [p for _b, p in batched.abcast(pid).delivered] == [
                p for _b, p in exact.abcast(pid).delivered
            ]
