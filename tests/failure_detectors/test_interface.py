"""Unit tests for the failure detector interface."""

from repro.failure_detectors.interface import FailureDetector, SuspicionLog


class TestFailureDetector:
    def test_monitors_everyone_but_owner(self):
        detector = FailureDetector(1, range(4))
        assert detector.monitored == {0, 2, 3}

    def test_initially_trusts_everyone(self):
        detector = FailureDetector(0, range(3))
        assert detector.suspected() == set()
        assert detector.trusted() == {1, 2}

    def test_force_suspect_and_trust(self):
        detector = FailureDetector(0, range(3))
        detector.force_suspect(1)
        assert detector.is_suspected(1)
        detector.force_trust(1)
        assert not detector.is_suspected(1)

    def test_listeners_notified_on_change_only(self):
        detector = FailureDetector(0, range(3))
        events = []
        detector.add_listener(lambda pid, suspected: events.append((pid, suspected)))
        detector.force_suspect(1)
        detector.force_suspect(1)  # no change, no event
        detector.force_trust(1)
        assert events == [(1, True), (1, False)]

    def test_listener_removal(self):
        detector = FailureDetector(0, range(3))
        events = []
        listener = lambda pid, suspected: events.append(pid)
        detector.add_listener(listener)
        detector.remove_listener(listener)
        detector.remove_listener(listener)  # idempotent
        detector.force_suspect(1)
        assert events == []

    def test_owner_never_suspected(self):
        detector = FailureDetector(0, range(3))
        detector.force_suspect(0)
        assert not detector.is_suspected(0)

    def test_unmonitored_process_ignored(self):
        detector = FailureDetector(0, [1])
        detector.force_suspect(5)
        assert detector.suspected() == set()

    def test_event_counters(self):
        detector = FailureDetector(0, range(3))
        detector.force_suspect(1)
        detector.force_trust(1)
        detector.force_suspect(2)
        assert detector.suspicion_events == 2
        assert detector.trust_events == 1


class TestSuspicionLog:
    def test_records_transitions(self):
        log = SuspicionLog()
        log.record(1.0, 2, True)
        log.record(5.0, 2, False)
        log.record(3.0, 1, True)
        assert log.transitions_for(2) == [(1.0, 2, True), (5.0, 2, False)]

    def test_mistake_durations(self):
        log = SuspicionLog()
        log.record(1.0, 2, True)
        log.record(4.0, 2, False)
        log.record(10.0, 2, True)
        log.record(12.5, 2, False)
        assert log.mistake_durations(2) == [3.0, 2.5]

    def test_open_mistake_not_counted(self):
        log = SuspicionLog()
        log.record(1.0, 2, True)
        assert log.mistake_durations(2) == []
