"""Unit tests for the replicated state machine substrate."""

import pytest

from repro.replication.state_machine import Command, KeyValueStore


class TestKeyValueStore:
    def test_put_and_get(self):
        store = KeyValueStore()
        assert store.apply(Command("put", "a", 1)) == ("ok", "a")
        assert store.apply(Command("get", "a")) == ("value", 1)

    def test_get_missing_key(self):
        assert KeyValueStore().apply(Command("get", "missing")) == ("value", None)

    def test_delete(self):
        store = KeyValueStore()
        store.apply(Command("put", "a", 1))
        assert store.apply(Command("delete", "a")) == ("deleted", True)
        assert store.apply(Command("delete", "a")) == ("deleted", False)

    def test_increment_from_zero(self):
        store = KeyValueStore()
        assert store.apply(Command("increment", "counter")) == ("value", 1)
        assert store.apply(Command("increment", "counter", 5)) == ("value", 6)

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            KeyValueStore().apply(Command("explode", "a"))

    def test_applied_counter(self):
        store = KeyValueStore()
        for i in range(4):
            store.apply(Command("put", f"k{i}", i))
        assert store.applied == 4

    def test_snapshot_is_sorted_and_comparable(self):
        a, b = KeyValueStore(), KeyValueStore()
        a.apply(Command("put", "x", 1))
        a.apply(Command("put", "y", 2))
        b.apply(Command("put", "y", 2))
        b.apply(Command("put", "x", 1))
        assert a.snapshot() == b.snapshot() == (("x", 1), ("y", 2))

    def test_determinism_same_commands_same_state(self):
        commands = [Command("put", "k", i) for i in range(10)] + [
            Command("increment", "c") for _ in range(5)
        ]
        a, b = KeyValueStore(), KeyValueStore()
        for command in commands:
            a.apply(command)
            b.apply(command)
        assert a.snapshot() == b.snapshot()

    def test_direct_get_helper(self):
        store = KeyValueStore()
        store.apply(Command("put", "a", "v"))
        assert store.get("a") == "v"
        assert store.get("zzz", "default") == "default"
