"""Tests for the replicated service (active replication over atomic broadcast)."""


from repro import QoSConfig, SystemConfig, build_system
from repro.replication.service import ReplicatedService
from repro.replication.state_machine import Command


def make_service(algorithm="fd", n=3, seed=51, **overrides):
    system = build_system(SystemConfig(n=n, stack=algorithm, seed=seed, **overrides))
    service = ReplicatedService(system)
    system.start()
    return system, service


class TestReplicatedService:
    def test_command_applied_on_all_replicas(self, algorithm):
        system, service = make_service(algorithm)
        service.submit_at(1.0, 0, Command("put", "x", 42, client=1, request_id=1))
        system.run(until=200.0)
        for pid in range(3):
            assert service.replicas[pid].get("x") == 42

    def test_client_gets_reply_and_response_time(self, algorithm):
        system, service = make_service(algorithm)
        service.submit_at(1.0, 1, Command("put", "x", 1, client=7, request_id=1))
        system.run(until=200.0)
        (request,) = service.requests.values()
        assert request.reply == ("ok", "x")
        assert request.response_time is not None and request.response_time > 0

    def test_replicas_apply_in_same_order(self, algorithm):
        system, service = make_service(algorithm)
        for i in range(10):
            service.submit_at(
                1.0 + i * 0.7, i % 3, Command("increment", "counter", client=i, request_id=i)
            )
        system.run(until=2000.0)
        assert service.replicas_consistent()
        states = service.replica_states()
        assert len(set(states.values())) == 1
        assert service.replicas[0].get("counter") == 10

    def test_consistency_survives_a_crash(self, algorithm):
        system, service = make_service(algorithm, fd=QoSConfig(detection_time=10.0))
        for i in range(8):
            service.submit_at(1.0 + 6 * i, 1 + i % 2, Command("put", f"k{i}", i))
        system.crash_at(20.0, 0)
        system.run(until=5000.0)
        assert service.replicas_consistent()
        # The surviving replicas executed every request.
        assert service.replicas[1].snapshot() == service.replicas[2].snapshot()
        assert len(service.applied_log[1]) == 8

    def test_processing_time_added_to_response(self):
        system, service_fast = make_service("fd", seed=52)
        service_slow = ReplicatedService(system, processing_time=5.0)
        # Only checking the accounting: both services observe the same deliveries.
        service_fast.submit_at(1.0, 0, Command("put", "x", 1))
        system.run(until=200.0)
        (fast_request,) = service_fast.requests.values()
        assert fast_request.response_time > 0

    def test_response_times_listing(self, algorithm):
        system, service = make_service(algorithm)
        for i in range(5):
            service.submit_at(1.0 + i, 0, Command("put", f"k{i}", i))
        system.run(until=500.0)
        times = service.response_times()
        assert len(times) == 5
        assert all(t > 0 for t in times)

    def test_non_command_payloads_ignored(self, algorithm):
        system, service = make_service(algorithm)
        system.broadcast_at(1.0, 0, "not-a-command")
        system.run(until=100.0)
        assert service.applied_log[0] == []
