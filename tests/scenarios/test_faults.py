"""Tests for the declarative fault-schedule engine."""

import pytest

from repro import SystemConfig, build_system
from repro.scenarios.faults import (
    CorrelatedCrash,
    CrashAt,
    DegradeAt,
    DegradeLinkAt,
    FaultSchedule,
    HealAt,
    PartitionAt,
    PoissonChurn,
    RecoverAt,
    RestoreAt,
    SuspectDuring,
)


def make_system(n=3, algorithm="fd", seed=1, **overrides):
    return build_system(SystemConfig(n=n, stack=algorithm, seed=seed, **overrides))


class TestEventValidation:
    def test_recovery_cannot_predate_the_run(self):
        with pytest.raises(ValueError):
            RecoverAt(-1.0, 0)

    def test_correlated_crash_rejects_duplicates(self):
        with pytest.raises(ValueError):
            CorrelatedCrash(10.0, (1, 1))

    def test_correlated_crash_rejects_empty_group(self):
        with pytest.raises(ValueError):
            CorrelatedCrash(10.0, ())

    def test_suspect_during_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            SuspectDuring(start=5.0, duration=-1.0, target=0)

    def test_churn_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PoissonChurn(rate=0.0, mean_downtime=10.0, until=100.0)
        with pytest.raises(ValueError):
            PoissonChurn(rate=1.0, mean_downtime=0.0, until=100.0)
        with pytest.raises(ValueError):
            PoissonChurn(rate=1.0, mean_downtime=10.0, until=0.0)


class TestScheduleCompilation:
    def test_pre_crashed_applies_before_the_run(self):
        system = make_system()
        FaultSchedule.pre_crashed([2]).apply(system)
        assert system.network.is_crashed(2)
        assert system.fd_fabric.detector(0).is_suspected(2)
        assert system.correct_processes() == [0, 1]

    def test_timed_crash_and_recovery_fire_in_order(self):
        system = make_system()
        FaultSchedule().crash(10.0, 1).recover(25.0, 1).apply(system)
        assert not system.network.is_crashed(1)
        system.run(until=15.0)
        assert system.network.is_crashed(1)
        system.run(until=30.0)
        assert not system.network.is_crashed(1)

    def test_correlated_crash_takes_the_group_down_at_once(self):
        system = make_system(n=5)
        FaultSchedule([CorrelatedCrash(12.0, (3, 4))]).apply(system)
        system.run(until=12.0)
        assert system.network.crashed_processes() == {3, 4}

    def test_suspect_during_window(self):
        system = make_system()
        FaultSchedule([SuspectDuring(start=5.0, duration=10.0, target=2)]).apply(system)
        system.run(until=6.0)
        assert system.fd_fabric.detector(0).is_suspected(2)
        assert system.fd_fabric.detector(1).is_suspected(2)
        system.run(until=20.0)
        assert not system.fd_fabric.detector(0).is_suspected(2)

    def test_max_concurrent_crashes_accounts_for_recoveries(self):
        schedule = (
            FaultSchedule()
            .crash(10.0, 0)
            .recover(20.0, 0)
            .crash(20.0, 1)
            .recover(30.0, 1)
        )
        assert schedule.max_concurrent_crashes() == 1
        overlapping = FaultSchedule().crash(10.0, 0).crash(15.0, 1).recover(40.0, 0)
        assert overlapping.max_concurrent_crashes() == 2


class TestPoissonChurn:
    def test_expansion_is_deterministic_per_seed(self):
        churn = PoissonChurn(rate=5.0, mean_downtime=100.0, until=5000.0)
        events_a = churn.expand(make_system(seed=7))
        events_b = churn.expand(make_system(seed=7))
        events_c = churn.expand(make_system(seed=8))
        assert events_a == events_b
        assert events_a != events_c

    def test_validate_then_apply_sees_the_same_timeline(self):
        # Expansion is a pure function of the seed: repeated expansion on the
        # SAME system (validation followed by compilation) must not consume
        # shared random state and change the timeline.
        system = make_system(seed=7)
        churn = PoissonChurn(rate=5.0, mean_downtime=100.0, until=5000.0)
        schedule = FaultSchedule([churn])
        first = schedule.timeline(system)
        worst = schedule.max_concurrent_crashes(system)
        assert worst <= 1
        assert schedule.timeline(system) == first

    def test_expansion_pairs_crashes_with_recoveries(self):
        churn = PoissonChurn(rate=5.0, mean_downtime=100.0, until=5000.0)
        events = churn.expand(make_system(seed=3))
        crashes = [e for e in events if isinstance(e, CrashAt)]
        recoveries = [e for e in events if isinstance(e, RecoverAt)]
        assert crashes, "a 5/s rate over 5 s should produce crashes"
        assert len(crashes) == len(recoveries)

    def test_expansion_respects_the_crash_bound(self):
        for n in (3, 5, 7):
            system = make_system(n=n, seed=13)
            schedule = FaultSchedule(
                [PoissonChurn(rate=50.0, mean_downtime=500.0, until=3000.0)]
            )
            worst = schedule.max_concurrent_crashes(system)
            assert worst <= SystemConfig(n=n).max_tolerated_crashes()

    def test_churn_respects_static_crash_windows(self):
        # Compose churn with an explicit crash/recovery pair: the generator
        # must neither touch the statically-crashed process during its
        # window nor breach the concurrency bound together with it.
        for seed in range(1, 8):
            system = make_system(n=5, seed=seed)
            schedule = (
                FaultSchedule()
                .crash(100.0, 4)
                .recover(2000.0, 4)
                .add(PoissonChurn(rate=20.0, mean_downtime=300.0, until=3000.0))
            )
            worst = schedule.max_concurrent_crashes(system)
            assert worst <= SystemConfig(n=5).max_tolerated_crashes()
            generated = schedule.events[-1].expand(
                system, external_downtime=schedule._static_downtime()
            )
            for event in generated:
                if isinstance(event, CrashAt):
                    assert event.pid != 4 or not 100.0 <= event.time < 2000.0

    def test_schedule_executes_churn_on_the_system(self):
        system = make_system(n=5, seed=21)
        FaultSchedule(
            [PoissonChurn(rate=10.0, mean_downtime=50.0, until=2000.0)]
        ).apply(system)
        system.run(until=5000.0)
        # Every churned process is back up by the end of the window.
        assert system.correct_processes() == [0, 1, 2, 3, 4]


class TestLinkFaultEventValidation:
    def test_partition_needs_exactly_one_of_groups_or_links(self):
        with pytest.raises(ValueError):
            PartitionAt(10.0)
        with pytest.raises(ValueError):
            PartitionAt(10.0, groups=((0, 1), (2,)), links=((0, 2),))

    def test_partition_rejects_pid_in_two_groups(self):
        with pytest.raises(ValueError):
            PartitionAt(10.0, groups=((0, 1), (1, 2)))

    def test_partition_rejects_self_link(self):
        with pytest.raises(ValueError):
            PartitionAt(10.0, links=((1, 1),))

    def test_partition_and_heal_cannot_predate_the_run(self):
        with pytest.raises(ValueError):
            PartitionAt(-1.0, groups=((0,), (1,)))
        with pytest.raises(ValueError):
            HealAt(-1.0)

    def test_degradation_factor_must_be_at_least_one(self):
        with pytest.raises(ValueError):
            DegradeAt(10.0, 0, 0.5)
        DegradeAt(10.0, 0, 1.0)  # the identity degradation is allowed

    def test_degrade_and_restore_cannot_predate_the_run(self):
        with pytest.raises(ValueError):
            DegradeAt(-1.0, 0, 2.0)
        with pytest.raises(ValueError):
            RestoreAt(-1.0, 0)

    def test_gray_link_rejects_out_of_range_probabilities(self):
        with pytest.raises(ValueError):
            DegradeLinkAt(10.0, 0, 1, loss_probability=1.5)
        with pytest.raises(ValueError):
            DegradeLinkAt(10.0, 0, 1, duplicate_probability=-0.1)

    def test_gray_link_needs_distinct_endpoints(self):
        with pytest.raises(ValueError):
            DegradeLinkAt(10.0, 2, 2, loss_probability=0.5)

    def test_partition_transient_builder_validates(self):
        with pytest.raises(ValueError):
            FaultSchedule.partition_transient(2, 10.0, 5.0)
        with pytest.raises(ValueError):
            FaultSchedule.partition_transient(5, 10.0, 0.0)


class TestLinkFaultScheduleCompilation:
    def test_partition_and_heal_fire_in_order(self):
        system = make_system(n=3)
        FaultSchedule().partition(10.0, [(0, 1), (2,)]).heal(25.0).apply(system)
        assert not system.network.is_link_blocked(0, 2)
        system.run(until=15.0)
        assert system.network.is_link_blocked(0, 2)
        assert system.network.is_link_blocked(2, 0)
        assert not system.network.is_link_blocked(0, 1)
        system.run(until=30.0)
        assert not system.network.is_link_blocked(0, 2)

    def test_asymmetric_links_block_one_direction(self):
        system = make_system(n=3)
        FaultSchedule([PartitionAt(10.0, links=((0, 2),))]).apply(system)
        system.run(until=15.0)
        assert system.network.is_link_blocked(0, 2)
        assert not system.network.is_link_blocked(2, 0)

    def test_degrade_and_restore_scale_the_cpu(self):
        system = make_system(n=3)
        FaultSchedule().degrade(10.0, 1, 4.0).restore(20.0, 1).apply(system)
        assert system.network.cpu(1).rate_factor == 1.0
        system.run(until=15.0)
        assert system.network.cpu(1).rate_factor == 4.0
        system.run(until=25.0)
        assert system.network.cpu(1).rate_factor == 1.0

    def test_partition_transient_splits_off_the_minority(self):
        system = make_system(n=5)
        FaultSchedule.partition_transient(5, 10.0, 20.0).apply(system)
        system.run(until=15.0)
        # Minority {3, 4} is cut from the majority {0, 1, 2}, both ways.
        assert system.network.is_link_blocked(0, 3)
        assert system.network.is_link_blocked(4, 2)
        assert not system.network.is_link_blocked(3, 4)
        assert not system.network.is_link_blocked(0, 1)
        system.run(until=40.0)
        assert not system.network.is_link_blocked(0, 3)

    def test_gray_link_drops_frames_through_the_named_stream(self):
        system = make_system(n=3, seed=5)
        FaultSchedule([
            DegradeLinkAt(0.0, 0, 1, loss_probability=1.0),
        ]).apply(system)
        system.start()
        for time in (1.0, 5.0, 9.0):
            system.broadcast_at(time, 0, f"m-{time:g}")
        system.run(until=2_000.0)
        assert system.network.stats.dropped_lossy_link > 0


class TestEvenNViewMajorityLoss:
    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_staged_windows_reach_the_blocked_shape(self, n):
        schedule = FaultSchedule.view_majority_loss(n)
        suspicions = [e for e in schedule.events if isinstance(e, SuspectDuring)]
        crashes = [e for e in schedule.events if isinstance(e, CrashAt)]
        # Stage 1 suspects only the highest pid; stage 2 starts strictly
        # later and suspects the top (n-2)/2 of the intermediate odd view.
        stage1 = [e for e in suspicions if e.target == n - 1]
        assert len(stage1) == 1
        stage2 = [e for e in suspicions if e.target != n - 1]
        assert {e.target for e in stage2} == set(
            range((n - 1) - (n - 2) // 2, n - 1)
        )
        assert all(e.start > stage1[0].start for e in stage2)
        # Every window ends at the same instant, so the reformation
        # re-admits all wrongly suspected processes together.
        ends = {e.start + e.duration for e in suspicions}
        assert len(ends) == 1
        # The crash leaves one fewer alive member than the shrunken view's
        # majority, with the sequencer p0 alive.
        shrunken = n // 2
        assert {e.pid for e in crashes} == set(
            range(shrunken - (shrunken - shrunken // 2), shrunken)
        )
        assert 0 not in {e.pid for e in crashes}

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_odd_path_is_the_single_window_construction(self, n):
        schedule = FaultSchedule.view_majority_loss(n)
        suspicions = [e for e in schedule.events if isinstance(e, SuspectDuring)]
        assert {e.target for e in suspicions} == set(range(n - (n - 1) // 2, n))
        assert len({(e.start, e.duration) for e in suspicions}) == 1
