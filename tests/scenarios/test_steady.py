"""Tests for the steady-state scenario drivers (small workloads)."""

import pytest

from repro import SystemConfig
from repro.scenarios.steady import (
    run_crash_steady,
    run_normal_steady,
    run_suspicion_steady,
)


def config(algorithm="fd", n=3, seed=31):
    return SystemConfig(n=n, stack=algorithm, seed=seed)


class TestNormalSteady:
    def test_all_messages_delivered(self, algorithm):
        result = run_normal_steady(config(algorithm), throughput=100, num_messages=60)
        assert result.completed
        assert result.undelivered == 0
        assert len(result.latencies) == 60

    def test_latency_positive_and_bounded(self, algorithm):
        result = run_normal_steady(config(algorithm), throughput=50, num_messages=40)
        assert all(latency > 0 for latency in result.latencies)
        assert result.mean_latency < 100.0

    def test_fd_and_gm_have_identical_latency(self):
        fd = run_normal_steady(config("fd"), throughput=200, num_messages=80)
        gm = run_normal_steady(config("gm"), throughput=200, num_messages=80)
        assert fd.mean_latency == pytest.approx(gm.mean_latency, rel=1e-9)

    def test_latency_grows_with_throughput(self, algorithm):
        low = run_normal_steady(config(algorithm), throughput=10, num_messages=60)
        high = run_normal_steady(config(algorithm), throughput=500, num_messages=60)
        assert high.mean_latency > low.mean_latency

    def test_result_metadata(self):
        result = run_normal_steady(config(), throughput=100, num_messages=30)
        assert result.scenario == "normal-steady"
        assert result.n == 3
        assert result.throughput == 100
        assert result.events > 0


class TestCrashSteady:
    def test_latency_measured_with_crashed_processes(self, algorithm):
        result = run_crash_steady(
            config(algorithm), throughput=100, crashed=[2], num_messages=60
        )
        assert result.completed
        assert result.params["crashed"] == (2,)

    def test_too_many_crashes_rejected(self, algorithm):
        with pytest.raises(ValueError):
            run_crash_steady(config(algorithm), throughput=100, crashed=[1, 2])

    def test_n7_with_three_crashes(self, algorithm):
        result = run_crash_steady(
            config(algorithm, n=7), throughput=100, crashed=[4, 5, 6], num_messages=40
        )
        assert result.completed

    def test_crash_steady_not_slower_than_normal_at_high_load(self, algorithm):
        normal = run_normal_steady(config(algorithm), throughput=500, num_messages=80)
        crashed = run_crash_steady(
            config(algorithm), throughput=500, crashed=[2], num_messages=80
        )
        assert crashed.mean_latency <= normal.mean_latency * 1.1


class TestSuspicionSteady:
    def test_runs_with_wrong_suspicions(self, algorithm):
        result = run_suspicion_steady(
            config(algorithm),
            throughput=10,
            mistake_recurrence_time=500.0,
            mistake_duration=0.0,
            num_messages=40,
        )
        assert result.completed
        assert result.params["mistake_recurrence_time"] == 500.0

    def test_gm_degrades_more_than_fd_at_low_tmr(self):
        fd = run_suspicion_steady(
            config("fd"), throughput=10, mistake_recurrence_time=50.0, num_messages=50
        )
        gm = run_suspicion_steady(
            config("gm"), throughput=10, mistake_recurrence_time=50.0, num_messages=50
        )
        assert gm.mean_latency > fd.mean_latency

    def test_algorithms_converge_at_huge_tmr(self):
        fd = run_suspicion_steady(
            config("fd"), throughput=10, mistake_recurrence_time=1e6, num_messages=50
        )
        gm = run_suspicion_steady(
            config("gm"), throughput=10, mistake_recurrence_time=1e6, num_messages=50
        )
        assert gm.mean_latency == pytest.approx(fd.mean_latency, rel=0.05)

    def test_mistake_duration_hurts_gm(self):
        short = run_suspicion_steady(
            config("gm"),
            throughput=10,
            mistake_recurrence_time=1000.0,
            mistake_duration=1.0,
            num_messages=40,
        )
        long = run_suspicion_steady(
            config("gm"),
            throughput=10,
            mistake_recurrence_time=1000.0,
            mistake_duration=500.0,
            num_messages=40,
        )
        assert long.mean_latency > short.mean_latency
