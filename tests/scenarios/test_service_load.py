"""Tests for the service-load scenario and its campaign integration."""

import math

from repro import SystemConfig
from repro.campaigns.runner import CampaignRunner, execute_point
from repro.campaigns.spec import PointSpec, grid
from repro.scenarios import run_service_load
from repro.scenarios.faults import CrashAt, FaultSchedule, RecoverAt


class TestOpenLoop:
    def test_below_saturation_everything_completes(self, algorithm):
        result = run_service_load(
            SystemConfig(n=3, stack=algorithm, seed=81), 100.0, num_requests=60
        )
        assert result.scenario == "service-load"
        assert result.measured == 60
        assert result.undelivered == 0
        assert len(result.latencies) == 60
        assert result.completed
        assert result.params["replicas_consistent"]
        assert result.params["outcomes"]["shed"] == 0

    def test_percentiles_reported_and_ordered(self, algorithm):
        result = run_service_load(
            SystemConfig(n=3, stack=algorithm, seed=81), 200.0, num_requests=80
        )
        p50, p99, p999 = (
            result.params["p50"], result.params["p99"], result.params["p999"]
        )
        assert not math.isnan(p50)
        assert p50 <= p99 <= p999
        assert result.params["goodput"] > 0

    def test_overload_sheds_and_reports_reduced_goodput(self):
        result = run_service_load(
            SystemConfig(n=3, stack="fd", seed=81),
            4000.0,
            num_requests=150,
            max_inflight=16,
            max_queue=16,
        )
        assert result.params["outcomes"]["shed"] > 0
        assert result.params["goodput"] < 4000.0
        assert result.undelivered > 0

    def test_deterministic_per_seed(self, algorithm):
        def run():
            return run_service_load(
                SystemConfig(n=3, stack=algorithm, seed=83), 150.0, num_requests=40
            )

        first, second = run(), run()
        assert first.latencies == second.latencies
        assert first.duration == second.duration
        assert first.events == second.events


class TestClosedLoop:
    def test_closed_loop_completes_all_requests(self, algorithm):
        result = run_service_load(
            SystemConfig(n=3, stack=algorithm, seed=85),
            0.0,
            clients=5,
            think_time=10.0,
            num_requests=50,
        )
        assert result.undelivered == 0
        assert len(result.latencies) == 50
        assert result.params["clients"] == 5

    def test_local_consistency_mode(self):
        result = run_service_load(
            SystemConfig(n=3, stack="fd", seed=85),
            0.0,
            clients=4,
            think_time=5.0,
            num_requests=60,
            consistency="local",
        )
        assert result.params["outcomes"]["local_reads"] > 0
        assert result.undelivered == 0


class TestBatchingGain:
    def test_batching_doubles_saturation_throughput(self):
        # The acceptance criterion: >= 2x measured saturation-throughput
        # gain at equal n, from amortizing the ordering step over k
        # requests.  Offered load far above capacity in both runs.
        def goodput(max_batch):
            result = run_service_load(
                SystemConfig(
                    n=4, stack="fd", seed=87, max_batch=max_batch, max_delay=2.0
                ),
                8000.0,
                num_requests=250,
                max_inflight=128,
                max_queue=256,
            )
            return result.params["goodput"]

        assert goodput(8) / goodput(0) >= 2.0


class TestFaults:
    def test_crash_recover_mid_load(self, algorithm):
        from repro import QoSConfig

        faults = FaultSchedule([CrashAt(time=100.0, pid=0), RecoverAt(time=400.0, pid=0)])
        result = run_service_load(
            SystemConfig(
                n=4, stack=algorithm, seed=89, fd=QoSConfig(detection_time=10.0)
            ),
            120.0,
            num_requests=60,
            faults=faults,
        )
        assert result.params["replicas_consistent"]
        assert result.delivery_ratio > 0.9


class TestCampaignIntegration:
    def test_execute_point_dispatches_service_load(self):
        point = PointSpec(
            kind="service-load", stack="fd", seed=91, throughput=150.0, num_messages=30
        )
        record = execute_point(point)
        assert record["scenario"] == "service-load"
        assert len(record["latencies"]) == 30

    def test_grid_runs_across_stacks(self):
        campaign = grid(
            "service-load",
            stacks=("fd", "gm", "gm-reform"),
            throughputs=(100.0,),
            num_messages=20,
            max_batch=2,
            max_delay=2.0,
        )
        run = CampaignRunner().run(campaign)
        assert len(campaign.points()) == 3
        for point in campaign.points():
            assert point.max_batch == 2
            result = run.result(point)
            assert result.scenario == "service-load"
            assert len(result.latencies) == 20

    def test_closed_loop_grid_scoping(self):
        campaign = grid(
            "service-load",
            stacks=("fd",),
            throughputs=(50.0,),
            clients=4,
            think_time=10.0,
            consistency="local",
        )
        (point,) = campaign.points()
        assert point.clients == 4
        assert point.consistency == "local"
        steady = grid(
            "normal-steady", stacks=("fd",), throughputs=(50.0,), clients=4,
            think_time=10.0, consistency="local",
        )
        (steady_point,) = steady.points()
        assert steady_point.clients == 0
        assert steady_point.consistency == "ordered"

    def test_batching_dimension_is_unscoped(self):
        campaign = grid(
            "normal-steady", stacks=("fd",), throughputs=(50.0,), max_batch=4
        )
        (point,) = campaign.points()
        assert point.max_batch == 4
        assert point.config().max_batch == 4
