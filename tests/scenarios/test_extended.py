"""Tests for the beyond-paper fault-schedule scenarios."""

import pytest

from repro import SystemConfig
from repro.scenarios.extended import (
    run_asymmetric_qos,
    run_churn_steady,
    run_correlated_crash,
    run_gray_degradation,
    run_partition_transient,
    run_wan_steady,
)
from repro.scenarios.steady import run_normal_steady


def config(algorithm="fd", n=5, seed=11):
    return SystemConfig(n=n, stack=algorithm, seed=seed)


class TestCorrelatedCrash:
    def test_measurement_spans_the_crash(self, algorithm):
        result = run_correlated_crash(
            config(algorithm), throughput=50, crashed=[3, 4], num_messages=60
        )
        assert result.scenario == "correlated-crash"
        assert result.completed
        assert result.params["crashed"] == (3, 4)
        assert result.params["crash_time"] > 0

    def test_crash_group_bound_enforced(self, algorithm):
        with pytest.raises(ValueError):
            run_correlated_crash(
                config(algorithm), throughput=50, crashed=[2, 3, 4], num_messages=20
            )
        with pytest.raises(ValueError):
            run_correlated_crash(config(algorithm), throughput=50, crashed=[])

    def test_explicit_crash_time_is_used(self, algorithm):
        result = run_correlated_crash(
            config(algorithm),
            throughput=50,
            crashed=[4],
            crash_time=123.0,
            num_messages=30,
        )
        assert result.params["crash_time"] == 123.0
        assert result.completed


class TestChurnSteady:
    def test_runs_to_completion_under_churn(self, algorithm):
        result = run_churn_steady(
            config(algorithm),
            throughput=50,
            churn_rate=2.0,
            mean_downtime=150.0,
            detection_time=10.0,
            num_messages=60,
        )
        assert result.scenario == "churn-steady"
        assert result.completed
        assert result.params["churn_rate"] == 2.0

    def test_churn_is_slower_than_fault_free(self, algorithm):
        normal = run_normal_steady(config(algorithm), throughput=50, num_messages=60)
        churned = run_churn_steady(
            config(algorithm),
            throughput=50,
            churn_rate=5.0,
            mean_downtime=300.0,
            detection_time=10.0,
            num_messages=60,
        )
        assert churned.mean_latency >= normal.mean_latency

    def test_determinism_per_seed(self, algorithm):
        kwargs = dict(
            throughput=50,
            churn_rate=2.0,
            mean_downtime=150.0,
            detection_time=10.0,
            num_messages=40,
        )
        first = run_churn_steady(config(algorithm), **kwargs)
        second = run_churn_steady(config(algorithm), **kwargs)
        assert first.latencies == second.latencies
        assert first.events == second.events


class TestAsymmetricQoS:
    def test_only_flaky_pair_degrades(self, algorithm):
        result = run_asymmetric_qos(
            config(algorithm),
            throughput=50,
            mistake_recurrence_time=200.0,
            mistake_duration=10.0,
            num_messages=60,
        )
        assert result.scenario == "asymmetric-qos"
        assert result.completed
        assert result.params["flaky_monitor"] == 1

    def test_flaky_pair_must_be_distinct(self, algorithm):
        with pytest.raises(ValueError):
            run_asymmetric_qos(
                config(algorithm),
                throughput=50,
                mistake_recurrence_time=200.0,
                flaky_monitor=1,
                flaky_target=1,
            )

    def test_gm_suffers_more_than_fd_from_a_flaky_observer(self):
        fd = run_asymmetric_qos(
            config("fd", n=3),
            throughput=10,
            mistake_recurrence_time=50.0,
            mistake_duration=5.0,
            num_messages=50,
        )
        gm = run_asymmetric_qos(
            config("gm", n=3),
            throughput=10,
            mistake_recurrence_time=50.0,
            mistake_duration=5.0,
            num_messages=50,
        )
        # One flaky observer of the sequencer forces view changes under GM,
        # while the FD algorithm only pays an occasional extra round.
        assert gm.mean_latency > fd.mean_latency


class TestPartitionTransient:
    def test_partition_bites_and_heals(self, algorithm):
        result = run_partition_transient(
            config(algorithm), throughput=50, partition_duration=500.0, num_messages=60
        )
        assert result.scenario == "partition-transient"
        assert result.params["minority"] == (3, 4)
        assert result.params["dropped_partitioned"] > 0
        assert result.params["script"]["stages"] == ["build", "measure", "verify"]
        assert "failed_stage" not in result.params["script"]

    def test_explicit_partition_start_is_used(self, algorithm):
        result = run_partition_transient(
            config(algorithm),
            throughput=50,
            partition_start=120.0,
            partition_duration=300.0,
            num_messages=40,
        )
        assert result.params["partition_start"] == 120.0
        assert result.params["partition_duration"] == 300.0

    def test_needs_three_processes(self, algorithm):
        with pytest.raises(ValueError):
            run_partition_transient(config(algorithm, n=2), throughput=50)

    def test_determinism_per_seed(self, algorithm):
        first = run_partition_transient(
            config(algorithm), throughput=50, partition_duration=400.0, num_messages=40
        )
        second = run_partition_transient(
            config(algorithm), throughput=50, partition_duration=400.0, num_messages=40
        )
        assert first.latencies == second.latencies
        assert first.events == second.events


class TestWanSteady:
    def test_wan_latency_dominates_the_lan_baseline(self, algorithm):
        lan = run_normal_steady(config(algorithm), throughput=50, num_messages=60)
        wan = run_wan_steady(config(algorithm), throughput=50, num_messages=60)
        assert wan.scenario == "wan-steady"
        assert wan.params["wan_profile"] == "wan-3dc"
        assert wan.params["dc_count"] == 3
        assert not wan.undelivered
        assert wan.mean_latency > lan.mean_latency + 10.0

    def test_wider_topology_is_slower(self, algorithm):
        near = run_wan_steady(config(algorithm), throughput=50, num_messages=40)
        far = run_wan_steady(
            config(algorithm), throughput=50, profile="wan-5dc", num_messages=40
        )
        assert far.params["max_wan_delay"] > near.params["max_wan_delay"]
        assert far.mean_latency > near.mean_latency

    def test_unknown_profile_rejected(self, algorithm):
        with pytest.raises(ValueError, match="unknown WAN profile"):
            run_wan_steady(config(algorithm), throughput=50, profile="wan-nope")


class TestGrayDegradation:
    def test_degradation_slows_the_run_then_restores(self, algorithm):
        healthy = run_normal_steady(config(algorithm), throughput=50, num_messages=60)
        gray = run_gray_degradation(
            config(algorithm),
            throughput=50,
            degrade_factor=8.0,
            degrade_duration=1_000.0,
            num_messages=60,
        )
        assert gray.scenario == "gray-degradation"
        assert gray.params["degraded_pid"] == 0
        assert gray.mean_latency > healthy.mean_latency
        assert "failed_stage" not in gray.params["script"]

    def test_lossy_links_drop_frames(self, algorithm):
        result = run_gray_degradation(
            config(algorithm),
            throughput=50,
            link_loss=0.3,
            degrade_duration=1_000.0,
            num_messages=40,
        )
        assert result.params["link_loss"] == 0.3
        assert result.params["dropped_lossy_link"] > 0

    def test_parameter_validation(self, algorithm):
        with pytest.raises(ValueError):
            run_gray_degradation(config(algorithm), throughput=50, degraded_pid=9)
        with pytest.raises(ValueError):
            run_gray_degradation(config(algorithm), throughput=50, degrade_factor=1.0)
        with pytest.raises(ValueError):
            run_gray_degradation(config(algorithm), throughput=50, link_loss=1.0)
