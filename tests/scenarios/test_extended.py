"""Tests for the beyond-paper fault-schedule scenarios."""

import pytest

from repro import SystemConfig
from repro.scenarios.extended import (
    run_asymmetric_qos,
    run_churn_steady,
    run_correlated_crash,
)
from repro.scenarios.steady import run_normal_steady


def config(algorithm="fd", n=5, seed=11):
    return SystemConfig(n=n, stack=algorithm, seed=seed)


class TestCorrelatedCrash:
    def test_measurement_spans_the_crash(self, algorithm):
        result = run_correlated_crash(
            config(algorithm), throughput=50, crashed=[3, 4], num_messages=60
        )
        assert result.scenario == "correlated-crash"
        assert result.completed
        assert result.params["crashed"] == (3, 4)
        assert result.params["crash_time"] > 0

    def test_crash_group_bound_enforced(self, algorithm):
        with pytest.raises(ValueError):
            run_correlated_crash(
                config(algorithm), throughput=50, crashed=[2, 3, 4], num_messages=20
            )
        with pytest.raises(ValueError):
            run_correlated_crash(config(algorithm), throughput=50, crashed=[])

    def test_explicit_crash_time_is_used(self, algorithm):
        result = run_correlated_crash(
            config(algorithm),
            throughput=50,
            crashed=[4],
            crash_time=123.0,
            num_messages=30,
        )
        assert result.params["crash_time"] == 123.0
        assert result.completed


class TestChurnSteady:
    def test_runs_to_completion_under_churn(self, algorithm):
        result = run_churn_steady(
            config(algorithm),
            throughput=50,
            churn_rate=2.0,
            mean_downtime=150.0,
            detection_time=10.0,
            num_messages=60,
        )
        assert result.scenario == "churn-steady"
        assert result.completed
        assert result.params["churn_rate"] == 2.0

    def test_churn_is_slower_than_fault_free(self, algorithm):
        normal = run_normal_steady(config(algorithm), throughput=50, num_messages=60)
        churned = run_churn_steady(
            config(algorithm),
            throughput=50,
            churn_rate=5.0,
            mean_downtime=300.0,
            detection_time=10.0,
            num_messages=60,
        )
        assert churned.mean_latency >= normal.mean_latency

    def test_determinism_per_seed(self, algorithm):
        kwargs = dict(
            throughput=50,
            churn_rate=2.0,
            mean_downtime=150.0,
            detection_time=10.0,
            num_messages=40,
        )
        first = run_churn_steady(config(algorithm), **kwargs)
        second = run_churn_steady(config(algorithm), **kwargs)
        assert first.latencies == second.latencies
        assert first.events == second.events


class TestAsymmetricQoS:
    def test_only_flaky_pair_degrades(self, algorithm):
        result = run_asymmetric_qos(
            config(algorithm),
            throughput=50,
            mistake_recurrence_time=200.0,
            mistake_duration=10.0,
            num_messages=60,
        )
        assert result.scenario == "asymmetric-qos"
        assert result.completed
        assert result.params["flaky_monitor"] == 1

    def test_flaky_pair_must_be_distinct(self, algorithm):
        with pytest.raises(ValueError):
            run_asymmetric_qos(
                config(algorithm),
                throughput=50,
                mistake_recurrence_time=200.0,
                flaky_monitor=1,
                flaky_target=1,
            )

    def test_gm_suffers_more_than_fd_from_a_flaky_observer(self):
        fd = run_asymmetric_qos(
            config("fd", n=3),
            throughput=10,
            mistake_recurrence_time=50.0,
            mistake_duration=5.0,
            num_messages=50,
        )
        gm = run_asymmetric_qos(
            config("gm", n=3),
            throughput=10,
            mistake_recurrence_time=50.0,
            mistake_duration=5.0,
            num_messages=50,
        )
        # One flaky observer of the sequencer forces view changes under GM,
        # while the FD algorithm only pays an occasional extra round.
        assert gm.mean_latency > fd.mean_latency
