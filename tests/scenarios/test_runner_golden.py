"""Golden-value tests: the ScenarioRunner reproduces the legacy drivers.

The values below were captured from the seed repository's hand-written
scenario drivers (``scenarios/steady.py`` / ``scenarios/transient.py``
before the fault-schedule refactor).  The refactored drivers must keep
construction order, listener registration order and random-stream usage
identical, so every number matches bit for bit.
"""

import hashlib
import json

import pytest

from repro import SystemConfig
from repro.scenarios.steady import (
    run_crash_steady,
    run_normal_steady,
    run_suspicion_steady,
)
from repro.scenarios.transient import run_crash_transient

#: (mean latency, undelivered, duration, events, sha256 prefix of latencies).
GOLDEN_STEADY = {
    ("normal-steady", "fd"): (11.413199718013795, 0, 768.821849452246, 1460, "2b0063a941aa1017"),
    ("normal-steady", "gm"): (11.413199718013795, 0, 768.821849452246, 1392, "2b0063a941aa1017"),
    ("crash-steady", "fd"): (9.627147225463041, 0, 751.7707303878062, 1281, "08872b3cb8dbe753"),
    ("crash-steady", "gm"): (9.627147225463041, 0, 751.7707303878062, 1030, "08872b3cb8dbe753"),
    ("suspicion-steady", "fd"): (8.88605195060407, 0, 5188.85601135372, 1162, "9cce3be47913a585"),
    ("suspicion-steady", "gm"): (12.393748769369768, 0, 5188.85601135372, 3574, "7107422ba56e637f"),
}

#: (latencies, failed runs, sender).
GOLDEN_TRANSIENT = {
    "fd": ([37.0, 25.0, 22.0], 0, 2),
    "gm": ([25.0, 25.0, 25.0], 0, 2),
}

GOLDEN_CRASH_N7 = (15.858900609538008, 0, 365.12432269626055, 1581, "6d5bdcea3e40f72a")

#: The third registered stack, captured from the pre-redesign (inline-wired)
#: seed drivers: the registry assembly must reproduce it bit for bit too.
GOLDEN_GM_NONUNIFORM = {
    "normal-steady": (2.720138110780536, 0, 762.821849452246, 715, "5f5c83989982481c"),
    "suspicion-steady": (4.8246781814549875, 0, 5182.85601135372, 3136, "98bdd4b319bb9120"),
}

#: Heartbeat / perfect failure detector variants, captured from the stack
#: registry as of PR 3 (before the reformation refactor threaded epochs
#: through the view identities): the whole registry matrix is frozen now,
#: not just the qos column.  crash-steady exercises real view changes on
#: the heartbeat fabric, pinning the GM view-change path per fd kind.
GOLDEN_VARIANTS = {
    ("normal-steady", "fd/heartbeat"): (16.12006560798542, 0, 769.821849452246, 2825, "012a1604291043ea"),
    ("normal-steady", "gm/heartbeat"): (16.12006560798542, 0, 769.821849452246, 2758, "012a1604291043ea"),
    ("normal-steady", "gm-nonuniform/heartbeat"): (3.5099322101313337, 0, 762.821849452246, 2086, "bce99586a6e51808"),
    ("normal-steady", "fd/perfect"): (11.413199718013795, 0, 768.821849452246, 1460, "2b0063a941aa1017"),
    ("normal-steady", "gm/perfect"): (11.413199718013795, 0, 768.821849452246, 1392, "2b0063a941aa1017"),
    ("normal-steady", "gm-nonuniform/perfect"): (2.720138110780536, 0, 762.821849452246, 715, "5f5c83989982481c"),
    ("crash-steady", "fd/heartbeat"): (11.395225719929488, 0, 756.0, 2189, "d7828db4504ce15a"),
    ("crash-steady", "gm/heartbeat"): (11.395225719929488, 0, 756.0, 1938, "d7828db4504ce15a"),
    ("crash-steady", "fd/perfect"): (9.627147225463041, 0, 751.7707303878062, 1281, "08872b3cb8dbe753"),
    ("crash-steady", "gm/perfect"): (9.627147225463041, 0, 751.7707303878062, 1030, "08872b3cb8dbe753"),
}

#: The reformation stack.  Failure-free runs are bit-identical to the plain
#: GM stack (the reformation path is completely inert without a stalled
#: view change); under wrong suspicions the *latencies* stay identical to
#: plain GM (same digest) and only the event count grows, by the armed
#: reformation timers that fire without triggering (no reformation happens).
GOLDEN_GM_REFORM = {
    "normal-steady": (11.413199718013795, 0, 768.821849452246, 1392, "2b0063a941aa1017"),
    "suspicion-steady": (12.393748769369768, 0, 5188.85601135372, 3727, "7107422ba56e637f"),
}


def latency_digest(latencies):
    return hashlib.sha256(json.dumps(latencies).encode()).hexdigest()[:16]


def observed(result):
    return (
        result.mean_latency,
        result.undelivered,
        result.duration,
        result.events,
        latency_digest(result.latencies),
    )


class TestGoldenSteady:
    def test_normal_steady_matches_seed_driver(self, algorithm):
        result = run_normal_steady(
            SystemConfig(n=3, stack=algorithm, seed=31), throughput=100, num_messages=60
        )
        assert observed(result) == GOLDEN_STEADY[("normal-steady", algorithm)]

    def test_crash_steady_matches_seed_driver(self, algorithm):
        result = run_crash_steady(
            SystemConfig(n=3, stack=algorithm, seed=31),
            throughput=100,
            crashed=[2],
            num_messages=60,
        )
        assert observed(result) == GOLDEN_STEADY[("crash-steady", algorithm)]

    def test_suspicion_steady_matches_seed_driver(self, algorithm):
        result = run_suspicion_steady(
            SystemConfig(n=3, stack=algorithm, seed=31),
            throughput=10,
            mistake_recurrence_time=500.0,
            mistake_duration=5.0,
            num_messages=40,
        )
        assert observed(result) == GOLDEN_STEADY[("suspicion-steady", algorithm)]

    def test_crash_steady_n7_matches_seed_driver(self):
        result = run_crash_steady(
            SystemConfig(n=7, stack="fd", seed=7),
            throughput=100,
            crashed=[4, 5, 6],
            num_messages=40,
        )
        assert observed(result) == GOLDEN_CRASH_N7

    def test_gm_nonuniform_matches_seed_driver(self):
        normal = run_normal_steady(
            SystemConfig(n=3, stack="gm-nonuniform", seed=31),
            throughput=100,
            num_messages=60,
        )
        assert observed(normal) == GOLDEN_GM_NONUNIFORM["normal-steady"]
        suspicion = run_suspicion_steady(
            SystemConfig(n=3, stack="gm-nonuniform", seed=31),
            throughput=10,
            mistake_recurrence_time=500.0,
            mistake_duration=5.0,
            num_messages=40,
        )
        assert observed(suspicion) == GOLDEN_GM_NONUNIFORM["suspicion-steady"]

    @pytest.mark.parametrize("kind,stack", sorted(GOLDEN_VARIANTS))
    def test_fd_variant_matches_captured_baseline(self, kind, stack):
        config = SystemConfig(n=3, stack=stack, seed=31)
        if kind == "normal-steady":
            result = run_normal_steady(config, throughput=100, num_messages=60)
        else:
            result = run_crash_steady(config, throughput=100, crashed=[2], num_messages=60)
        assert observed(result) == GOLDEN_VARIANTS[(kind, stack)]

    def test_gm_reform_matches_captured_baseline(self):
        normal = run_normal_steady(
            SystemConfig(n=3, stack="gm-reform", seed=31),
            throughput=100,
            num_messages=60,
        )
        assert observed(normal) == GOLDEN_GM_REFORM["normal-steady"]
        # Inert-reformation invariant: identical to plain GM bit for bit.
        assert observed(normal) == GOLDEN_STEADY[("normal-steady", "gm")]
        suspicion = run_suspicion_steady(
            SystemConfig(n=3, stack="gm-reform", seed=31),
            throughput=10,
            mistake_recurrence_time=500.0,
            mistake_duration=5.0,
            num_messages=40,
        )
        assert observed(suspicion) == GOLDEN_GM_REFORM["suspicion-steady"]
        # Same latencies as plain GM under wrong suspicions (only the event
        # count differs, by the armed-but-untriggered reformation timers).
        assert suspicion.latencies and latency_digest(suspicion.latencies) == (
            GOLDEN_STEADY[("suspicion-steady", "gm")][4]
        )

    def test_deprecated_algorithm_alias_reproduces_stack_results(self, algorithm):
        import warnings

        via_stack = run_normal_steady(
            SystemConfig(n=3, stack=algorithm, seed=31), throughput=100, num_messages=60
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_alias = run_normal_steady(
                SystemConfig(n=3, algorithm=algorithm, seed=31),
                throughput=100,
                num_messages=60,
            )
        assert observed(via_stack) == observed(via_alias)


class TestGoldenTransient:
    def test_crash_transient_matches_seed_driver(self, algorithm):
        result = run_crash_transient(
            SystemConfig(n=3, stack=algorithm, seed=41),
            throughput=50,
            detection_time=10.0,
            num_runs=3,
        )
        expected_latencies, expected_failed, expected_sender = GOLDEN_TRANSIENT[algorithm]
        assert result.latencies == pytest.approx(expected_latencies)
        assert result.failed_runs == expected_failed
        assert result.sender == expected_sender
