"""Unit tests for the scenario result containers."""

import math

from repro.scenarios.results import ScenarioResult, TransientResult


class TestScenarioResult:
    def make(self, latencies, measured=10, undelivered=0):
        return ScenarioResult(
            scenario="normal-steady",
            algorithm="fd",
            n=3,
            throughput=100.0,
            latencies=list(latencies),
            undelivered=undelivered,
            measured=measured,
        )

    def test_mean_latency(self):
        result = self.make([10.0, 20.0, 30.0], measured=3)
        assert result.mean_latency == 20.0

    def test_delivery_ratio(self):
        result = self.make([1.0] * 8, measured=10, undelivered=2)
        assert result.delivery_ratio == 0.8

    def test_completed_threshold(self):
        assert self.make([1.0] * 10, measured=10).completed
        assert not self.make([1.0] * 5, measured=10, undelivered=5).completed

    def test_empty_result_not_completed(self):
        result = self.make([], measured=0)
        assert not result.completed
        assert result.delivery_ratio == 0.0
        assert math.isnan(result.mean_latency)

    def test_describe_mentions_scenario_and_algorithm(self):
        text = self.make([5.0], measured=1).describe()
        assert "normal-steady" in text
        assert "fd" in text

    def test_describe_flags_incomplete_points(self):
        text = self.make([1.0], measured=10, undelivered=9).describe()
        assert "DID NOT COMPLETE" in text


class TestTransientResult:
    def make(self, latencies, detection_time=10.0):
        return TransientResult(
            algorithm="gm",
            n=3,
            throughput=50.0,
            detection_time=detection_time,
            crashed_process=0,
            sender=2,
            latencies=list(latencies),
        )

    def test_latency_summary(self):
        result = self.make([20.0, 30.0])
        assert result.latency_summary().mean == 25.0
        assert result.runs == 2

    def test_overhead_subtracts_detection_time(self):
        result = self.make([20.0, 30.0], detection_time=10.0)
        assert result.overhead_summary().mean == 15.0

    def test_describe(self):
        assert "crash-transient" in self.make([12.0]).describe()
