"""Unit tests for the scenario stage orchestrator."""

import pytest

from repro.scenarios.results import ScenarioResult
from repro.scenarios.script import ScenarioScript, ScriptContext, Stage


def result_stub():
    return ScenarioResult(scenario="test", algorithm="fd", n=3, throughput=10.0)


class TestConstruction:
    def test_stage_needs_a_name(self):
        with pytest.raises(ValueError):
            Stage("", lambda context: None)

    def test_duplicate_stage_names_rejected(self):
        script = ScenarioScript("s").stage("build", lambda context: None)
        with pytest.raises(ValueError):
            script.stage("build", lambda context: None)

    def test_empty_script_cannot_run(self):
        with pytest.raises(ValueError):
            ScenarioScript("s").run()


class TestExecution:
    def test_stages_run_in_declaration_order(self):
        order = []
        context = (
            ScenarioScript("s")
            .stage("a", lambda context: order.append("a"))
            .stage("b", lambda context: order.append("b"))
            .stage("c", lambda context: order.append("c"))
            .run()
        )
        assert order == ["a", "b", "c"]
        assert context.stages_run == ["a", "b", "c"]
        assert context.ok

    def test_values_flow_between_stages(self):
        def produce(context):
            context.values["system"] = "the-system"

        def consume(context):
            context.values["seen"] = context.require("system")

        context = ScenarioScript("s").stage("p", produce).stage("c", consume).run()
        assert context.values["seen"] == "the-system"

    def test_require_names_the_missing_value(self):
        script = ScenarioScript("s").stage("c", lambda context: context.require("system"))
        with pytest.raises(RuntimeError, match="system"):
            script.run()

    def test_critical_failure_reraises_after_recording(self):
        def boom(context):
            raise ValueError("bad config")

        ran = []
        script = (
            ScenarioScript("s")
            .stage("boom", boom)
            .stage("after", lambda context: ran.append("after"))
        )
        with pytest.raises(ValueError, match="bad config"):
            script.run()
        assert ran == []

    def test_non_critical_failure_short_circuits_without_raising(self):
        def attach(context):
            context.result = result_stub()

        def verify(context):
            raise AssertionError("invariant violated")

        ran = []
        context = (
            ScenarioScript("s")
            .stage("attach", attach)
            .stage("verify", verify, critical=False)
            .stage("after", lambda context: ran.append("after"))
            .run()
        )
        assert ran == []
        assert not context.ok
        assert context.failed_stage == "verify"
        assert isinstance(context.error, AssertionError)


class TestAnnotation:
    def test_successful_run_records_the_stage_trace(self):
        def attach(context):
            context.result = result_stub()

        context = ScenarioScript("s").stage("attach", attach).run()
        assert context.result.params["script"] == {"stages": ["attach"]}

    def test_failed_verification_is_a_datum_not_an_exception(self):
        def attach(context):
            context.result = result_stub()

        def verify(context):
            raise AssertionError("minority delivered past the fence")

        context = (
            ScenarioScript("s")
            .stage("attach", attach)
            .stage("verify", verify, critical=False)
            .run()
        )
        trace = context.result.params["script"]
        assert trace["stages"] == ["attach"]
        assert trace["failed_stage"] == "verify"
        assert "minority delivered" in trace["error"]

    def test_critical_failure_still_annotates_an_existing_result(self):
        def attach(context):
            context.result = result_stub()

        def boom(context):
            raise RuntimeError("kernel died")

        context = ScriptContext()
        script = ScenarioScript("s").stage("attach", attach).stage("boom", boom)
        with pytest.raises(RuntimeError):
            script.run(context)
        trace = context.result.params["script"]
        assert trace["failed_stage"] == "boom"
