"""Tests for the crash-transient scenario driver."""

import pytest

from repro import SystemConfig
from repro.scenarios.transient import run_crash_transient, sweep_crash_transient


def config(algorithm="fd", n=3, seed=41):
    return SystemConfig(n=n, stack=algorithm, seed=seed)


class TestCrashTransient:
    def test_tagged_message_delivered_despite_crash(self, algorithm):
        result = run_crash_transient(
            config(algorithm), throughput=50, detection_time=10.0, num_runs=3
        )
        assert result.runs == 3
        assert result.failed_runs == 0

    def test_latency_exceeds_detection_time(self, algorithm):
        result = run_crash_transient(
            config(algorithm), throughput=50, detection_time=50.0, num_runs=3
        )
        assert all(latency > 50.0 for latency in result.latencies)
        assert result.overhead_summary().mean > 0

    def test_default_sender_is_last_process(self):
        result = run_crash_transient(
            config("fd"), throughput=50, detection_time=0.0, num_runs=1
        )
        assert result.sender == 2
        assert result.crashed_process == 0

    def test_sender_must_differ_from_crashed(self):
        with pytest.raises(ValueError):
            run_crash_transient(
                config("fd"),
                throughput=50,
                detection_time=0.0,
                crashed_process=1,
                sender=1,
                num_runs=1,
            )

    def test_runs_use_different_seeds(self, algorithm):
        result = run_crash_transient(
            config(algorithm), throughput=200, detection_time=10.0, num_runs=4
        )
        # Under background load the latencies should not all be identical.
        assert len(set(round(v, 6) for v in result.latencies)) >= 2

    def test_non_coordinator_crash_is_cheap_for_fd(self):
        coordinator = run_crash_transient(
            config("fd"), throughput=50, detection_time=10.0, crashed_process=0, num_runs=3
        )
        other = run_crash_transient(
            config("fd"), throughput=50, detection_time=10.0, crashed_process=2, sender=1, num_runs=3
        )
        assert other.latency_summary().mean <= coordinator.latency_summary().mean

    def test_sweep_covers_requested_pairs(self):
        results = sweep_crash_transient(
            config("fd"),
            throughput=50,
            detection_time=0.0,
            crashed_processes=[0],
            senders=[1, 2],
            num_runs=1,
        )
        assert len(results) == 2
        assert {result.sender for result in results} == {1, 2}

    def test_sweep_pairs_use_independent_seeds(self):
        results = sweep_crash_transient(
            config("fd"),
            throughput=200,
            detection_time=10.0,
            crashed_processes=[0, 1],
            senders=[2],
            num_runs=2,
        )
        # Different (p, q) pairs are independent replicas: under background
        # load their latency samples should not be bitwise identical, which
        # is what reusing one seed across pairs used to produce.
        assert len(results) == 2
        assert results[0].latencies != results[1].latencies

    def test_sweep_routes_through_the_campaign_store(self, tmp_path):
        from repro.campaigns.store import ResultStore

        kwargs = dict(
            throughput=50,
            detection_time=0.0,
            crashed_processes=[0],
            senders=[1, 2],
            num_runs=1,
        )
        store = ResultStore(str(tmp_path))
        first = sweep_crash_transient(config("fd"), store=store, **kwargs)
        # A second sweep over the same pairs is served from the cache and is
        # bit-identical; so is a store-less sweep of the same grid.
        second = sweep_crash_transient(config("fd"), store=store, **kwargs)
        direct = sweep_crash_transient(config("fd"), **kwargs)
        for a, b, c in zip(first, second, direct):
            assert a.latencies == b.latencies == c.latencies
            assert a.sender == b.sender == c.sender

    def test_sweep_preserves_custom_config_fields(self):
        from dataclasses import replace

        base = config("fd")
        slow = replace(base, lambda_cpu=5.0)
        kwargs = dict(
            throughput=200,
            detection_time=10.0,
            crashed_processes=[0],
            senders=[2],
            num_runs=2,
        )
        default_run = sweep_crash_transient(base, **kwargs)
        slow_run = sweep_crash_transient(slow, **kwargs)
        # A five-fold CPU cost must show up in the simulated latencies: the
        # campaign points carry the non-default SystemConfig fields.
        assert slow_run[0].latencies != default_run[0].latencies

    def test_sweep_rejects_extra_kwargs_with_store(self, tmp_path):
        from repro.campaigns.store import ResultStore

        with pytest.raises(ValueError):
            sweep_crash_transient(
                config("fd"),
                throughput=50,
                detection_time=0.0,
                store=ResultStore(str(tmp_path)),
                crash_time=100.0,
            )


def test_heartbeat_fd_kind_rejected():
    import pytest

    from repro.system import SystemConfig

    with pytest.raises(ValueError, match="period \\+ timeout"):
        run_crash_transient(
            SystemConfig(n=3, stack="fd", fd_kind="heartbeat", seed=41),
            throughput=50,
            detection_time=10.0,
            num_runs=1,
        )
