"""Unit tests for the protocol-stack registry and its public protocols."""

import pytest

from repro import SystemConfig, build_system
from repro.stacks import (
    FailureDetectorFabric,
    FaultInjectable,
    StackLayers,
    StackSpec,
    available_fd_kinds,
    available_stacks,
    get_fd_kind,
    get_stack,
    register_fd_kind,
    register_stack,
    resolve,
    split_stack,
    stack_variants,
    unregister_fd_kind,
    unregister_stack,
)


class TestBuiltinRegistrations:
    def test_builtin_stacks_present(self):
        assert available_stacks() == ("fd", "gm", "gm-nonuniform", "gm-reform")

    def test_builtin_fd_kinds_present(self):
        assert available_fd_kinds() == ("qos", "heartbeat", "perfect")

    def test_stack_variants_cross_stacks_with_fd_kinds(self):
        variants = stack_variants()
        assert "fd" in variants
        assert "fd/heartbeat" in variants
        assert "gm/perfect" in variants
        assert "fd/qos" not in variants  # default kind is not re-listed

    def test_gm_stacks_use_membership(self):
        assert not get_stack("fd").uses_membership
        assert get_stack("gm").uses_membership
        assert get_stack("gm-nonuniform").uses_membership
        assert get_stack("gm-reform").uses_membership

    def test_unknown_names_raise_with_candidates(self):
        with pytest.raises(ValueError, match="expected one of"):
            get_stack("zab")
        with pytest.raises(ValueError, match="expected one of"):
            get_fd_kind("oracle")


class TestResolution:
    def test_split_stack(self):
        assert split_stack("fd") == ("fd", None)
        assert split_stack("fd/heartbeat") == ("fd", "heartbeat")

    def test_resolve_defaults_to_stack_fd_kind(self):
        spec, kind = resolve("gm")
        assert spec.name == "gm"
        assert kind == "qos"

    def test_resolve_slash_variant(self):
        spec, kind = resolve("fd/perfect")
        assert (spec.name, kind) == ("fd", "perfect")

    def test_resolve_explicit_kind(self):
        _, kind = resolve("fd", "heartbeat")
        assert kind == "heartbeat"

    def test_resolve_conflict_raises(self):
        with pytest.raises(ValueError, match="conflicting"):
            resolve("fd/heartbeat", "perfect")

    def test_resolve_unknown_embedded_kind_raises(self):
        with pytest.raises(ValueError, match="unknown fd kind"):
            resolve("fd/psychic")


class TestStackSpecValidation:
    def test_name_required(self):
        with pytest.raises(ValueError):
            StackSpec(name="", description="x", build=lambda *a: None)

    def test_slash_in_name_rejected(self):
        with pytest.raises(ValueError, match="cannot contain"):
            StackSpec(name="fd/custom", description="x", build=lambda *a: None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_stack(get_stack("fd"))
        with pytest.raises(ValueError, match="already registered"):
            register_fd_kind("qos", lambda *a: None)


class TestCustomRegistration:
    def test_registered_stack_assembles_through_the_standard_path(self):
        def build_echo_fd(system, process, rbcast, consensus):
            # A custom stack reusing the FD layers: what a user extension does.
            from repro.core.fd_broadcast import FDAtomicBroadcast

            return StackLayers(
                abcast=FDAtomicBroadcast(
                    process,
                    rbcast,
                    consensus,
                    renumber_coordinators=system.config.renumber_coordinators,
                    pipeline_depth=system.config.pipeline_depth,
                )
            )

        register_stack(
            StackSpec(name="fd-custom", description="test stack", build=build_echo_fd)
        )
        try:
            system = build_system(n=3, stack="fd-custom", seed=2)
            system.broadcast_at(1.0, 0, "x")
            system.run(until=100.0)
            assert all(len(seq) == 1 for seq in system.delivery_sequences().values())
            assert system.config.stack == "fd-custom"
        finally:
            unregister_stack("fd-custom")

    def test_registered_fd_kind_is_selectable(self):
        from repro.failure_detectors.perfect import PerfectFailureDetectorFabric

        register_fd_kind(
            "instant",
            lambda sim, network, rng, config: PerfectFailureDetectorFabric(
                sim, network, rng, detection_time=0.0
            ),
        )
        try:
            system = build_system(n=3, fd_kind="instant")
            assert isinstance(system.fd_fabric, PerfectFailureDetectorFabric)
        finally:
            unregister_fd_kind("instant")

    def test_fd_kind_name_with_slash_rejected(self):
        with pytest.raises(ValueError, match="cannot contain"):
            register_fd_kind("qos/fast", lambda *a: None)


class TestProtocolConformance:
    def test_broadcast_system_satisfies_fault_injectable(self):
        assert isinstance(build_system(n=3), FaultInjectable)

    def test_all_builtin_fabrics_satisfy_the_fabric_protocol(self):
        for fd_kind in available_fd_kinds():
            system = build_system(n=3, fd_kind=fd_kind)
            assert isinstance(system.fd_fabric, FailureDetectorFabric), fd_kind

    def test_fault_schedule_runs_against_the_capability_protocol(self):
        """A minimal FaultInjectable double executes a schedule: the compiler
        never touches fd_fabric or other system internals."""
        from repro.scenarios.faults import FaultSchedule, SuspectDuring

        calls = []

        class Recorder:
            config = SystemConfig(n=3)

            def crash(self, pid):
                calls.append(("crash", pid))

            def crash_at(self, time, pid):
                calls.append(("crash_at", time, pid))

            def recover(self, pid):
                calls.append(("recover", pid))

            def recover_at(self, time, pid):
                calls.append(("recover_at", time, pid))

            def suspect_permanently(self, pid, delay=0.0):
                calls.append(("suspect_permanently", pid))

            def suspect_permanently_at(self, time, pid):
                calls.append(("suspect_permanently_at", time, pid))

            def suspect_during(self, target, start, duration, monitors=None):
                calls.append(("suspect_during", target, start, duration))

            def partition(self, groups):
                calls.append(("partition", groups))

            def partition_at(self, time, groups):
                calls.append(("partition_at", time, groups))

            def block_links(self, links):
                calls.append(("block_links", links))

            def block_links_at(self, time, links):
                calls.append(("block_links_at", time, links))

            def heal(self):
                calls.append(("heal",))

            def heal_at(self, time):
                calls.append(("heal_at", time))

            def degrade_cpu(self, pid, factor):
                calls.append(("degrade_cpu", pid, factor))

            def degrade_cpu_at(self, time, pid, factor):
                calls.append(("degrade_cpu_at", time, pid, factor))

            def restore_cpu(self, pid):
                calls.append(("restore_cpu", pid))

            def restore_cpu_at(self, time, pid):
                calls.append(("restore_cpu_at", time, pid))

            def degrade_link(self, src, dst, loss_probability=0.0, duplicate_probability=0.0):
                calls.append(("degrade_link", src, dst))

            def degrade_link_at(
                self, time, src, dst, loss_probability=0.0, duplicate_probability=0.0
            ):
                calls.append(("degrade_link_at", time, src, dst, loss_probability))

        schedule = (
            FaultSchedule.pre_crashed([2])
            .crash(10.0, 1)
            .recover(50.0, 1)
            .add(SuspectDuring(start=20.0, duration=5.0, target=0))
            .partition(60.0, [(0, 1), (2,)])
            .heal(70.0)
            .degrade(80.0, 0, 4.0)
            .restore(90.0, 0)
        )
        recorder = Recorder()
        assert isinstance(recorder, FaultInjectable)
        schedule.apply(recorder)
        assert calls == [
            ("crash", 2),
            ("suspect_permanently", 2),
            ("crash_at", 10.0, 1),
            ("recover_at", 50.0, 1),
            ("suspect_during", 0, 20.0, 5.0),
            ("partition_at", 60.0, ((0, 1), (2,))),
            ("heal_at", 70.0),
            ("degrade_cpu_at", 80.0, 0, 4.0),
            ("restore_cpu_at", 90.0, 0),
        ]
