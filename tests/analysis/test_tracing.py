"""Tests for the trace recorders."""

import pytest

from repro import SystemConfig, build_system
from repro.analysis.tracing import DeliveryTraceRecorder, MessageTraceRecorder


def traced_run(algorithm="fd", arrivals=((1.0, 0, "a"), (4.0, 1, "b")), **kwargs):
    system = build_system(SystemConfig(n=3, stack=algorithm, seed=5))
    messages = MessageTraceRecorder(system, **kwargs)
    deliveries = DeliveryTraceRecorder(system)
    system.start()
    for time, sender, payload in arrivals:
        system.broadcast_at(time, sender, payload)
    system.run(until=1_000.0)
    return system, messages, deliveries


class TestMessageTraceRecorder:
    def test_records_every_network_send(self):
        system, messages, _deliveries = traced_run()
        assert len(messages.messages) == system.message_stats()["messages_sent"]

    def test_pattern_identical_across_algorithms(self):
        _s1, fd_messages, _d1 = traced_run("fd")
        _s2, gm_messages, _d2 = traced_run("gm")
        assert fd_messages.pattern() == gm_messages.pattern()

    def test_counts_by_protocol(self):
        _system, messages, _deliveries = traced_run("fd")
        counts = messages.counts_by_protocol()
        assert counts["rbcast"] >= 2          # the two data messages + decisions
        assert counts["consensus"] >= 2       # proposals and acknowledgements

    def test_multicast_and_unicast_counts(self):
        system, messages, _deliveries = traced_run("fd", arrivals=((1.0, 0, "a"),))
        stats = system.message_stats()
        assert messages.multicast_count() == stats["multicasts_sent"]
        assert messages.unicast_count() == stats["unicasts_sent"]

    def test_protocol_filter(self):
        _system, messages, _deliveries = traced_run("fd", include_protocols=("consensus",))
        assert set(messages.counts_by_protocol()) == {"consensus"}

    def test_detach_stops_recording(self):
        system = build_system(SystemConfig(n=3, stack="fd", seed=5))
        recorder = MessageTraceRecorder(system)
        recorder.detach()
        system.start()
        system.broadcast_at(1.0, 0, "x")
        system.run(until=100.0)
        assert recorder.messages == []


class TestDeliveryTraceRecorder:
    def test_records_deliveries_on_every_process(self):
        _system, _messages, deliveries = traced_run()
        assert len(deliveries.deliveries) == 2 * 3
        for pid in range(3):
            assert len(deliveries.sequence_for(pid)) == 2

    def test_total_order_holds(self):
        _system, _messages, deliveries = traced_run()
        assert deliveries.total_order_holds()

    def test_first_delivery_times(self):
        _system, _messages, deliveries = traced_run(arrivals=((1.0, 0, "a"),))
        times = deliveries.first_delivery_times()
        assert len(times) == 1
        earliest_recorded = min(d.time for d in deliveries.deliveries)
        assert next(iter(times.values())) == pytest.approx(earliest_recorded)

    def test_time_multiset_is_sorted(self):
        _system, _messages, deliveries = traced_run()
        multiset = deliveries.time_multiset()
        assert multiset == sorted(multiset)


class TestStackedRecorders:
    """Regression: recorders must compose as hook subscribers.

    The legacy attribute-splice implementation broke when two stacked
    recorders were detached in attach order -- restoring the saved ``send``
    re-installed the first recorder's dead closure, which kept recording.
    """

    def test_detach_in_attach_order_detaches_both(self):
        system = build_system(SystemConfig(n=3, stack="fd", seed=5))
        first = MessageTraceRecorder(system)
        second = MessageTraceRecorder(system)
        first.detach()
        second.detach()
        system.start()
        system.broadcast_at(1.0, 0, "x")
        system.run(until=500.0)
        assert first.messages == []
        assert second.messages == []
        # The network itself keeps working without any recorder attached.
        assert system.message_stats()["messages_sent"] > 0

    def test_partial_detach_keeps_the_other_recording(self):
        system = build_system(SystemConfig(n=3, stack="fd", seed=5))
        first = MessageTraceRecorder(system)
        second = MessageTraceRecorder(system)
        first.detach()
        system.start()
        system.broadcast_at(1.0, 0, "x")
        system.run(until=500.0)
        assert first.messages == []
        assert len(second.messages) == system.message_stats()["messages_sent"]

    def test_message_and_delivery_recorders_stack_independently(self):
        system = build_system(SystemConfig(n=3, stack="gm", seed=5))
        messages = MessageTraceRecorder(system)
        deliveries = DeliveryTraceRecorder(system)
        messages.detach()
        system.start()
        system.broadcast_at(1.0, 0, "x")
        system.run(until=500.0)
        assert messages.messages == []
        assert len(deliveries.deliveries) == 3

    def test_delivery_recorder_detach(self):
        system = build_system(SystemConfig(n=3, stack="fd", seed=5))
        deliveries = DeliveryTraceRecorder(system)
        deliveries.detach()
        system.start()
        system.broadcast_at(1.0, 0, "x")
        system.run(until=500.0)
        assert deliveries.deliveries == []
