"""Tests for the analytical cost model, validated against the simulator."""

import pytest

from repro import SystemConfig, build_system
from repro.analysis.model import CostModel, predicted_latency
from repro.metrics.latency import LatencyRecorder


class TestCostModelFormulas:
    def test_step_cost(self):
        assert CostModel(n=3, lambda_cpu=1.0, network_time=1.0).step == 3.0
        assert CostModel(n=3, lambda_cpu=2.0, network_time=1.0).step == 5.0

    def test_normal_latency_three_steps(self):
        assert CostModel(n=3).normal_latency("fd") == 9.0
        assert CostModel(n=3).normal_latency("gm") == 9.0
        assert CostModel(n=7).normal_latency("fd") == 9.0  # independent of n

    def test_non_uniform_is_two_steps_cheaper(self):
        model = CostModel(n=3)
        assert model.normal_latency("gm-nonuniform") == model.normal_latency("gm") - 2 * model.step

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            CostModel(n=3).normal_latency("zab")

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            CostModel(n=0)
        with pytest.raises(ValueError):
            CostModel(n=3, network_time=0.0)

    def test_messages_per_broadcast(self):
        cost = CostModel(n=5).messages_per_broadcast("fd")
        assert cost.multicasts == 3
        assert cost.unicasts == 4
        assert cost.total == 7
        assert CostModel(n=5).messages_per_broadcast("gm-nonuniform").total == 2

    def test_view_change_messages_match_paper_count(self):
        # Paper, Section 4.4: "about n multicast and n unicast messages".
        cost = CostModel(n=7).view_change_messages()
        assert cost.unicasts == 6
        assert cost.multicasts >= 7

    def test_crash_transient_overheads(self):
        model = CostModel(n=3)
        assert model.crash_transient_overhead("fd") == 3 * model.step
        assert model.crash_transient_overhead("gm") == 5 * model.step

    def test_saturation_bound_decreases_with_n(self):
        assert CostModel(n=7).saturation_throughput() < CostModel(n=3).saturation_throughput()

    def test_predicted_latency_wrapper(self):
        assert predicted_latency(3) == 9.0
        assert predicted_latency(3, lambda_cpu=2.0) == 15.0


class TestModelAgainstSimulator:
    @pytest.mark.parametrize("algorithm", ["fd", "gm", "gm-nonuniform"])
    @pytest.mark.parametrize("lambda_cpu", [0.5, 1.0, 2.0])
    def test_isolated_broadcast_latency_matches_prediction(self, algorithm, lambda_cpu):
        system = build_system(
            SystemConfig(n=3, stack=algorithm, seed=3, lambda_cpu=lambda_cpu)
        )
        recorder = LatencyRecorder()
        recorder.attach(system)
        system.start()
        system.broadcast_at(10.0, 1, "solo")
        system.run(until=1_000.0)
        (latency,) = recorder.latencies().values()
        expected = predicted_latency(3, algorithm, lambda_cpu=lambda_cpu)
        assert latency == pytest.approx(expected)

    def test_prediction_is_lower_bound_under_load(self):
        from repro.scenarios.steady import run_normal_steady

        result = run_normal_steady(SystemConfig(n=3, stack="fd", seed=3), 300, num_messages=80)
        assert result.mean_latency >= predicted_latency(3)

    def test_message_count_matches_simulated_run(self):
        system = build_system(SystemConfig(n=3, stack="fd", seed=3))
        system.start()
        system.broadcast_at(10.0, 1, "solo")
        system.run(until=1_000.0)
        stats = system.message_stats()
        cost = CostModel(n=3).messages_per_broadcast("fd")
        assert stats["multicasts_sent"] == cost.multicasts
        assert stats["unicasts_sent"] == cost.unicasts
