"""Unit tests for the instrumentation core: primitives, hooks, subscribers."""

import pytest

from repro.obs import HOOKS, NULL, Instrumentation, NullInstrumentation


class TestPrimitives:
    def test_counters_accumulate(self):
        obs = Instrumentation()
        obs.count("x")
        obs.count("x", 2)
        assert obs.counter("x") == 3

    def test_counter_defaults_to_zero(self):
        assert Instrumentation().counter("never-touched") == 0

    def test_observe_appends_to_histogram(self):
        obs = Instrumentation()
        obs.observe("lat", 1.0)
        obs.observe("lat", 3.0)
        assert obs.histograms["lat"] == [1.0, 3.0]

    def test_gauge_max_keeps_high_water_mark(self):
        obs = Instrumentation()
        obs.gauge_max("depth", 5)
        obs.gauge_max("depth", 3)
        obs.gauge_max("depth", 9)
        assert obs.gauges["depth"] == 9

    def test_counters_by_prefix(self):
        obs = Instrumentation()
        obs.count("sim.events")
        obs.count("sim.events.Foo")
        obs.count("messages.sent")
        assert obs.counters_by_prefix("sim.") == {"sim.events": 1, "sim.events.Foo": 1}


class FakeMessage:
    def __init__(self, sender=0, destinations=(1, 2), protocol="rbcast"):
        self.sender = sender
        self.destinations = list(destinations)
        self.protocol = protocol


class TestLifecycle:
    def test_sequenced_is_counted_once_per_message(self):
        obs = Instrumentation()
        obs.abcast_broadcast(1.0, 0, (0, 1), "m")
        obs.abcast_sequenced(4.0, 0, (0, 1))
        obs.abcast_sequenced(5.0, 1, (0, 1))  # later report on another process
        assert obs.counter("abcast.sequenced") == 1
        assert obs.histograms["abcast.broadcast_to_sequence"] == [3.0]

    def test_first_delivery_ends_the_span(self):
        obs = Instrumentation()
        obs.abcast_broadcast(1.0, 0, (0, 1), "m")
        obs.abcast_sequenced(4.0, 0, (0, 1))
        obs.abcast_deliver(6.0, 0, (0, 1), "m")
        obs.abcast_deliver(7.0, 1, (0, 1), "m")
        assert obs.counter("abcast.deliveries") == 2
        assert obs.histograms["abcast.broadcast_to_deliver"] == [5.0]
        assert obs.histograms["abcast.sequence_to_deliver"] == [2.0]
        assert obs.first_delivery_latency((0, 1)) == 5.0

    def test_incomplete_lifecycle_has_no_latency(self):
        obs = Instrumentation()
        obs.abcast_broadcast(1.0, 0, (0, 1), "m")
        assert obs.first_delivery_latency((0, 1)) is None

    def test_message_send_splits_dropped_sends(self):
        obs = Instrumentation()
        obs.message_send(1.0, FakeMessage(protocol="rbcast"))
        obs.message_send(2.0, FakeMessage(protocol="consensus"), dropped=True)
        assert obs.counter("messages.sent") == 1
        assert obs.counter("messages.sent.rbcast") == 1
        assert obs.counter("messages.dropped_sender_crashed") == 1

    def test_suspicion_mistake_duration(self):
        obs = Instrumentation()
        obs.suspicion(100.0, 1, 0, True)
        obs.suspicion(130.0, 1, 0, False)
        assert obs.counter("fd.suspicions") == 1
        assert obs.counter("fd.trusts") == 1
        assert obs.histograms["fd.mistake_duration"] == [30.0]

    def test_crash_suspicion_is_not_a_mistake(self):
        obs = Instrumentation()
        obs.suspicion(100.0, 1, 0, True)  # never trusted again
        assert "fd.mistake_duration" not in obs.histograms

    def test_record_events_off_keeps_counters_only(self):
        obs = Instrumentation(record_events=False)
        obs.message_send(1.0, FakeMessage())
        obs.abcast_broadcast(1.0, 0, (0, 1), "m")
        assert obs.counter("messages.sent") == 1
        assert obs.events == []


class TestSubscribers:
    def test_subscriber_receives_hook_arguments(self):
        obs = Instrumentation()
        seen = []
        obs.subscribe("abcast_deliver", lambda *args: seen.append(args))
        obs.abcast_deliver(6.0, 2, (0, 1), "payload")
        assert seen == [(6.0, 2, (0, 1), "payload")]

    def test_unsubscribe_stops_notifications(self):
        obs = Instrumentation()
        seen = []
        handler = lambda *args: seen.append(args)  # noqa: E731
        obs.subscribe("message_send", handler)
        obs.unsubscribe("message_send", handler)
        obs.message_send(1.0, FakeMessage())
        assert seen == []

    def test_unknown_hook_rejected(self):
        with pytest.raises(ValueError, match="unknown hook"):
            Instrumentation().subscribe("not-a-hook", lambda: None)

    def test_unsubscribe_of_unknown_handler_rejected(self):
        with pytest.raises(ValueError, match="not subscribed"):
            Instrumentation().unsubscribe("message_send", lambda: None)

    def test_subscriber_may_unsubscribe_itself_mid_notify(self):
        obs = Instrumentation()
        seen = []

        def once(*args):
            seen.append(args)
            obs.unsubscribe("message_send", once)

        obs.subscribe("message_send", once)
        obs.message_send(1.0, FakeMessage())
        obs.message_send(2.0, FakeMessage())
        assert len(seen) == 1

    def test_every_declared_hook_exists_on_both_implementations(self):
        for name in HOOKS:
            assert callable(getattr(Instrumentation(), name))
            assert callable(getattr(NULL, name))


class TestNullInstrumentation:
    def test_disabled_discriminator(self):
        assert NULL.enabled is False
        assert Instrumentation().enabled is True

    def test_hooks_are_silent_no_ops(self):
        null = NullInstrumentation()
        null.message_send(1.0, FakeMessage())
        null.abcast_deliver(1.0, 0, (0, 1), "m")
        null.sim_event(1.0, "cat")
        null.queue_depth(10)
        null.count("x")
        null.observe("x", 1.0)
        null.gauge_max("x", 1.0)

    def test_subscribing_a_disabled_instrumentation_raises(self):
        with pytest.raises(RuntimeError, match="disabled"):
            NULL.subscribe("message_send", lambda: None)
        with pytest.raises(RuntimeError, match="disabled"):
            NULL.unsubscribe("message_send", lambda: None)
