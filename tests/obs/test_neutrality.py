"""Golden-neutrality and counter-consistency tests of the instrumentation.

Observation must never perturb the run: for every registered stack variant,
an instrumented execution must be bit-identical to an uninstrumented one --
same delivery sequences, same delivery times, same kernel event count.  And
the counters an instrumented run reports must match values independently
derivable from the network statistics, the failure detectors' own counters
and the trace recorders on the same seed.
"""

import pytest

from repro import SystemConfig, build_system
from repro.analysis.tracing import DeliveryTraceRecorder, MessageTraceRecorder
from repro.scenarios.extended import (
    run_gray_degradation,
    run_partition_transient,
    run_wan_steady,
)
from repro.scenarios.steady import run_suspicion_steady
from repro.stacks import stack_variants

#: A fixed golden workload: (time ms, sender) pairs over a 3-process group.
ARRIVALS = ((1.0, 0), (4.0, 1), (9.0, 2), (15.0, 0), (22.0, 1))


def golden_run(variant, instrument):
    system = build_system(
        SystemConfig(n=3, stack=variant, seed=7, instrument=instrument)
    )
    deliveries = []
    system.add_delivery_listener(
        lambda pid, bid, _payload: deliveries.append(
            (round(system.sim.now, 9), pid, bid)
        )
    )
    system.start()
    for time, sender in ARRIVALS:
        system.broadcast_at(time, sender, f"m-{sender}-{time:g}")
    system.run(until=3_000.0)
    return system, deliveries


class TestGoldenNeutrality:
    @pytest.mark.parametrize("variant", stack_variants())
    def test_instrumented_run_is_bit_identical(self, variant):
        base_system, base_deliveries = golden_run(variant, instrument=False)
        inst_system, inst_deliveries = golden_run(variant, instrument=True)
        assert inst_deliveries == base_deliveries
        assert inst_system.delivery_sequences() == base_system.delivery_sequences()
        assert inst_system.sim.events_processed == base_system.sim.events_processed
        assert inst_system.sim.now == base_system.sim.now
        assert inst_system.message_stats() == base_system.message_stats()

    def test_neutral_under_failure_detector_mistakes(self):
        """The RNG-heavy suspicion-steady scenario stays bit-identical too."""

        def measure(instrument):
            return run_suspicion_steady(
                SystemConfig(n=3, stack="fd", seed=3, instrument=instrument),
                50.0,
                mistake_recurrence_time=500.0,
                mistake_duration=30.0,
                num_messages=40,
            )

        base = measure(False)
        inst = measure(True)
        assert inst.latencies == base.latencies
        assert inst.events == base.events
        assert inst.duration == base.duration
        assert base.metrics is None
        assert inst.metrics is not None
        assert inst.metrics["counters"]["fd.suspicions"] > 0

    @pytest.mark.parametrize(
        "runner,kwargs",
        [
            (run_partition_transient, {"partition_duration": 300.0}),
            (run_wan_steady, {"profile": "wan-3dc"}),
            (run_gray_degradation, {"degrade_factor": 4.0, "link_loss": 0.2}),
        ],
        ids=["partition", "wan", "gray"],
    )
    def test_neutral_under_fault_injection(self, runner, kwargs):
        """The partition/WAN/gray fault paths stay bit-identical too."""

        def measure(instrument):
            return runner(
                SystemConfig(n=3, stack="gm-reform", seed=3, instrument=instrument),
                50.0,
                num_messages=30,
                **kwargs,
            )

        base = measure(False)
        inst = measure(True)
        assert inst.latencies == base.latencies
        assert inst.events == base.events
        assert inst.duration == base.duration
        assert base.metrics is None
        assert inst.metrics is not None


class TestCounterConsistency:
    @pytest.mark.parametrize("variant", stack_variants())
    def test_counters_match_independent_observers(self, variant):
        system = build_system(
            SystemConfig(n=3, stack=variant, seed=7, instrument=True)
        )
        messages = MessageTraceRecorder(system)
        deliveries = DeliveryTraceRecorder(system)
        system.start()
        for time, sender in ARRIVALS:
            system.broadcast_at(time, sender, f"m-{sender}-{time:g}")
        system.run(until=3_000.0)

        obs = system.obs
        stats = system.message_stats()
        assert obs.counter("messages.sent") == stats["messages_sent"]
        assert obs.counter("messages.sent") == len(messages.messages)
        assert obs.counters_by_prefix("messages.sent.") == {
            f"messages.sent.{proto}": count
            for proto, count in messages.counts_by_protocol().items()
        }
        assert obs.counter("abcast.deliveries") == len(deliveries.deliveries)
        assert obs.counter("abcast.broadcasts") == len(ARRIVALS)
        assert obs.counter("abcast.sequenced") == len(ARRIVALS)
        # Every message's lifecycle latency matches the delivery recorder.
        first_times = deliveries.first_delivery_times()
        for delivery in deliveries.deliveries:
            latency = obs.first_delivery_latency(delivery.broadcast_id)
            assert latency is not None
        assert len(obs.histograms["abcast.broadcast_to_deliver"]) == len(first_times)

    def test_suspicion_counters_match_the_detectors(self):
        system = build_system(SystemConfig(n=3, stack="fd", seed=7, instrument=True))
        system.start()
        detector = system.fd_fabric.detectors()[1]
        system.sim.schedule_at(100.0, lambda: detector.force_suspect(0))
        system.sim.schedule_at(150.0, lambda: detector.force_trust(0))
        system.run(until=400.0)

        detectors = system.fd_fabric.detectors().values()
        assert system.obs.counter("fd.suspicions") == sum(
            d.suspicion_events for d in detectors
        )
        assert system.obs.counter("fd.trusts") == sum(
            d.trust_events for d in detectors
        )
        assert system.obs.histograms["fd.mistake_duration"] == [50.0]

    def test_consensus_counters_match_the_services(self):
        system = build_system(SystemConfig(n=3, stack="fd", seed=7, instrument=True))
        system.start()
        for time, sender in ARRIVALS:
            system.broadcast_at(time, sender, "m")
        system.run(until=3_000.0)
        decided = sum(
            len(service._decisions) for service in system.consensus_services
        )
        assert system.obs.counter("consensus.decisions") == decided
