"""Tests for the exporters: metrics snapshots, JSONL traces, Chrome traces."""

import json

import pytest

from repro import SystemConfig, build_system
from repro.obs import Instrumentation, metrics_snapshot, metrics_snapshot_from_obs
from repro.obs import export as obs_export


def instrumented_run(stack="fd", n=3, seed=7):
    system = build_system(SystemConfig(n=n, stack=stack, seed=seed, instrument=True))
    system.start()
    for time, sender in ((1.0, 0), (5.0, 1), (9.0, 2)):
        system.broadcast_at(time, sender, f"m-{sender}")
    system.run(until=2_000.0)
    return system


class TestMetricsSnapshot:
    def test_provenance_identifies_the_run(self):
        system = instrumented_run()
        snapshot = metrics_snapshot(system, scenario="adhoc")
        provenance = snapshot["provenance"]
        assert provenance["schema"] == obs_export.METRICS_SCHEMA
        assert provenance["stack"] == "fd"
        assert provenance["fd_kind"] == "qos"
        assert provenance["n"] == 3
        assert provenance["seed"] == 7
        assert provenance["scenario"] == "adhoc"
        assert len(provenance["config_hash"]) == 16
        int(provenance["config_hash"], 16)  # hex

    def test_sim_section_reports_the_kernel(self):
        system = instrumented_run()
        snapshot = metrics_snapshot(system)
        assert snapshot["sim"]["events_processed"] == system.sim.events_processed
        assert snapshot["sim"]["run_exhausted"] is False

    def test_counters_round_trip(self):
        system = instrumented_run()
        snapshot = metrics_snapshot(system)
        assert snapshot["counters"] == dict(system.obs.counters)
        assert snapshot["counters"]["abcast.broadcasts"] == 3

    def test_snapshot_is_json_serialisable(self):
        json.dumps(metrics_snapshot(instrumented_run()))

    def test_uninstrumented_system_rejected(self):
        system = build_system(SystemConfig(n=3, stack="fd", seed=7))
        with pytest.raises(ValueError, match="not instrumented"):
            metrics_snapshot(system)

    def test_config_fingerprint_is_stable_and_sensitive(self):
        a = SystemConfig(n=3, stack="fd", seed=7)
        b = SystemConfig(n=3, stack="fd", seed=7)
        c = SystemConfig(n=3, stack="fd", seed=8)
        assert obs_export.config_fingerprint(a) == obs_export.config_fingerprint(b)
        assert obs_export.config_fingerprint(a) != obs_export.config_fingerprint(c)

    def test_snapshot_from_bare_obs_has_no_sim_section(self):
        obs = Instrumentation()
        obs.count("x")
        snapshot = metrics_snapshot_from_obs(obs, SystemConfig(n=3), runs=4)
        assert "sim" not in snapshot
        assert snapshot["provenance"]["runs"] == 4
        assert snapshot["counters"] == {"x": 1}

    def test_write_metrics(self, tmp_path):
        system = instrumented_run()
        path = tmp_path / "out" / "metrics.json"
        written = obs_export.write_metrics(str(path), system)
        assert json.loads(path.read_text()) == json.loads(json.dumps(written))


class TestHistogramSummary:
    def test_empty_histogram(self):
        assert obs_export.summarize_histogram([]) == {"count": 0}

    def test_summary_fields(self):
        summary = obs_export.summarize_histogram([3.0, 1.0, 2.0, 4.0])
        assert summary["count"] == 4
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == 2.5
        assert summary["p50"] == 3.0


class TestEventTrace:
    def test_jsonl_lines_parse_and_count(self, tmp_path):
        system = instrumented_run()
        path = tmp_path / "run.trace.jsonl"
        count = obs_export.write_event_trace(str(path), system.obs)
        lines = path.read_text().splitlines()
        assert len(lines) == count == len(system.obs.events)
        kinds = {json.loads(line)["ev"] for line in lines}
        assert {"send", "recv", "broadcast", "sequenced", "adeliver"} <= kinds


class TestChromeTrace:
    def test_abcast_spans_balance(self):
        system = instrumented_run()
        trace = obs_export.chrome_trace(system.obs)
        events = trace["traceEvents"]
        begins = [e for e in events if e.get("cat") == "abcast" and e["ph"] == "b"]
        ends = [e for e in events if e.get("cat") == "abcast" and e["ph"] == "e"]
        assert len(begins) == len(ends) == 3
        assert {e["id"] for e in begins} == {e["id"] for e in ends}

    def test_timestamps_are_microseconds(self):
        system = instrumented_run()
        events = obs_export.chrome_trace(system.obs)["traceEvents"]
        first = min(
            (e for e in events if e.get("cat") == "abcast" and e["ph"] == "b"),
            key=lambda e: e["ts"],
        )
        assert first["ts"] == pytest.approx(1.0 * 1000.0)  # 1 ms sim time

    def test_process_metadata_present(self):
        system = instrumented_run()
        events = obs_export.chrome_trace(system.obs)["traceEvents"]
        names = {
            e["args"]["name"] for e in events if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"p0", "p1", "p2"}

    def test_suspicion_spans_balance(self):
        system = build_system(SystemConfig(n=3, stack="fd", seed=7, instrument=True))
        system.start()
        detector = system.fd_fabric.detectors()[1]
        system.sim.schedule_at(10.0, lambda: detector.force_suspect(0))
        system.sim.schedule_at(60.0, lambda: detector.force_trust(0))
        system.run(until=200.0)
        events = obs_export.chrome_trace(system.obs)["traceEvents"]
        fd_events = [e for e in events if e.get("cat") == "fd"]
        assert [e["ph"] for e in fd_events] == ["b", "e"]
        assert fd_events[0]["ts"] == pytest.approx(10_000.0)
        assert fd_events[1]["ts"] == pytest.approx(60_000.0)


class TestTraceSink:
    def teardown_method(self):
        obs_export.set_trace_dir(None)

    def test_disarmed_sink_writes_nothing(self):
        system = instrumented_run()
        assert obs_export.maybe_write_traces(system, "label") == []

    def test_armed_sink_writes_both_files(self, tmp_path):
        obs_export.set_trace_dir(str(tmp_path), prefix="abc123")
        system = instrumented_run()
        paths = obs_export.maybe_write_traces(system, "normal-steady/fd n=3")
        assert len(paths) == 2
        for path in paths:
            assert path.startswith(str(tmp_path))
            assert "abc123-" in path
            assert "/" not in path[len(str(tmp_path)) + 1 :]

    def test_uninstrumented_system_writes_nothing(self, tmp_path):
        obs_export.set_trace_dir(str(tmp_path))
        system = build_system(SystemConfig(n=3, stack="fd", seed=7))
        assert obs_export.maybe_write_traces(system, "label") == []


class TestExportMetricsRecords:
    def test_only_metrics_bearing_records_written(self, tmp_path):
        records = {
            "aaa": {"type": "scenario", "metrics": {"counters": {"x": 1}}},
            "bbb": {"type": "scenario"},
        }
        written = obs_export.export_metrics_records(records, str(tmp_path))
        assert written == 1
        payload = json.loads((tmp_path / "aaa.metrics.json").read_text())
        assert payload["key"] == "aaa"
        assert payload["counters"] == {"x": 1}
        assert not (tmp_path / "bbb.metrics.json").exists()
