"""Kernel-equivalence property suite.

The optimised run loop in :mod:`repro.sim.engine` (tuple heap, hoisted
locals, lazy compaction) must execute the *exact* same callbacks in the
exact same order as the straightforward seed kernel it replaced.  This
suite pins that claim: random event programs -- including cancellations,
events that schedule more events, ``until`` horizons and ``max_events``
budgets -- are run through a line-for-line transcription of the seed loop
and through the production :class:`~repro.sim.engine.Simulator`, and the
full observable trace (fired ids, firing times, end time,
``events_processed``, ``run_exhausted``) must match bit for bit.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


class _RefHandle:
    """Seed-shaped handle: the heap orders handles directly via ``__lt__``."""

    def __init__(self, time, seq, callback, args):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)


class ReferenceSimulator:
    """Line-for-line transcription of the pre-optimisation seed kernel.

    No tuple heap, no hoisted locals, no compaction: handles sit on the
    heap directly and cancelled ones are skipped when popped.  Only the
    surface needed by the equivalence programs is implemented.
    """

    def __init__(self):
        self._now = 0.0
        self._queue = []
        self._seq = 0
        self._processed = 0
        self._stopped = False
        self._exhausted = False

    @property
    def now(self):
        return self._now

    @property
    def events_processed(self):
        return self._processed

    @property
    def run_exhausted(self):
        return self._exhausted

    def schedule(self, delay, callback, *args):
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time, callback, *args):
        handle = _RefHandle(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, handle)
        return handle

    def stop(self):
        self._stopped = True

    def run(self, until=None, max_events=None):
        self._stopped = False
        self._exhausted = False
        executed = 0
        while self._queue and not self._stopped:
            if max_events is not None and executed >= max_events:
                self._exhausted = True
                break
            head = self._queue[0]
            if until is not None and head.time > until:
                self._now = until
                break
            heapq.heappop(self._queue)
            if head.cancelled:
                continue
            self._now = head.time
            head.callback(*head.args)
            executed += 1
        else:
            if until is not None and not self._queue and self._now < until:
                self._now = until
        self._processed += executed
        return self._now


_DELAYS = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)

# One action performed when an event fires: spawn a follow-up event after a
# relative delay, or cancel the handle at (index % live handles) -- which may
# already have fired, exercising the no-op cancel path too.
_ACTIONS = st.lists(
    st.one_of(
        st.tuples(st.just("spawn"), _DELAYS),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200)),
    ),
    max_size=3,
)


@st.composite
def programs(draw):
    """A deterministic event program plus run parameters.

    Events are identified by creation order, which both kernels share
    because the program itself is deterministic.  Actions are defined only
    for a bounded range of event ids, so spawn chains terminate.
    """
    roots = draw(st.lists(_DELAYS, min_size=1, max_size=10))
    actions = draw(
        st.dictionaries(st.integers(min_value=0, max_value=60), _ACTIONS, max_size=25)
    )
    until = draw(st.none() | st.floats(min_value=0.0, max_value=250.0, allow_nan=False))
    max_events = draw(st.none() | st.integers(min_value=0, max_value=120))
    return roots, actions, until, max_events


def run_program(sim, program):
    """Execute ``program`` on ``sim`` and return its full observable trace."""
    roots, actions, until, max_events = program
    fired = []
    handles = []
    counter = [0]

    def fire(eid):
        fired.append((eid, sim.now))
        for action in actions.get(eid, ()):
            if action[0] == "spawn":
                child = counter[0]
                counter[0] += 1
                handles.append(sim.schedule(action[1], fire, child))
            else:
                handles[action[1] % len(handles)].cancel()

    for delay in roots:
        eid = counter[0]
        counter[0] += 1
        handles.append(sim.schedule(delay, fire, eid))
    end = sim.run(until=until, max_events=max_events)
    return fired, end, sim.events_processed, sim.run_exhausted


class TestKernelEquivalence:
    @given(program=programs())
    @settings(max_examples=200, deadline=None)
    def test_optimized_loop_matches_reference_loop(self, program):
        reference = run_program(ReferenceSimulator(), program)
        optimized = run_program(Simulator(), program)
        assert optimized == reference

    @given(program=programs(), resume_until=st.none() | st.floats(min_value=0.0, max_value=500.0))
    @settings(max_examples=100, deadline=None)
    def test_equivalence_survives_resumed_runs(self, program, resume_until):
        """A second run() continuing a stopped/limited first run also matches."""
        traces = []
        for sim in (ReferenceSimulator(), Simulator()):
            first = run_program(sim, program)
            end = sim.run(until=resume_until, max_events=50)
            traces.append((first, end, sim.events_processed, sim.run_exhausted))
        assert traces[0] == traces[1]

    @given(program=programs())
    @settings(max_examples=50, deadline=None)
    def test_instrumented_loop_matches_reference_loop(self, program):
        from repro.obs import Instrumentation

        reference = run_program(ReferenceSimulator(), program)
        sim = Simulator()
        sim.set_instrumentation(Instrumentation())
        assert run_program(sim, program) == reference
