"""Property-based tests of the atomic broadcast invariants.

Random workloads, crash schedules and failure detector behaviours are
generated with hypothesis; for every generated scenario the uniform atomic
broadcast properties must hold for both algorithms:

* total order (delivery sequences are prefixes of one another),
* integrity (no duplicates, no invented messages),
* validity (messages from correct senders reach every correct process).

The scenarios are kept small so the whole suite stays fast, but each example
still runs a complete simulation with contention, crashes and suspicions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QoSConfig, SystemConfig, build_system
from tests.conftest import assert_no_duplicates, assert_prefix_consistent


@st.composite
def scenarios(draw):
    n = draw(st.sampled_from([3, 5]))
    algorithm = draw(st.sampled_from(["fd", "gm"]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    message_count = draw(st.integers(min_value=1, max_value=12))
    arrivals = []
    time = 1.0
    for index in range(message_count):
        time += draw(st.floats(min_value=0.1, max_value=40.0))
        sender = draw(st.integers(min_value=0, max_value=n - 1))
        arrivals.append((time, sender, f"m{index}"))
    crash = draw(st.booleans())
    crash_plan = []
    if crash:
        crash_time = draw(st.floats(min_value=5.0, max_value=time + 20.0))
        crash_pid = draw(st.integers(min_value=0, max_value=n - 1))
        crash_plan.append((crash_time, crash_pid))
    mistakes = draw(st.booleans())
    if mistakes:
        qos = QoSConfig(
            detection_time=draw(st.sampled_from([0.0, 10.0, 30.0])),
            mistake_recurrence_time=draw(st.sampled_from([150.0, 400.0, 1000.0])),
            mistake_duration=draw(st.sampled_from([0.0, 5.0, 30.0])),
        )
    else:
        qos = QoSConfig(detection_time=draw(st.sampled_from([0.0, 10.0, 30.0])))
    return n, algorithm, seed, arrivals, crash_plan, qos


def run_generated(n, algorithm, seed, arrivals, crash_plan, qos):
    system = build_system(SystemConfig(n=n, algorithm=algorithm, seed=seed, fd=qos))
    system.start()
    for time, sender, payload in arrivals:
        system.broadcast_at(time, sender, payload)
    for time, pid in crash_plan:
        system.crash_at(time, pid)
    system.run(until=60_000.0, max_events=1_500_000)
    return system


class TestAtomicBroadcastProperties:
    @given(scenario=scenarios())
    @settings(max_examples=25, deadline=None)
    def test_total_order_and_integrity(self, scenario):
        n, algorithm, seed, arrivals, crash_plan, qos = scenario
        system = run_generated(n, algorithm, seed, arrivals, crash_plan, qos)
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert_no_duplicates(sequences)
        # Integrity: only broadcast messages are delivered.
        sent_payloads = {payload for _t, _s, payload in arrivals}
        for pid in range(n):
            for _bid, payload in system.abcast(pid).delivered:
                assert payload in sent_payloads

    @given(scenario=scenarios())
    @settings(max_examples=25, deadline=None)
    def test_validity_for_correct_senders(self, scenario):
        n, algorithm, seed, arrivals, crash_plan, qos = scenario
        system = run_generated(n, algorithm, seed, arrivals, crash_plan, qos)
        crashed = {pid for _t, pid in crash_plan}
        correct = [pid for pid in range(n) if pid not in crashed]
        if len(correct) <= n // 2:
            return  # no liveness guarantee without a correct majority
        crash_times = {pid: time for time, pid in crash_plan}
        must_deliver = {
            payload
            for time, sender, payload in arrivals
            if sender not in crashed or time < crash_times.get(sender, float("inf"))
        }
        # Messages broadcast by processes that never crash must reach every
        # correct process (messages from senders that crash later might or
        # might not make it, so only never-crashed senders are required).
        required = {
            payload for time, sender, payload in arrivals if sender not in crashed
        }
        for pid in correct:
            delivered = {payload for _bid, payload in system.abcast(pid).delivered}
            assert required <= delivered

    @given(scenario=scenarios())
    @settings(max_examples=15, deadline=None)
    def test_deliveries_identical_across_correct_processes(self, scenario):
        n, algorithm, seed, arrivals, crash_plan, qos = scenario
        system = run_generated(n, algorithm, seed, arrivals, crash_plan, qos)
        crashed = {pid for _t, pid in crash_plan}
        correct = [pid for pid in range(n) if pid not in crashed]
        if len(correct) <= n // 2:
            return
        sequences = {pid: system.abcast(pid).delivered_ids() for pid in correct}
        reference = sequences[correct[0]]
        for pid in correct[1:]:
            assert sequences[pid] == reference
