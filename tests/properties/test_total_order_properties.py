"""Property-based tests of the atomic broadcast invariants.

Random workloads, crash schedules and failure detector behaviours are
generated with hypothesis; for every generated scenario the uniform atomic
broadcast properties must hold for both algorithms:

* total order (delivery sequences are prefixes of one another),
* integrity (no duplicates, no invented messages),
* validity (messages from correct senders reach every correct process).

The scenarios are kept small so the whole suite stays fast, but each example
still runs a complete simulation with contention, crashes and suspicions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QoSConfig, SystemConfig, build_system
from repro.scenarios.faults import CorrelatedCrash, CrashAt, FaultSchedule, RecoverAt
from tests.conftest import assert_no_duplicates, assert_prefix_consistent


@st.composite
def scenarios(draw):
    n = draw(st.sampled_from([3, 5]))
    algorithm = draw(st.sampled_from(["fd", "gm"]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    message_count = draw(st.integers(min_value=1, max_value=12))
    arrivals = []
    time = 1.0
    for index in range(message_count):
        time += draw(st.floats(min_value=0.1, max_value=40.0))
        sender = draw(st.integers(min_value=0, max_value=n - 1))
        arrivals.append((time, sender, f"m{index}"))
    crash = draw(st.booleans())
    crash_plan = []
    if crash:
        crash_time = draw(st.floats(min_value=5.0, max_value=time + 20.0))
        crash_pid = draw(st.integers(min_value=0, max_value=n - 1))
        crash_plan.append((crash_time, crash_pid))
    mistakes = draw(st.booleans())
    if mistakes:
        qos = QoSConfig(
            detection_time=draw(st.sampled_from([0.0, 10.0, 30.0])),
            mistake_recurrence_time=draw(st.sampled_from([150.0, 400.0, 1000.0])),
            mistake_duration=draw(st.sampled_from([0.0, 5.0, 30.0])),
        )
    else:
        qos = QoSConfig(detection_time=draw(st.sampled_from([0.0, 10.0, 30.0])))
    return n, algorithm, seed, arrivals, crash_plan, qos


def run_generated(n, algorithm, seed, arrivals, crash_plan, qos):
    system = build_system(SystemConfig(n=n, stack=algorithm, seed=seed, fd=qos))
    system.start()
    for time, sender, payload in arrivals:
        system.broadcast_at(time, sender, payload)
    for time, pid in crash_plan:
        system.crash_at(time, pid)
    system.run(until=60_000.0, max_events=1_500_000)
    return system


def gm_blocked_by_view_majority_loss(system, crashed):
    """Whether a GM run ended in the algorithm's documented blocking state.

    The GM algorithm (like the paper's) only guarantees progress while some
    correct member's installed view retains a majority of *alive* members:
    wrong suspicions can shrink the view, and a real crash inside the
    shrunken view then blocks reconfiguration forever even though a global
    majority of processes is alive.  Safety (total order, integrity) still
    holds in that state; only the liveness assertions must be skipped.
    """
    if system.config.algorithm == "fd":
        return False
    for pid in range(system.config.n):
        if pid in crashed:
            continue
        membership = system.membership(pid)
        if not membership.is_member():
            continue
        view = membership.view
        alive = [member for member in view.members if member not in crashed]
        if len(alive) >= view.majority():
            return False
    return True


class TestAtomicBroadcastProperties:
    @given(scenario=scenarios())
    @settings(max_examples=25, deadline=None)
    def test_total_order_and_integrity(self, scenario):
        n, algorithm, seed, arrivals, crash_plan, qos = scenario
        system = run_generated(n, algorithm, seed, arrivals, crash_plan, qos)
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert_no_duplicates(sequences)
        # Integrity: only broadcast messages are delivered.
        sent_payloads = {payload for _t, _s, payload in arrivals}
        for pid in range(n):
            for _bid, payload in system.abcast(pid).delivered:
                assert payload in sent_payloads

    @given(scenario=scenarios())
    @settings(max_examples=25, deadline=None)
    def test_validity_for_correct_senders(self, scenario):
        n, algorithm, seed, arrivals, crash_plan, qos = scenario
        system = run_generated(n, algorithm, seed, arrivals, crash_plan, qos)
        crashed = {pid for _t, pid in crash_plan}
        correct = [pid for pid in range(n) if pid not in crashed]
        if len(correct) <= n // 2:
            return  # no liveness guarantee without a correct majority
        crash_times = {pid: time for time, pid in crash_plan}
        must_deliver = {
            payload
            for time, sender, payload in arrivals
            if sender not in crashed or time < crash_times.get(sender, float("inf"))
        }
        if gm_blocked_by_view_majority_loss(system, crashed):
            return  # documented GM liveness limit: an installed view lost its majority
        # Messages broadcast by processes that never crash must reach every
        # correct process (messages from senders that crash later might or
        # might not make it, so only never-crashed senders are required).
        required = {
            payload for time, sender, payload in arrivals if sender not in crashed
        }
        for pid in correct:
            delivered = {payload for _bid, payload in system.abcast(pid).delivered}
            assert required <= delivered

    @given(scenario=scenarios())
    @settings(max_examples=15, deadline=None)
    def test_deliveries_identical_across_correct_processes(self, scenario):
        n, algorithm, seed, arrivals, crash_plan, qos = scenario
        system = run_generated(n, algorithm, seed, arrivals, crash_plan, qos)
        crashed = {pid for _t, pid in crash_plan}
        correct = [pid for pid in range(n) if pid not in crashed]
        if len(correct) <= n // 2:
            return
        sequences = {pid: system.abcast(pid).delivered_ids() for pid in correct}
        reference = sequences[correct[0]]
        for pid in correct[1:]:
            assert sequences[pid] == reference


@st.composite
def fault_schedules(draw):
    """A random fault schedule that respects f < n/2 at every instant.

    Mixes plain crashes, crash-recovery cycles and correlated crash groups.
    One "slot" of concurrently-down processes is churned through sequential
    crash/recover windows; with n = 5 a second permanently-crashed process or
    a correlated pair may use the remaining budget.

    ``gm-reform`` runs under the same schedules: a slow view change may then
    trigger a (fenced) reformation racing the normal path, and the safety
    properties must survive either winner.
    """
    n = draw(st.sampled_from([3, 5]))
    algorithm = draw(st.sampled_from(["fd", "gm", "gm-reform"]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    detection_time = draw(st.sampled_from([0.0, 5.0, 20.0]))

    message_count = draw(st.integers(min_value=2, max_value=10))
    arrivals = []
    time = 1.0
    for index in range(message_count):
        time += draw(st.floats(min_value=0.5, max_value=60.0))
        sender = draw(st.integers(min_value=0, max_value=n - 1))
        arrivals.append((time, sender, f"m{index}"))

    schedule = FaultSchedule()
    ever_crashed = set()
    budget = (n - 1) // 2

    # Sequential crash/recovery windows of one churned process.
    churned = draw(st.integers(min_value=0, max_value=n - 1))
    cursor = draw(st.floats(min_value=5.0, max_value=50.0))
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        downtime = draw(st.floats(min_value=1.0, max_value=120.0))
        schedule.crash(cursor, churned).recover(cursor + downtime, churned)
        ever_crashed.add(churned)
        cursor += downtime + draw(st.floats(min_value=40.0, max_value=150.0))

    if budget >= 2 and draw(st.booleans()):
        # Use the remaining budget for a permanent fault that never overlaps
        # more than the bound: either one extra crash or a correlated pair
        # when the churned slot is already closed (no windows drawn).
        candidates = sorted(set(range(n)) - {churned})
        extra = draw(st.sampled_from(candidates))
        if not ever_crashed and draw(st.booleans()):
            partner = draw(st.sampled_from([c for c in candidates if c != extra]))
            schedule.add(
                CorrelatedCrash(draw(st.floats(min_value=5.0, max_value=300.0)),
                                (extra, partner))
            )
            ever_crashed.update((extra, partner))
        else:
            schedule.crash(draw(st.floats(min_value=5.0, max_value=300.0)), extra)
            ever_crashed.add(extra)

    return n, algorithm, seed, detection_time, arrivals, schedule, ever_crashed


class TestFaultScheduleProperties:
    """Any schedule respecting f < n/2 preserves total order and agreement."""

    def run_schedule(self, n, algorithm, seed, detection_time, arrivals, schedule):
        config = SystemConfig(
            n=n,
            stack=algorithm,
            seed=seed,
            fd=QoSConfig(detection_time=detection_time),
        )
        system = build_system(config)
        schedule.apply_pre(system)
        system.start()
        for time, sender, payload in arrivals:
            system.broadcast_at(time, sender, payload)
        schedule.schedule(system)
        system.run(until=60_000.0, max_events=1_500_000)
        return system

    @given(case=fault_schedules())
    @settings(max_examples=25, deadline=None)
    def test_total_order_is_preserved(self, case):
        n, algorithm, seed, detection_time, arrivals, schedule, _ever = case
        assert schedule.max_concurrent_crashes() <= (n - 1) // 2
        system = self.run_schedule(n, algorithm, seed, detection_time, arrivals, schedule)
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert_no_duplicates(sequences)

    @given(case=fault_schedules())
    @settings(max_examples=25, deadline=None)
    def test_agreement_among_never_crashed_processes(self, case):
        n, algorithm, seed, detection_time, arrivals, schedule, ever_crashed = case
        system = self.run_schedule(n, algorithm, seed, detection_time, arrivals, schedule)
        stable = [pid for pid in range(n) if pid not in ever_crashed]
        sequences = {pid: system.abcast(pid).delivered_ids() for pid in stable}
        reference = sequences[stable[0]]
        for pid in stable[1:]:
            assert sequences[pid] == reference
        # Validity: messages from never-crashed senders reach every
        # never-crashed process.
        required = {
            payload for _t, sender, payload in arrivals if sender not in ever_crashed
        }
        for pid in stable:
            delivered = {payload for _bid, payload in system.abcast(pid).delivered}
            assert required <= delivered

    def test_recovered_member_receives_full_delivery_prefix(self):
        """Regression: the gm rejoin state-transfer race (hypothesis-found).

        Process 1 acknowledges the batch carrying m0 and crashes before the
        DELIVER arrives; the batch goes stable (its ack was the last one),
        which removes m0 from every member's unstable set.  On recovery p1
        is still suspected, so the view change excludes it and its decided
        union contains only m1 -- historically p1 delivered that union
        (m1 without m0) and the join state transfer, indexed by the
        joiner's delivered count, then skipped m0 forever.  Fixed by (a)
        not delivering the union on the excluded side and (b) re-adding
        acknowledged-but-undelivered messages to the recovering process's
        own unstable set before its resync SYNC.
        """
        schedule = FaultSchedule(
            [CrashAt(time=7.0, pid=1, permanent_suspicion=False), RecoverAt(time=28.0, pid=1)]
        )
        system = self.run_schedule(
            3, "gm", 0, 20.0, [(2.0, 0, "m0"), (3.0, 0, "m1")], schedule
        )
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert_no_duplicates(sequences)
        # The recovered process must end with the full log, not a mid-log
        # suffix: both messages, in order.
        recovered = [payload for _bid, payload in system.abcast(1).delivered]
        assert recovered == ["m0", "m1"]

    def test_recovery_before_detection_receives_full_delivery_prefix(self):
        """Companion regression: rejoin through the *member* resync path.

        Recovering before the failure detector suspects the process keeps
        it a trusted member, so it takes part in the resync view change
        directly; without the ``on_member_recovered`` re-advertisement its
        own SYNC would omit the acknowledged-but-undelivered stable batch
        and the decided union could still start past its prefix.
        """
        schedule = FaultSchedule(
            [CrashAt(time=7.0, pid=1, permanent_suspicion=False), RecoverAt(time=15.0, pid=1)]
        )
        system = self.run_schedule(
            3, "gm", 0, 20.0, [(2.0, 0, "m0"), (3.0, 0, "m1")], schedule
        )
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert_no_duplicates(sequences)
        recovered = [payload for _bid, payload in system.abcast(1).delivered]
        assert recovered == ["m0", "m1"]


@st.composite
def majority_loss_cases(draw):
    """The canonical view-majority-loss state plus a random workload."""
    n = draw(st.sampled_from([3, 5]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    reformation_timeout = draw(st.sampled_from([300.0, 500.0, 900.0]))
    message_count = draw(st.integers(min_value=1, max_value=8))
    arrivals = []
    time = 1.0
    for index in range(message_count):
        # Spread arrivals across the pre-block, blocked and reformed phases.
        time += draw(st.floats(min_value=10.0, max_value=600.0))
        sender = draw(st.integers(min_value=0, max_value=n - 1))
        arrivals.append((time, sender, f"m{index}"))
    return n, seed, reformation_timeout, arrivals


class TestReformationProperties:
    """The state flagged by ``gm_blocked_by_view_majority_loss`` recovers
    under ``gm-reform``: a successor view is installed, total order and
    agreement hold through the reformation, and no split-brain survives
    (every alive member converges on one view of the reformed epoch)."""

    def run_blocked(self, n, stack, seed, reformation_timeout, arrivals):
        config = SystemConfig(
            n=n,
            stack=stack,
            seed=seed,
            fd=QoSConfig(detection_time=10.0),
            reformation_timeout=reformation_timeout,
        )
        system = build_system(config)
        system.start()
        schedule = FaultSchedule.view_majority_loss(n)
        crashed = {
            event.pid for event in schedule.events if isinstance(event, CrashAt)
        }
        schedule.apply(system)
        for time, sender, payload in arrivals:
            system.broadcast_at(time, sender, payload)
        system.run(until=60_000.0, max_events=1_500_000)
        return system, crashed

    @given(case=majority_loss_cases())
    @settings(max_examples=20, deadline=None)
    def test_blocked_state_recovers_under_gm_reform(self, case):
        n, seed, reformation_timeout, arrivals = case
        system, crashed = self.run_blocked(
            n, "gm-reform", seed, reformation_timeout, arrivals
        )
        # The very state that blocks the plain GM stacks is resolved.
        assert not gm_blocked_by_view_majority_loss(system, crashed)
        alive = [pid for pid in range(n) if pid not in crashed]
        members = [pid for pid in alive if system.membership(pid).is_member()]
        views = {system.membership(pid).view for pid in members}
        # No split-brain: one reformed view, every alive process inside it.
        assert len(views) == 1
        (view,) = views
        assert view.epoch >= 1
        assert set(members) == set(view.members) == set(alive)
        # Safety through the reformation: total order and integrity...
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert_no_duplicates(sequences)
        # ...and agreement plus validity among the alive processes: every
        # alive sender's messages deliver everywhere, identically.
        logs = {pid: system.abcast(pid).delivered_ids() for pid in alive}
        reference = logs[alive[0]]
        for pid in alive[1:]:
            assert logs[pid] == reference
        required = {p for _t, s, p in arrivals if s not in crashed}
        for pid in alive:
            delivered = {payload for _bid, payload in system.abcast(pid).delivered}
            assert required <= delivered

    @given(case=majority_loss_cases())
    @settings(max_examples=8, deadline=None)
    def test_blocked_state_stays_blocked_under_plain_gm(self, case):
        n, seed, reformation_timeout, arrivals = case
        system, crashed = self.run_blocked(n, "gm", seed, reformation_timeout, arrivals)
        assert gm_blocked_by_view_majority_loss(system, crashed)
        # Safety still holds in the blocked state.
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert_no_duplicates(sequences)


@st.composite
def partition_cases(draw):
    """A transient minority partition plus a random workload spanning it."""
    n = draw(st.sampled_from([3, 5]))
    stack = draw(st.sampled_from(["gm", "gm-reform"]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    start = draw(st.floats(min_value=400.0, max_value=1_500.0))
    duration = draw(st.floats(min_value=500.0, max_value=3_000.0))
    message_count = draw(st.integers(min_value=2, max_value=10))
    arrivals = []
    time = 1.0
    for index in range(message_count):
        # Spread arrivals across the pre-cut, blocked and healed phases.
        time += draw(st.floats(min_value=10.0, max_value=700.0))
        sender = draw(st.integers(min_value=0, max_value=n - 1))
        arrivals.append((time, sender, f"m{index}"))
    return n, stack, seed, start, duration, arrivals


class TestPartitionSafetyProperties:
    """Safety across a transient minority partition.

    The protocol channels are reliable only between mutually reachable
    processes: frames dropped by the partition mask are never retransmitted,
    so the minority side may stay stalled mid-view-change even after the
    heal.  Safety must nevertheless be unconditional -- the minority never
    delivers past the epoch fence while cut off, and no interleaving of
    cut, suspicion, view change, reformation and heal ever produces two
    total orders.
    """

    #: Grace period for frames already on a receiving CPU when the mask
    #: lands (the drop happens at transmission time, so only already
    #: received frames can still deliver on the minority side).
    SETTLE = 50.0

    def run_partitioned(self, n, stack, seed, start, duration, arrivals):
        system = build_system(
            SystemConfig(
                n=n,
                stack=stack,
                seed=seed,
                fd=QoSConfig(detection_time=10.0),
                reformation_timeout=500.0,
            )
        )
        deliveries = []
        system.add_delivery_listener(
            lambda pid, bid, _payload: deliveries.append((system.sim.now, pid, bid))
        )
        system.start()
        FaultSchedule.partition_transient(n, start, duration).apply(system)
        for time, sender, payload in arrivals:
            system.broadcast_at(time, sender, payload)
        system.run(until=60_000.0, max_events=1_500_000)
        minority = set(range(n - (n - 1) // 2, n))
        return system, deliveries, minority

    @given(case=partition_cases())
    @settings(max_examples=15, deadline=None)
    def test_minority_never_delivers_past_the_epoch_fence(self, case):
        n, stack, seed, start, duration, arrivals = case
        system, deliveries, minority = self.run_partitioned(
            n, stack, seed, start, duration, arrivals
        )
        # While cut off the minority cannot gather a view (or reformation)
        # majority, so nothing new may deliver on its side of the fence.
        fenced = [
            (time, pid, bid)
            for time, pid, bid in deliveries
            if pid in minority and start + self.SETTLE <= time <= start + duration
        ]
        assert fenced == [], f"minority delivered past the fence: {fenced}"
        # The minority's log stays a prefix of the majority's single order.
        sequences = system.delivery_sequences()
        majority_log = sequences[0]
        for pid in minority:
            assert sequences[pid] == majority_log[: len(sequences[pid])]

    @given(case=partition_cases())
    @settings(max_examples=15, deadline=None)
    def test_healing_converges_to_one_total_order(self, case):
        n, stack, seed, start, duration, arrivals = case
        system, _deliveries, minority = self.run_partitioned(
            n, stack, seed, start, duration, arrivals
        )
        sequences = system.delivery_sequences()
        assert_prefix_consistent(sequences)
        assert_no_duplicates(sequences)
        # The whole group converges on one complete identical order: the
        # majority progresses through the cut, and after the heal the
        # minority re-enters (re-announced view change -> NOT_MEMBER ->
        # join protocol -> prefix-indexed state transfer; the prefix fence
        # keeps it off the reform union's fast path) and catches all the
        # way up, including every message that went *stable* on the
        # majority side while the minority was cut off.
        logs = {pid: system.abcast(pid).delivered_ids() for pid in range(n)}
        reference = logs[0]
        for pid in range(1, n):
            assert logs[pid] == reference, (
                f"p{pid} did not converge: {logs[pid]} != {reference}"
            )
        required = {p for _t, s, p in arrivals}
        delivered = {payload for _bid, payload in system.abcast(0).delivered}
        assert required <= delivered


@st.composite
def gray_cases(draw):
    """A gray CPU degradation window plus a random workload spanning it."""
    n = draw(st.sampled_from([3, 5]))
    stack = draw(st.sampled_from(["gm", "gm-reform"]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    victim = draw(st.integers(min_value=0, max_value=n - 1))
    factor = draw(st.sampled_from([2.0, 8.0, 32.0]))
    start = draw(st.floats(min_value=100.0, max_value=1_000.0))
    duration = draw(st.floats(min_value=500.0, max_value=3_000.0))
    message_count = draw(st.integers(min_value=2, max_value=10))
    arrivals = []
    time = 1.0
    for index in range(message_count):
        time += draw(st.floats(min_value=10.0, max_value=500.0))
        sender = draw(st.integers(min_value=0, max_value=n - 1))
        arrivals.append((time, sender, f"m{index}"))
    return n, stack, seed, victim, factor, start, duration, arrivals


class TestGrayFailureProperties:
    """A gray-degraded (alive-but-slow) process under the QoS detector.

    The clock-driven QoS detector never confuses slowness with a crash, so
    the degraded process must never be excluded from the group -- and once
    the window ends it catches up to the full total order.
    """

    @given(case=gray_cases())
    @settings(max_examples=15, deadline=None)
    def test_degraded_process_is_never_excluded_and_catches_up(self, case):
        n, stack, seed, victim, factor, start, duration, arrivals = case
        system = build_system(
            SystemConfig(
                n=n, stack=stack, seed=seed, fd=QoSConfig(detection_time=10.0)
            )
        )
        system.start()
        FaultSchedule().degrade(start, victim, factor).restore(
            start + duration, victim
        ).apply(system)
        for time, sender, payload in arrivals:
            system.broadcast_at(time, sender, payload)
        system.run(until=60_000.0, max_events=1_500_000)
        # Never excluded: every process's installed view still contains the
        # degraded member.
        for pid in range(n):
            assert victim in system.membership(pid).view.members
            assert system.membership(pid).is_member()
        # And it holds the same complete log as everyone else.
        logs = {pid: system.abcast(pid).delivered_ids() for pid in range(n)}
        reference = logs[0]
        for pid in range(1, n):
            assert logs[pid] == reference
        assert len(reference) == len(arrivals)
        assert_no_duplicates(system.delivery_sequences())
