"""Property-based tests for the statistics helpers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import summarize

samples = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=200,
)


class TestSummaryProperties:
    @given(values=samples)
    @settings(max_examples=100, deadline=None)
    def test_mean_within_min_max(self, values):
        summary = summarize(values)
        assert summary.minimum - 1e-9 <= summary.mean <= summary.maximum + 1e-9

    @given(values=samples)
    @settings(max_examples=100, deadline=None)
    def test_interval_is_symmetric_and_contains_mean(self, values):
        summary = summarize(values)
        assert summary.ci_low <= summary.mean <= summary.ci_high
        upper = summary.ci_high - summary.mean
        lower = summary.mean - summary.ci_low
        assert abs(upper - lower) <= 1e-9 * max(1.0, abs(upper), abs(lower))

    @given(values=samples)
    @settings(max_examples=100, deadline=None)
    def test_count_and_nonnegative_std(self, values):
        summary = summarize(values)
        assert summary.count == len(values)
        assert summary.std >= 0.0

    @given(values=samples, shift=st.floats(min_value=-1e5, max_value=1e5, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_shift_invariance_of_interval_width(self, values, shift):
        base = summarize(values)
        shifted = summarize([v + shift for v in values])
        assert abs(base.ci_halfwidth - shifted.ci_halfwidth) < 1e-6 or (
            base.ci_halfwidth == shifted.ci_halfwidth
        )

    @given(values=samples)
    @settings(max_examples=60, deadline=None)
    def test_duplicating_the_sample_keeps_the_mean(self, values):
        once = summarize(values)
        twice = summarize(values + values)
        assert abs(once.mean - twice.mean) < 1e-9
        assert twice.ci_halfwidth <= once.ci_halfwidth + 1e-9
