"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator

delays = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


class TestEngineProperties:
    @given(delays=delays)
    @settings(max_examples=60, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        simulator = Simulator()
        fired = []
        for delay in delays:
            simulator.schedule(delay, lambda: fired.append(simulator.now))
        simulator.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(delays=delays)
    @settings(max_examples=60, deadline=None)
    def test_end_time_is_max_delay(self, delays):
        simulator = Simulator()
        for delay in delays:
            simulator.schedule(delay, lambda: None)
        end = simulator.run()
        assert end == max(delays)

    @given(delays=delays, until=st.floats(min_value=0.0, max_value=1000.0))
    @settings(max_examples=60, deadline=None)
    def test_run_until_never_executes_later_events(self, delays, until):
        simulator = Simulator()
        fired = []
        for delay in delays:
            simulator.schedule(delay, lambda d=delay: fired.append(d))
        simulator.run(until=until)
        assert all(delay <= until for delay in fired)
        expected = len([d for d in delays if d <= until])
        assert len(fired) == expected

    @given(delays=delays)
    @settings(max_examples=40, deadline=None)
    def test_cancelling_everything_executes_nothing(self, delays):
        simulator = Simulator()
        handles = [simulator.schedule(delay, lambda: None) for delay in delays]
        for handle in handles:
            handle.cancel()
        simulator.run()
        assert simulator.events_processed == 0
