"""Property-based tests of the replicated state machine determinism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replication.state_machine import Command, KeyValueStore

keys = st.sampled_from(["a", "b", "c", "d"])

commands = st.one_of(
    st.builds(Command, st.just("put"), keys, st.integers(min_value=-100, max_value=100)),
    st.builds(Command, st.just("get"), keys),
    st.builds(Command, st.just("delete"), keys),
    st.builds(Command, st.just("increment"), keys, st.integers(min_value=1, max_value=5)),
)


class TestKeyValueStoreProperties:
    @given(script=st.lists(commands, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_same_script_same_state(self, script):
        a, b = KeyValueStore(), KeyValueStore()
        replies_a = [a.apply(command) for command in script]
        replies_b = [b.apply(command) for command in script]
        assert replies_a == replies_b
        assert a.snapshot() == b.snapshot()

    @given(script=st.lists(commands, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_applied_counter_matches_script_length(self, script):
        store = KeyValueStore()
        for command in script:
            store.apply(command)
        assert store.applied == len(script)

    @given(script=st.lists(commands, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_reads_never_modify_state(self, script):
        store = KeyValueStore()
        for command in script:
            store.apply(command)
        before = store.snapshot()
        store.apply(Command("get", "a"))
        store.apply(Command("get", "zzz"))
        assert store.snapshot() == before
