"""Unit tests for the latency recorder."""

import pytest

from repro import SystemConfig, build_system
from repro.core.types import BroadcastID
from repro.metrics.latency import LatencyRecorder


class TestStandaloneRecorder:
    def test_latency_is_first_delivery_minus_broadcast(self):
        recorder = LatencyRecorder()
        bid = BroadcastID(0, 1)
        recorder.record_broadcast(bid, 10.0)
        recorder.record_delivery(bid, 18.0)
        recorder.record_delivery(bid, 14.0)
        recorder.record_delivery(bid, 25.0)
        assert recorder.latency(bid) == pytest.approx(4.0)
        assert recorder.first_delivery_time(bid) == 14.0
        assert recorder.delivery_count(bid) == 3

    def test_unknown_message_has_no_latency(self):
        recorder = LatencyRecorder()
        assert recorder.latency(BroadcastID(0, 1)) is None

    def test_undelivered_listing(self):
        recorder = LatencyRecorder()
        delivered = BroadcastID(0, 1)
        pending = BroadcastID(0, 2)
        recorder.record_broadcast(delivered, 1.0)
        recorder.record_broadcast(pending, 2.0)
        recorder.record_delivery(delivered, 5.0)
        assert recorder.undelivered() == [pending]
        assert recorder.is_delivered(delivered)
        assert not recorder.is_delivered(pending)

    def test_latencies_can_be_restricted(self):
        recorder = LatencyRecorder()
        a, b = BroadcastID(0, 1), BroadcastID(1, 1)
        for bid, start in ((a, 0.0), (b, 10.0)):
            recorder.record_broadcast(bid, start)
            recorder.record_delivery(bid, start + 7.0)
        assert set(recorder.latencies()) == {a, b}
        assert set(recorder.latencies(only=[a])) == {a}

    def test_summary(self):
        recorder = LatencyRecorder()
        for i in range(5):
            bid = BroadcastID(0, i + 1)
            recorder.record_broadcast(bid, 0.0)
            recorder.record_delivery(bid, float(i + 1))
        summary = recorder.summary()
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)

    def test_first_broadcast_time_wins(self):
        recorder = LatencyRecorder()
        bid = BroadcastID(0, 1)
        recorder.record_broadcast(bid, 5.0)
        recorder.record_broadcast(bid, 9.0)
        assert recorder.broadcast_time(bid) == 5.0

    def test_tracked_count(self):
        recorder = LatencyRecorder()
        recorder.record_broadcast(BroadcastID(0, 1), 0.0)
        recorder.record_broadcast(BroadcastID(0, 2), 1.0)
        assert recorder.tracked_count() == 2


class TestAttachedRecorder:
    def test_attached_recorder_tracks_system_messages(self):
        system = build_system(SystemConfig(n=3, stack="fd", seed=3))
        recorder = LatencyRecorder()
        recorder.attach(system)
        system.start()
        system.broadcast_at(5.0, 1, "x")
        system.run(until=100.0)
        assert recorder.tracked_count() == 1
        (latency,) = recorder.latencies().values()
        assert latency > 0
        bid = next(iter(recorder.latencies()))
        assert recorder.delivery_count(bid) == 3
