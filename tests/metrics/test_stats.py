"""Unit tests for summary statistics."""

import math

import pytest

from repro.metrics.stats import (
    interarrival_from_throughput,
    summarize,
    throughput_from_interarrival,
)


class TestSummarize:
    def test_empty_sample(self):
        summary = summarize([])
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_single_sample(self):
        summary = summarize([5.0])
        assert summary.count == 1
        assert summary.mean == 5.0
        assert summary.std == 0.0
        assert summary.ci_halfwidth == float("inf")

    def test_mean_and_std(self):
        summary = summarize([2.0, 4.0, 6.0, 8.0])
        assert summary.mean == pytest.approx(5.0)
        assert summary.std == pytest.approx(2.581988897)

    def test_min_max(self):
        summary = summarize([3.0, 1.0, 7.0])
        assert summary.minimum == 1.0
        assert summary.maximum == 7.0

    def test_confidence_interval_contains_mean(self):
        summary = summarize(range(100))
        assert summary.ci_low < summary.mean < summary.ci_high

    def test_identical_values_have_zero_interval(self):
        summary = summarize([4.0] * 20)
        assert summary.ci_halfwidth == pytest.approx(0.0)

    def test_interval_shrinks_with_more_samples(self):
        small = summarize([1.0, 2.0, 3.0, 4.0, 5.0] * 2)
        large = summarize([1.0, 2.0, 3.0, 4.0, 5.0] * 50)
        assert large.ci_halfwidth < small.ci_halfwidth

    def test_string_rendering(self):
        assert "no samples" in str(summarize([]))
        assert "n=3" in str(summarize([1.0, 2.0, 3.0]))

    def test_known_t_interval(self):
        # For n=5 samples [1..5]: mean 3, std sqrt(2.5), t_{0.975,4} = 2.776.
        summary = summarize([1, 2, 3, 4, 5])
        expected = 2.7764451052 * math.sqrt(2.5) / math.sqrt(5)
        assert summary.ci_halfwidth == pytest.approx(expected, rel=1e-3)


class TestConversions:
    def test_round_trip(self):
        assert throughput_from_interarrival(interarrival_from_throughput(250.0)) == pytest.approx(250.0)

    def test_throughput_to_interarrival(self):
        assert interarrival_from_throughput(100.0) == pytest.approx(10.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            interarrival_from_throughput(0.0)
        with pytest.raises(ValueError):
            throughput_from_interarrival(-1.0)
