"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

import pytest

from repro import BroadcastSystem, SystemConfig, build_system
from repro.core.types import BroadcastID
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.rng import RandomStreams


# --------------------------------------------------------------------------- helpers


def make_simulator() -> Simulator:
    """A fresh simulation kernel."""
    return Simulator()


def make_network(n: int = 3, lambda_cpu: float = 1.0, sim: Simulator = None) -> Network:
    """A network with ``n`` attached no-op processes is NOT created here;
    callers attach their own delivery callbacks."""
    sim = sim or Simulator()
    return Network(sim, NetworkConfig(n=n, lambda_cpu=lambda_cpu))


def run_workload(
    system: BroadcastSystem,
    broadcasts: Sequence,
    until: float = 60_000.0,
    max_events: int = 2_000_000,
) -> None:
    """Schedule ``broadcasts`` (time, sender, payload) and run the system."""
    system.start()
    for time, sender, payload in broadcasts:
        system.broadcast_at(time, sender, payload)
    system.run(until=until, max_events=max_events)


def poisson_broadcasts(
    count: int,
    rate_per_ms: float,
    senders: Sequence[int],
    seed: int = 0,
    start: float = 1.0,
) -> List:
    """Generate a simple random broadcast schedule for integration tests."""
    rnd = random.Random(seed)
    time = start
    plan = []
    for i in range(count):
        time += rnd.expovariate(rate_per_ms)
        plan.append((time, rnd.choice(list(senders)), f"payload-{i}"))
    return plan


def assert_prefix_consistent(sequences: Dict[int, List[BroadcastID]], processes=None) -> None:
    """Assert the total-order property: delivery sequences are prefixes of each other."""
    pids = list(processes) if processes is not None else list(sequences)
    for i, a in enumerate(pids):
        for b in pids[i + 1 :]:
            seq_a, seq_b = sequences[a], sequences[b]
            prefix = min(len(seq_a), len(seq_b))
            assert seq_a[:prefix] == seq_b[:prefix], (
                f"total order violated between p{a} and p{b}: "
                f"{seq_a[:prefix]} vs {seq_b[:prefix]}"
            )


def assert_no_duplicates(sequences: Dict[int, List[BroadcastID]]) -> None:
    """Assert no process delivered the same message twice."""
    for pid, sequence in sequences.items():
        assert len(sequence) == len(set(sequence)), f"p{pid} delivered duplicates"


# --------------------------------------------------------------------------- fixtures


@pytest.fixture
def simulator() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def rng() -> RandomStreams:
    """Deterministic random streams for tests."""
    return RandomStreams(seed=1234)


@pytest.fixture(params=["fd", "gm"])
def algorithm(request) -> str:
    """Parametrised over the two uniform atomic broadcast algorithms."""
    return request.param


@pytest.fixture(params=["fd", "gm", "gm-nonuniform"])
def any_algorithm(request) -> str:
    """Parametrised over all atomic broadcast variants."""
    return request.param


@pytest.fixture
def small_system(algorithm) -> BroadcastSystem:
    """A three-process system running the parametrised algorithm."""
    return build_system(SystemConfig(n=3, stack=algorithm, seed=7))
