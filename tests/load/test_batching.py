"""Tests for the request-batching atomic broadcast wrapper."""

import pytest

from repro import SystemConfig, build_system
from repro.core.types import AtomicBroadcast
from repro.load.batching import BATCH_TAG, BatchingAtomicBroadcast


def batched_system(algorithm="fd", n=3, seed=21, max_batch=4, max_delay=5.0, **overrides):
    return build_system(
        SystemConfig(
            n=n,
            stack=algorithm,
            seed=seed,
            max_batch=max_batch,
            max_delay=max_delay,
            **overrides,
        )
    )


class TestConstruction:
    def test_unbatched_config_builds_bare_abcasts(self, any_algorithm):
        system = build_system(SystemConfig(n=3, stack=any_algorithm, seed=21))
        for abcast in system.abcasts:
            assert not isinstance(abcast, BatchingAtomicBroadcast)

    def test_batched_config_wraps_every_process(self, any_algorithm):
        system = build_system(
            SystemConfig(n=3, stack=any_algorithm, seed=21, max_batch=4)
        )
        for abcast in system.abcasts:
            assert isinstance(abcast, BatchingAtomicBroadcast)
            assert isinstance(abcast.inner, AtomicBroadcast)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(n=3, max_batch=-1)
        with pytest.raises(ValueError):
            SystemConfig(n=3, max_batch=2, max_delay=-0.5)


class TestBatching:
    def test_full_batch_flushes_into_one_inner_broadcast(self, algorithm):
        system = batched_system(algorithm, max_batch=3, max_delay=50.0)
        batcher = system.abcasts[0]
        inner_sent = []
        batcher.inner.add_broadcast_listener(
            lambda bid, payload: inner_sent.append(payload)
        )

        def send_three():
            for i in range(3):
                batcher.broadcast(f"m{i}")

        system.sim.schedule_at(1.0, send_three)
        system.run(until=500.0)
        assert len(inner_sent) == 1
        tag, entries = inner_sent[0]
        assert tag == BATCH_TAG
        assert [payload for _bid, payload in entries] == ["m0", "m1", "m2"]
        assert batcher.batches_flushed == 1

    def test_partial_batch_flushes_after_max_delay(self, algorithm):
        system = batched_system(algorithm, max_batch=10, max_delay=7.0)
        batcher = system.abcasts[0]
        system.sim.schedule_at(1.0, batcher.broadcast, "lonely")
        system.run(until=500.0)
        assert batcher.batches_flushed == 1
        assert batcher.pending_count == 0
        for abcast in system.abcasts:
            assert [p for _bid, p in abcast.delivered] == ["lonely"]

    def test_all_payloads_delivered_in_identical_total_order(self, algorithm):
        system = batched_system(algorithm, max_batch=3, max_delay=4.0)
        expected = []
        for i in range(11):
            sender = i % 3
            payload = f"p{sender}-{i}"
            expected.append(payload)
            system.sim.schedule_at(
                1.0 + 2.0 * i, system.abcasts[sender].broadcast, payload
            )
        system.run(until=2000.0)
        orders = [[p for _bid, p in abcast.delivered] for abcast in system.abcasts]
        assert all(sorted(order) == sorted(expected) for order in orders)
        assert all(order == orders[0] for order in orders)

    def test_broadcast_ids_are_the_wrapper_ids(self, algorithm):
        system = batched_system(algorithm, max_batch=2, max_delay=3.0)
        batcher = system.abcasts[0]
        ids = []
        system.sim.schedule_at(1.0, lambda: ids.append(batcher.broadcast("a")))
        system.sim.schedule_at(1.5, lambda: ids.append(batcher.broadcast("b")))
        system.run(until=500.0)
        delivered_ids = [bid for bid, _p in system.abcasts[1].delivered]
        assert delivered_ids == ids

    def test_non_batch_payloads_pass_through(self, algorithm):
        # A payload broadcast directly on the inner abcast (e.g. a view
        # change or a legacy caller) must surface through the wrapper.
        system = batched_system(algorithm, max_batch=4, max_delay=5.0)
        batcher = system.abcasts[0]
        system.sim.schedule_at(1.0, batcher.inner.broadcast, "raw")
        system.run(until=500.0)
        assert [p for _bid, p in batcher.delivered] == ["raw"]

    def test_own_on_message_is_never_used(self, algorithm):
        system = batched_system(algorithm)
        with pytest.raises(RuntimeError):
            system.abcasts[0].on_message(1, "unexpected")


class TestCrashRecovery:
    def test_crash_drops_timer_but_keeps_pending(self, algorithm):
        system = batched_system(algorithm, max_batch=10, max_delay=5.0)
        batcher = system.abcasts[0]
        system.sim.schedule_at(1.0, batcher.broadcast, "buffered")
        system.crash_at(2.0, 0)
        system.run(until=100.0)
        assert batcher.pending_count == 1
        assert batcher.batches_flushed == 0

    def test_recover_rearms_and_flushes_buffered_payloads(self, algorithm):
        system = batched_system(
            algorithm, max_batch=10, max_delay=5.0, seed=23
        )
        batcher = system.abcasts[0]
        system.sim.schedule_at(1.0, batcher.broadcast, "survivor")
        system.crash_at(2.0, 0)
        system.recover_at(50.0, 0)
        system.run(until=2000.0)
        assert batcher.pending_count == 0
        assert any(p == "survivor" for _bid, p in system.abcasts[1].delivered)


class TestThroughputGain:
    def test_batching_amortizes_the_per_message_cpu_cost(self):
        # The acceptance-criterion shape at unit scale: the same overload
        # burst drains at least 2x faster once k requests share one
        # ordering step (per-message lambda cost amortized k-fold).
        def drain_time(max_batch):
            system = build_system(
                SystemConfig(n=4, stack="fd", seed=31, max_batch=max_batch, max_delay=2.0)
            )
            count = 400
            for i in range(count):
                # Offered far above capacity: one request every 0.2 ms,
                # all through one ingress so batches actually fill.
                system.sim.schedule_at(
                    1.0 + 0.2 * i, system.abcasts[0].broadcast, f"m{i}"
                )
            done = []

            def check(_pid, _bid, _payload):
                if all(len(ab.delivered) == count for ab in system.abcasts):
                    done.append(system.sim.now)
                    system.sim.stop()

            system.add_delivery_listener(check)
            system.run(until=60_000.0)
            assert done, "the burst never fully delivered"
            return done[0]

        unbatched = drain_time(0)
        batched = drain_time(8)
        assert unbatched / batched >= 2.0
