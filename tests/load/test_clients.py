"""Tests for the open- and closed-loop client populations."""

import pytest

from repro import SystemConfig, build_system
from repro.load.clients import ClosedLoopClients, CommandMix, OpenLoopClients
from repro.load.service import AdmissionConfig, LoadTestedService
from repro.sim.rng import RandomStreams


def make_service(algorithm="fd", n=3, seed=41, admission=None, **overrides):
    system = build_system(SystemConfig(n=n, stack=algorithm, seed=seed, **overrides))
    return LoadTestedService(system, admission=admission)


class TestCommandMix:
    def test_default_mix_draws_valid_commands(self):
        mix = CommandMix()
        rng = RandomStreams(seed=5).stream("mix")
        operations = set()
        for i in range(200):
            command = mix.draw(rng, client=i % 4, request_id=i)
            operations.add(command.operation)
            assert command.request_id == i
            if command.operation == "put":
                assert command.value is not None
            if command.operation == "increment":
                assert command.key.startswith("ctr-")
            else:
                assert command.key.startswith("key-")
        assert operations == {"put", "get", "increment", "delete"}

    def test_draws_are_deterministic_per_seed(self):
        mix = CommandMix()
        first = [
            mix.draw(RandomStreams(seed=5).stream("mix"), 0, i) for i in range(20)
        ]
        second = [
            mix.draw(RandomStreams(seed=5).stream("mix"), 0, i) for i in range(20)
        ]
        assert first == second

    def test_single_operation_mix(self):
        mix = CommandMix(put=0.0, get=1.0, increment=0.0, delete=0.0)
        rng = RandomStreams(seed=5).stream("mix")
        assert all(
            mix.draw(rng, 0, i).operation == "get" for i in range(50)
        )

    def test_invalid_mixes_rejected(self):
        with pytest.raises(ValueError):
            CommandMix(put=0.0, get=0.0, increment=0.0, delete=0.0)
        with pytest.raises(ValueError):
            CommandMix(put=-0.1)
        with pytest.raises(ValueError):
            CommandMix(keyspace=0)


class TestOpenLoop:
    def test_schedules_exactly_count_requests(self, algorithm):
        service = make_service(algorithm)
        clients = OpenLoopClients(service, offered_load=100.0, num_clients=3)
        clients.schedule_requests(40)
        service.system.run(until=10_000.0)
        assert clients.issued == 40
        assert len(service.requests) == 40

    def test_uniform_and_poisson_share_the_mean_rate(self):
        times = {}
        for arrival in ("poisson", "uniform"):
            service = make_service()
            clients = OpenLoopClients(
                service, offered_load=200.0, arrival=arrival
            )
            times[arrival] = clients.schedule_requests(400)
        # 400 arrivals at 200/s: both disciplines take ~2000 ms.
        for last in times.values():
            assert 1400.0 < last < 2800.0

    def test_identical_seeds_identical_runs(self, algorithm):
        def signature():
            service = make_service(algorithm, seed=77)
            OpenLoopClients(service, offered_load=150.0, num_clients=2).schedule_requests(30)
            service.system.run(until=10_000.0)
            return [
                (r.command.operation, r.command.key, r.submitted_at, r.completed_at)
                for r in service.requests
            ]

        assert signature() == signature()

    def test_invalid_parameters_rejected(self):
        service = make_service()
        with pytest.raises(ValueError):
            OpenLoopClients(service, offered_load=0.0)
        with pytest.raises(ValueError):
            OpenLoopClients(service, offered_load=10.0, arrival="bursty")
        with pytest.raises(ValueError):
            OpenLoopClients(service, offered_load=10.0, num_clients=0)

    def test_crashed_ingress_is_skipped(self):
        service = make_service(n=3)
        service.system.start()
        service.system.process(0).crash()
        clients = OpenLoopClients(service, offered_load=100.0, num_clients=6)
        clients.schedule_requests(30)
        service.system.run(until=10_000.0)
        assert all(request.sender != 0 for request in service.requests)


class TestClosedLoop:
    def test_each_client_keeps_one_request_outstanding(self, algorithm):
        service = make_service(algorithm)
        population = ClosedLoopClients(service, num_clients=4, think_time=10.0)
        in_flight = {}
        max_outstanding = [0]

        original = service.submit

        def tracking_submit(sender, command, on_complete=None):
            in_flight[command.client] = in_flight.get(command.client, 0) + 1
            max_outstanding[0] = max(max_outstanding[0], max(in_flight.values()))

            def done(request):
                in_flight[request.command.client] -= 1
                if on_complete is not None:
                    on_complete(request)

            return original(sender, command, on_complete=done)

        service.submit = tracking_submit
        population.start(total_requests=60)
        service.system.run(until=100_000.0)
        assert population.issued == 60
        assert max_outstanding[0] == 1

    def test_stops_after_total_requests(self, algorithm):
        service = make_service(algorithm)
        population = ClosedLoopClients(service, num_clients=3, think_time=2.0)
        population.start(total_requests=25)
        service.system.run(until=100_000.0)
        assert population.issued == 25
        assert sum(1 for r in service.requests if r.completed) == 25

    def test_zero_think_time_with_shedding_terminates(self):
        # Every shed completes synchronously; the population must re-submit
        # through the kernel instead of recursing.
        service = make_service(
            n=3, admission=AdmissionConfig(max_inflight=1, max_queue=0)
        )
        population = ClosedLoopClients(service, num_clients=5, think_time=0.0)
        population.start(total_requests=300)
        service.system.run(until=100_000.0)
        assert population.issued == 300
        assert service.shed > 0

    def test_cannot_start_twice(self):
        service = make_service()
        population = ClosedLoopClients(service, num_clients=2, think_time=1.0)
        population.start(total_requests=5)
        with pytest.raises(RuntimeError):
            population.start(total_requests=5)

    def test_negative_think_time_rejected(self):
        with pytest.raises(ValueError):
            ClosedLoopClients(make_service(), num_clients=2, think_time=-1.0)
