"""Tests for the admission-controlled load-tested service.

Includes the fault-schedule suite: the replicated KV service under
crash/recovery mid-load must keep its applied logs convergent and must
neither lose nor duplicate the reply of any acknowledged request.
"""

import pytest

from repro import QoSConfig, SystemConfig, build_system
from repro.load.clients import ClosedLoopClients, CommandMix, OpenLoopClients
from repro.load.service import AdmissionConfig, LoadTestedService
from repro.replication.state_machine import Command


def make_service(algorithm="fd", n=3, seed=61, **kwargs):
    overrides = kwargs.pop("config", {})
    system = build_system(SystemConfig(n=n, stack=algorithm, seed=seed, **overrides))
    return LoadTestedService(system, **kwargs)


def put(i, client=0):
    return Command("put", f"k{i}", i, client=client, request_id=i)


class TestAdmission:
    def test_unbounded_window_admits_everything(self, algorithm):
        service = make_service(algorithm)
        for i in range(20):
            service.submit_at(1.0 + i, 0, put(i))
        service.system.run(until=5000.0)
        assert service.outcome_counts() == {
            "admitted": 20, "queued": 0, "shed": 0, "local_reads": 0
        }

    def test_window_queues_then_sheds(self):
        service = make_service(
            admission=AdmissionConfig(max_inflight=2, max_queue=3)
        )
        system = service.system
        system.start()
        statuses = [service.submit(0, put(i)).status for i in range(7)]
        assert statuses == [
            "admitted", "admitted", "queued", "queued", "queued", "shed", "shed"
        ]
        assert service.inflight == 2
        assert service.queue_depth == 3
        assert service.queue_depth_hwm == 3
        system.run(until=5000.0)
        # Queued requests were admitted as the window freed; all complete.
        assert service.queue_depth == 0
        assert service.inflight == 0
        completed = [r for r in service.requests if not r.shed]
        assert len(completed) == 5
        assert all(r.response_time is not None for r in completed)

    def test_shed_requests_complete_immediately_without_reply(self):
        service = make_service(
            admission=AdmissionConfig(max_inflight=1, max_queue=0)
        )
        service.system.start()
        service.submit(0, put(0))
        shed = service.submit(0, put(1))
        assert shed.status == "shed"
        assert shed.completed and shed.shed
        assert shed.reply is None and shed.response_time is None

    def test_queued_requests_complete_in_fifo_order(self):
        service = make_service(
            admission=AdmissionConfig(max_inflight=1, max_queue=8)
        )
        service.system.start()
        for i in range(6):
            service.submit(0, put(i))
        service.system.run(until=10_000.0)
        ordered = [r.command.key for r in service.requests if not r.shed]
        applied = [c.key for c in service.replicated.applied_log[0]]
        assert applied == ordered == [f"k{i}" for i in range(6)]

    def test_queueing_delay_counts_into_response_time(self):
        service = make_service(admission=AdmissionConfig(max_inflight=1, max_queue=8))
        service.system.start()
        first = service.submit(0, put(0))
        queued = service.submit(0, put(1))
        service.system.run(until=10_000.0)
        assert queued.response_time > first.response_time

    def test_invalid_admission_rejected(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_inflight=-1)
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue=-1)
        with pytest.raises(ValueError):
            make_service(consistency="eventual")


class TestConsistencyModes:
    def test_local_get_bypasses_broadcast_and_window(self):
        service = make_service(
            consistency="local",
            admission=AdmissionConfig(max_inflight=1, max_queue=0),
        )
        service.system.start()
        service.submit(0, put(0))  # occupies the whole window
        read = service.submit(0, Command("get", "k0", client=1, request_id=1))
        assert read.status == "local"
        assert read.completed and not read.shed
        assert service.local_reads == 1

    def test_local_reads_can_be_stale(self):
        service = make_service(consistency="local")
        service.system.start()
        service.submit(1, put(0))
        # Read through a different ingress before anything is delivered.
        stale = service.submit(0, Command("get", "k0", client=1, request_id=1))
        assert stale.reply == ("value", None)
        service.system.run(until=5000.0)
        fresh = service.submit(0, Command("get", "k0", client=1, request_id=2))
        assert fresh.reply == ("value", 0)

    def test_ordered_mode_orders_reads_too(self, algorithm):
        service = make_service(algorithm, consistency="ordered")
        service.submit_at(1.0, 0, put(0))
        service.submit_at(2.0, 0, Command("get", "k0", client=1, request_id=1))
        service.system.run(until=5000.0)
        assert service.local_reads == 0
        get_request = service.requests[1]
        assert get_request.reply == ("value", 0)
        # The read went through the log on every replica.
        for pid in range(3):
            ops = [c.operation for c in service.replicated.applied_log[pid]]
            assert ops == ["put", "get"]


class TestFaultSchedules:
    """Satellite: the service under crash/recovery fault schedules."""

    def crashy_run(self, algorithm, *, recover_at=None, seed=71):
        service = make_service(
            algorithm,
            n=4,
            seed=seed,
            admission=AdmissionConfig(max_inflight=16, max_queue=32),
            config={"fd": QoSConfig(detection_time=10.0)},
        )
        system = service.system
        clients = OpenLoopClients(
            service, offered_load=150.0, num_clients=4, senders=[1, 2, 3]
        )
        clients.schedule_requests(60)
        system.crash_at(100.0, 0)
        if recover_at is not None:
            system.recover_at(recover_at, 0)
        system.run(until=20_000.0)
        return service

    def test_crash_mid_load_keeps_applied_logs_convergent(self, algorithm):
        service = self.crashy_run(algorithm)
        assert service.replicas_consistent()
        # The survivors all applied every completed request.
        completed = [r for r in service.requests if r.response_time is not None]
        assert len(completed) == 60
        for pid in (1, 2, 3):
            assert len(service.replicated.applied_log[pid]) == 60

    def test_crash_recover_mid_load_converges(self, algorithm):
        service = self.crashy_run(algorithm, recover_at=400.0)
        assert service.replicas_consistent()
        completed = [r for r in service.requests if r.response_time is not None]
        assert len(completed) == 60

    def test_no_lost_or_duplicate_replies_for_acknowledged_requests(self, algorithm):
        service = self.crashy_run(algorithm, recover_at=400.0)
        acknowledged = [r for r in service.requests if r.response_time is not None]
        # Every acknowledged request is applied exactly once per correct
        # replica: no duplicates (idempotent delivery) and no losses.
        for pid in service.system.correct_processes():
            log = service.replicated.applied_log[pid]
            ids = [(c.client, c.request_id) for c in log]
            assert len(ids) == len(set(ids))
            applied = set(ids)
            for request in acknowledged:
                key = (request.command.client, request.command.request_id)
                assert key in applied

    def test_completion_fires_exactly_once_per_request(self, algorithm):
        service = make_service(
            algorithm,
            n=4,
            admission=AdmissionConfig(max_inflight=4, max_queue=8),
            config={"fd": QoSConfig(detection_time=10.0)},
        )
        completions = {}
        service.add_completion_listener(
            lambda request: completions.__setitem__(
                request.index, completions.get(request.index, 0) + 1
            )
        )
        population = ClosedLoopClients(
            service, num_clients=6, think_time=5.0, senders=[1, 2, 3]
        )
        population.start(total_requests=80)
        service.system.crash_at(50.0, 0)
        service.system.recover_at(300.0, 0)
        service.system.run(until=60_000.0)
        assert population.issued == 80
        assert sorted(completions) == list(range(80))
        assert all(count == 1 for count in completions.values())

    def test_batched_service_survives_crash_schedule(self, algorithm):
        service = make_service(
            algorithm,
            n=4,
            seed=73,
            admission=AdmissionConfig(max_inflight=16, max_queue=32),
            config={
                "fd": QoSConfig(detection_time=10.0),
                "max_batch": 4,
                "max_delay": 3.0,
            },
        )
        system = service.system
        clients = OpenLoopClients(
            service, offered_load=200.0, num_clients=4, senders=[1, 2, 3]
        )
        clients.schedule_requests(60)
        system.crash_at(80.0, 0)
        system.recover_at(400.0, 0)
        system.run(until=20_000.0)
        assert service.replicas_consistent()
        completed = [r for r in service.requests if r.response_time is not None]
        assert len(completed) == 60


class TestInstrumentation:
    def test_service_hooks_feed_the_metrics_snapshot(self):
        from repro.obs.export import metrics_snapshot

        service = make_service(
            admission=AdmissionConfig(max_inflight=2, max_queue=2),
            config={"instrument": True},
        )
        system = service.system
        system.start()
        mix = CommandMix(put=1.0, get=0.0, increment=0.0, delete=0.0)
        clients = OpenLoopClients(service, offered_load=500.0, mix=mix)
        clients.schedule_requests(50)
        system.run(until=20_000.0)
        snapshot = metrics_snapshot(system, scenario="unit")
        counters = snapshot["counters"]
        assert counters["service.requests"] == 50
        assert counters.get("service.requests.admitted", 0) == service.admitted
        assert counters.get("service.requests.queued", 0) == service.queued
        assert counters.get("service.requests.shed", 0) == service.shed
        replies = counters.get("service.replies", 0)
        assert replies == sum(
            1 for r in service.requests if r.response_time is not None
        )
        assert snapshot["gauges"]["service.inflight_hwm"] == service.inflight_hwm
        assert "service.response_time" in snapshot["histograms"]
