"""Figure 8: latency overhead vs throughput in the crash-transient scenario.

The crashed process is p1 -- the round-1 coordinator of the FD algorithm and
the sequencer of the GM algorithm -- which is the worst case.  The plotted
value is the latency *overhead*: latency of the message A-broadcast at the
crash instant minus the detection time T_D.

The paper's result: both algorithms behave reasonably (the overhead is a
small multiple of the normal-steady latency) and the FD algorithm
outperforms the GM algorithm.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.experiments.helpers import (
    algorithm_label,
    base_config,
    default_throughputs,
    point_from_transient,
)
from repro.experiments.series import FigureResult, Series
from repro.scenarios.transient import run_crash_transient

QUICK_RUNS = 8
FULL_RUNS = 30

#: Detection times plotted in the paper.
DETECTION_TIMES: Tuple[float, ...] = (0.0, 10.0, 100.0)


def run(
    quick: bool = True,
    seed: int = 1,
    n_values: Iterable[int] = (3, 7),
    algorithms: Iterable[str] = ("fd", "gm"),
    detection_times: Iterable[float] = DETECTION_TIMES,
    throughputs: Optional[Iterable[float]] = None,
    num_runs: Optional[int] = None,
) -> FigureResult:
    """Regenerate Figure 8."""
    runs = num_runs or (QUICK_RUNS if quick else FULL_RUNS)
    figure = FigureResult(
        figure="8",
        title="Latency overhead vs throughput after the crash of p1 (crash-transient)",
        x_label="throughput [1/s]",
        y_label="min latency - T_D [ms]",
    )
    for n in n_values:
        sweep = list(throughputs) if throughputs is not None else default_throughputs(n, quick)
        for algorithm in algorithms:
            for detection_time in detection_times:
                series = Series(
                    label=(
                        f"{algorithm_label(algorithm)}, n={n}, "
                        f"T_D={detection_time:g}ms"
                    ),
                    params={"n": n, "detection_time": detection_time},
                )
                for throughput in sweep:
                    config = base_config(algorithm, n, seed)
                    result = run_crash_transient(
                        config,
                        throughput,
                        detection_time=detection_time,
                        crashed_process=0,
                        num_runs=runs,
                    )
                    series.add(point_from_transient(throughput, result))
                figure.add_series(series)
    figure.notes.append(
        "Expected shape: the overhead of both algorithms is a small multiple "
        "of the normal-steady latency; the FD algorithm is at or below the "
        "GM algorithm (clearest at low throughput and for T_D = 0)."
    )
    return figure
