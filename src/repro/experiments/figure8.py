"""Figure 8: latency overhead vs throughput in the crash-transient scenario.

The crashed process is p1 -- the round-1 coordinator of the FD algorithm and
the sequencer of the GM algorithm -- which is the worst case.  The plotted
value is the latency *overhead*: latency of the message A-broadcast at the
crash instant minus the detection time T_D.

The paper's result: both algorithms behave reasonably (the overhead is a
small multiple of the normal-steady latency) and the FD algorithm
outperforms the GM algorithm.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.campaigns.aggregate import run_campaign_figure
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import CampaignSpec, PointSpec, SeriesPointSpec, SeriesSpec, replicate_seeds
from repro.experiments.helpers import algorithm_label, default_throughputs
from repro.experiments.series import FigureResult

QUICK_RUNS = 8
FULL_RUNS = 30

#: Detection times plotted in the paper.
DETECTION_TIMES: Tuple[float, ...] = (0.0, 10.0, 100.0)


def build_campaign(
    quick: bool = True,
    seed: int = 1,
    n_values: Iterable[int] = (3, 7),
    algorithms: Iterable[str] = ("fd", "gm"),
    detection_times: Iterable[float] = DETECTION_TIMES,
    throughputs: Optional[Iterable[float]] = None,
    num_runs: Optional[int] = None,
    replicas: int = 1,
) -> CampaignSpec:
    """Declare the Figure 8 grid as a campaign."""
    runs = num_runs or (QUICK_RUNS if quick else FULL_RUNS)
    seeds = replicate_seeds(seed, replicas)
    campaign = CampaignSpec(
        name="figure8", description="latency overhead vs throughput, crash-transient"
    )
    for n in n_values:
        sweep = list(throughputs) if throughputs is not None else default_throughputs(n, quick)
        for algorithm in algorithms:
            for detection_time in detection_times:
                series = SeriesSpec(
                    label=(
                        f"{algorithm_label(algorithm)}, n={n}, "
                        f"T_D={detection_time:g}ms"
                    ),
                    params={"n": n, "detection_time": detection_time},
                )
                for throughput in sweep:
                    series.points.append(
                        SeriesPointSpec(
                            x=throughput,
                            points=[
                                PointSpec(
                                    kind="crash-transient",
                                    stack=algorithm,
                                    n=n,
                                    seed=point_seed,
                                    throughput=throughput,
                                    num_runs=runs,
                                    detection_time=detection_time,
                                    crashed_process=0,
                                )
                                for point_seed in seeds
                            ],
                        )
                    )
                campaign.add_series(series)
    return campaign


def run(
    quick: bool = True,
    seed: int = 1,
    n_values: Iterable[int] = (3, 7),
    algorithms: Iterable[str] = ("fd", "gm"),
    detection_times: Iterable[float] = DETECTION_TIMES,
    throughputs: Optional[Iterable[float]] = None,
    num_runs: Optional[int] = None,
    replicas: int = 1,
    runner: Optional[CampaignRunner] = None,
) -> FigureResult:
    """Regenerate Figure 8."""
    return run_campaign_figure(
        build_campaign(
            quick=quick,
            seed=seed,
            n_values=n_values,
            algorithms=algorithms,
            detection_times=detection_times,
            throughputs=throughputs,
            num_runs=num_runs,
            replicas=replicas,
        ),
        runner,
        figure="8",
        title="Latency overhead vs throughput after the crash of p1 (crash-transient)",
        x_label="throughput [1/s]",
        y_label="min latency - T_D [ms]",
        note=(
            "Expected shape: the overhead of both algorithms is a small multiple "
            "of the normal-steady latency; the FD algorithm is at or below the "
            "GM algorithm (clearest at low throughput and for T_D = 0)."
        ),
    )
