"""Command-line entry point: regenerate the paper's figures as text tables.

Examples::

    python -m repro.experiments --figure 4 --quick
    python -m repro.experiments --figure all --full --markdown -o results.md
    python -m repro.experiments --figure all --quick --jobs 4 --cache-dir .cache

``--jobs N`` fans the grid points of each figure out over N worker
processes; the tables are bit-identical to a serial run.  With
``--cache-dir`` every completed point is persisted, so an interrupted sweep
resumes where it stopped and shared points (e.g. the no-crash curves of
Figs. 4 and 5 in quick mode) are simulated only once.

``--fd-scan-interval Q`` reruns any figure under the batched
failure-detector scan (one calendar event per Q ms instead of per-pair
timers) -- the throughput lane for large-n sweeps; scanned points cache
under their own keys.

Beyond the figures, ``--scenario`` runs any of the twelve scenario kinds as
an ad-hoc campaign grid (delegating to ``python -m repro.campaigns``, whose
options apply -- including ``--stack`` / ``--fd`` for sweeping registered
protocol stacks and failure detector kinds, ``--hb-period`` /
``--hb-timeout`` for the heartbeat detector plane,
``--reformation-timeout`` for the ``gm-reform`` recovery window, the
service-load axes ``--clients`` / ``--consistency`` / ``--max-batch``, and
the fault-injection axes ``--fault-duration`` / ``--wan-profile`` /
``--degrade-factor`` / ``--link-loss``)::

    python -m repro.experiments --scenario churn --churn-rate 2 \\
        --throughputs 10 100 --jobs 4 --cache-dir .cache

    python -m repro.experiments --scenario churn-steady --stack fd \\
        --fd qos heartbeat --hb-period 20 --hb-timeout 60

    python -m repro.experiments --scenario view-majority-loss \\
        --stack gm gm-reform --reformation-timeout 500
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List

from repro.campaigns.catalog import CampaignCatalog
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import SCENARIO_KINDS
from repro.campaigns.store import DURABILITY_MODES, ResultStore
from repro.experiments import figure4, figure5, figure6, figure7, figure8
from repro.experiments.report import format_figure, format_markdown_table
from repro.experiments.shape_checks import ALL_CHECKS

FIGURES = {
    "4": figure4.run,
    "5": figure5.run,
    "6": figure6.run,
    "7": figure7.run,
    "8": figure8.run,
}


def main(argv: List[str] = None) -> int:
    """Run the requested figure experiments and print/write the tables."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if any(arg == "--scenario" or arg.startswith("--scenario=") for arg in argv):
        # Scenario grids (including the beyond-paper fault-schedule
        # scenarios) are campaign runs: hand the full command line to the
        # campaign CLI, which shares --jobs / --cache-dir / -o.
        from repro.campaigns.__main__ import main as campaign_main

        return campaign_main(argv)
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figure",
        default="all",
        choices=sorted(FIGURES) + ["all"],
        help="which figure to regenerate (default: all)",
    )
    parser.add_argument("--full", action="store_true", help="full-size sweeps (slow)")
    parser.add_argument("--quick", action="store_true", help="quick sweeps (default)")
    parser.add_argument("--seed", type=int, default=1, help="root random seed")
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="seed replicas per point (pooled for tighter CIs)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for the sweep points"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache completed points in DIR/results.jsonl (resumable sweeps)",
    )
    parser.add_argument(
        "--durability",
        choices=DURABILITY_MODES,
        default="fsync",
        help=(
            "cache write durability: fsync every point (default) or batch "
            "buffered flushes (throughput on many-small-point grids)"
        ),
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="re-simulate every point past the cache, rewriting its record",
    )
    parser.add_argument(
        "--force-kind",
        dest="force_kinds",
        action="append",
        default=None,
        metavar="KIND",
        choices=sorted(SCENARIO_KINDS),
        help="re-simulate cached points of this scenario kind only (repeatable)",
    )
    parser.add_argument(
        "--catalog",
        default=None,
        metavar="DIR",
        help="record each regenerated figure campaign in this catalog directory",
    )
    parser.add_argument(
        "--fd-scan-interval",
        type=float,
        default=0.0,
        help=(
            "run every point under the batched FD scan with this tick in ms "
            "(the large-n throughput lane); 0 = exact per-pair events"
        ),
    )
    parser.add_argument("--markdown", action="store_true", help="emit markdown tables")
    parser.add_argument("--check", action="store_true", help="also print the shape checks")
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="DIR",
        help="run instrumented and write one <key>.metrics.json per point to DIR",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="run instrumented and write per-run JSONL + Chrome trace files to DIR",
    )
    parser.add_argument("-o", "--output", default=None, help="write the report to a file")
    args = parser.parse_args(argv)

    quick = not args.full
    names = sorted(FIGURES) if args.figure == "all" else [args.figure]

    store = (
        ResultStore(args.cache_dir, durability=args.durability)
        if args.cache_dir
        else None
    )
    runner = CampaignRunner(
        jobs=args.jobs,
        store=store,
        instrument=args.metrics_out is not None,
        trace_dir=args.trace,
        fd_scan_interval=args.fd_scan_interval,
        force=args.force,
        force_kinds=tuple(args.force_kinds or ()),
    )
    catalog = CampaignCatalog(args.catalog) if args.catalog else None

    sections: List[str] = []
    try:
        for name in names:
            started = time.time()
            result = FIGURES[name](
                quick=quick, seed=args.seed, replicas=args.replicas, runner=runner
            )
            elapsed = time.time() - started
            renderer = format_markdown_table if args.markdown else format_figure
            sections.append(renderer(result))
            stats = ""
            if runner.last_run is not None:
                stats = (
                    f"; {runner.last_run.executed} points simulated, "
                    f"{runner.last_run.cache_hits} from cache"
                )
            sections.append(f"(figure {name} regenerated in {elapsed:.1f} s{stats})")
            if catalog is not None and runner.last_run is not None:
                catalog.record_run(
                    runner.last_run.campaign,
                    runner.last_run,
                    wall_clock_s=elapsed,
                    name=f"figure{name}-{'quick' if quick else 'full'}",
                    store_path=store.path if store is not None else None,
                )
            if args.metrics_out and runner.last_run is not None:
                from repro.obs.export import export_metrics_records

                written = export_metrics_records(runner.last_run.records, args.metrics_out)
                sections.append(
                    f"  wrote {written} metrics snapshots to {args.metrics_out}"
                )
            if args.check:
                checks: Dict[str, bool] = ALL_CHECKS[name](result)
                for key, ok in sorted(checks.items()):
                    sections.append(f"  check {key}: {'PASS' if ok else 'FAIL'}")
            sections.append("")
    finally:
        # The warm pool spans every figure of the invocation; closing the
        # store flushes buffered lines and refreshes the columnar mirror.
        runner.close()
        if store is not None:
            store.close()

    report = "\n".join(sections)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
