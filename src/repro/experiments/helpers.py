"""Shared helpers of the figure-regeneration experiments."""

from __future__ import annotations

from typing import List

from repro.experiments.series import FigurePoint
from repro.scenarios.results import ScenarioResult, TransientResult
from repro.system import SystemConfig


def point_from_scenario(x: float, result: ScenarioResult) -> FigurePoint:
    """Convert a steady-state scenario result into a figure point."""
    summary = result.summary()
    return FigurePoint(
        x=x,
        mean=summary.mean,
        ci=summary.ci_halfwidth if summary.count > 1 else 0.0,
        samples=summary.count,
        completed=result.completed,
    )


def point_from_transient(x: float, result: TransientResult, overhead: bool = True) -> FigurePoint:
    """Convert a crash-transient result into a figure point.

    ``overhead=True`` (the paper's choice for Fig. 8) subtracts the detection
    time from the latency.
    """
    summary = result.overhead_summary() if overhead else result.latency_summary()
    return FigurePoint(
        x=x,
        mean=summary.mean,
        ci=summary.ci_halfwidth if summary.count > 1 else 0.0,
        samples=summary.count,
        completed=result.runs > 0,
    )


def base_config(stack: str, n: int, seed: int, **overrides) -> SystemConfig:
    """The system configuration shared by all figures (λ = 1, 1 ms time unit)."""
    return SystemConfig(n=n, stack=stack, seed=seed, **overrides)


def default_throughputs(n: int, quick: bool) -> List[float]:
    """Throughput sweep (messages/s) used by Figs. 4, 5 and 8.

    The paper sweeps up to roughly the saturation throughput (about 700/s for
    n = 3 and a little less for n = 7 at λ = 1).
    """
    if quick:
        return [10, 100, 300, 500] if n <= 3 else [10, 100, 300]
    if n <= 3:
        return [10, 50, 100, 200, 300, 400, 500, 600, 700]
    return [10, 50, 100, 200, 300, 400, 500, 600]


def algorithm_label(stack: str) -> str:
    """Human-readable label of a stack identifier (``fd/heartbeat`` style too)."""
    labels = {"fd": "FD", "gm": "GM", "gm-nonuniform": "GM (non-uniform)"}
    base, _, fd_kind = stack.partition("/")
    label = labels.get(base, base)
    return f"{label} ({fd_kind} FD)" if fd_kind else label
