"""Shape checks: do the regenerated figures reproduce the paper's findings?

These functions encode the *qualitative* claims of the paper's evaluation --
who wins, by roughly what factor, where the curves join -- rather than the
absolute numbers (our substrate is a simulator, not the authors' testbed).
They are used both by the integration tests and by the EXPERIMENTS.md
generator.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.experiments.series import FigureResult, Series


def _mean_ratio(a: Series, b: Series) -> float:
    """Mean of the pointwise ratio a/b over x values present in both series."""
    ratios = []
    for point in a.points:
        other = b.point_at(point.x)
        if other is None or not point.completed or not other.completed:
            continue
        if other.mean > 0:
            ratios.append(point.mean / other.mean)
    if not ratios:
        return float("nan")
    return sum(ratios) / len(ratios)


def check_figure4(figure: FigureResult, tolerance: float = 0.05) -> Dict[str, bool]:
    """Fig. 4 claims: FD == GM for each n; latency grows with T and with n."""
    checks: Dict[str, bool] = {}
    for n in (3, 7):
        fd = figure.get_series(f"FD, n={n}")
        gm = figure.get_series(f"GM, n={n}")
        if fd is None or gm is None:
            continue
        ratio = _mean_ratio(fd, gm)
        checks[f"fd_equals_gm_n{n}"] = abs(ratio - 1.0) <= tolerance
        means = [p.mean for p in fd.points if p.completed]
        checks[f"latency_increases_with_T_n{n}"] = (
            len(means) >= 2 and means[-1] > means[0]
        )
    fd3 = figure.get_series("FD, n=3")
    fd7 = figure.get_series("FD, n=7")
    if fd3 is not None and fd7 is not None:
        checks["n7_slower_than_n3"] = _mean_ratio(fd7, fd3) > 1.0
    return checks


def check_figure5(figure: FigureResult) -> Dict[str, bool]:
    """Fig. 5 claims: crashes lower the latency; GM <= FD for equal crashes (n=7)."""
    checks: Dict[str, bool] = {}
    for n in (3, 7):
        base = figure.get_series(f"FD and GM, no crash, n={n}")
        fd1 = figure.get_series(f"FD, 1 crash(es), n={n}")
        gm1 = figure.get_series(f"GM, 1 crash(es), n={n}")
        if base is None or fd1 is None or gm1 is None:
            continue
        checks[f"crash_reduces_latency_n{n}"] = (
            _mean_ratio(fd1, base) < 1.05 and _mean_ratio(gm1, base) < 1.05
        )
        checks[f"gm_not_worse_than_fd_n{n}"] = _mean_ratio(gm1, fd1) <= 1.05
    fd3 = figure.get_series("FD, 3 crash(es), n=7")
    gm3 = figure.get_series("GM, 3 crash(es), n=7")
    fd1 = figure.get_series("FD, 1 crash(es), n=7")
    if fd3 is not None and fd1 is not None:
        checks["more_crashes_lower_latency_n7"] = _mean_ratio(fd3, fd1) < 1.0
    if fd3 is not None and gm3 is not None:
        checks["gm_beats_fd_with_3_crashes_n7"] = _mean_ratio(gm3, fd3) < 1.0
    return checks


def check_figure6(figure: FigureResult, small_tmr: float = 10.0, large_tmr: float = 10000.0) -> Dict[str, bool]:
    """Fig. 6 claims: GM degrades much more than FD at small T_MR; curves join at large T_MR."""
    checks: Dict[str, bool] = {}
    for n, throughput in ((3, 10.0), (7, 10.0), (3, 300.0), (7, 300.0)):
        fd = figure.get_series(f"FD, n={n}, T={throughput:g}/s")
        gm = figure.get_series(f"GM, n={n}, T={throughput:g}/s")
        if fd is None or gm is None:
            continue
        key = f"n{n}_T{throughput:g}"
        fd_small = fd.point_at(small_tmr)
        gm_small = gm.point_at(small_tmr)
        if fd_small is not None and gm_small is not None:
            gm_bad = (not gm_small.completed) or (
                fd_small.completed and gm_small.mean > 1.5 * fd_small.mean
            )
            checks[f"gm_much_worse_at_small_tmr_{key}"] = gm_bad
        fd_large = fd.point_at(large_tmr)
        gm_large = gm.point_at(large_tmr)
        if (
            fd_large is not None
            and gm_large is not None
            and fd_large.completed
            and gm_large.completed
        ):
            checks[f"curves_join_at_large_tmr_{key}"] = (
                gm_large.mean <= 1.25 * fd_large.mean
            )
    return checks


def check_figure7(figure: FigureResult) -> Dict[str, bool]:
    """Fig. 7 claims: GM latency grows with T_M much faster than FD latency."""
    checks: Dict[str, bool] = {}
    for n, throughput, tmr in (
        (3, 10.0, 1000.0),
        (7, 10.0, 10000.0),
        (3, 300.0, 10000.0),
        (7, 300.0, 100000.0),
    ):
        suffix = f"n={n}, T={throughput:g}/s, T_MR={tmr:g}ms"
        fd = figure.get_series(f"FD, {suffix}")
        gm = figure.get_series(f"GM, {suffix}")
        if fd is None or gm is None:
            continue
        key = f"n{n}_T{throughput:g}"
        fd_growth = _growth(fd)
        gm_growth = _growth(gm)
        if not math.isnan(fd_growth) and not math.isnan(gm_growth):
            checks[f"gm_more_sensitive_to_tm_{key}"] = gm_growth > fd_growth
    return checks


def check_figure8(figure: FigureResult) -> Dict[str, bool]:
    """Fig. 8 claims: overhead is moderate for both; FD at or below GM (T_D = 0, low T)."""
    checks: Dict[str, bool] = {}
    for n in (3, 7):
        fd0 = figure.get_series(f"FD, n={n}, T_D=0ms")
        gm0 = figure.get_series(f"GM, n={n}, T_D=0ms")
        if fd0 is None or gm0 is None:
            continue
        checks[f"fd_not_worse_than_gm_td0_n{n}"] = _mean_ratio(fd0, gm0) <= 1.1
        first_fd = fd0.points[0] if fd0.points else None
        first_gm = gm0.points[0] if gm0.points else None
        if first_fd is not None and first_gm is not None:
            checks[f"fd_wins_at_low_T_n{n}"] = first_fd.mean <= first_gm.mean * 1.05
        completed = [p.mean for p in fd0.points + gm0.points if p.completed]
        if completed:
            checks[f"overhead_moderate_n{n}"] = max(completed) < 400.0
    return checks


def _growth(series: Series) -> float:
    """Ratio of the last completed point to the first completed point."""
    completed = [p for p in series.points if p.completed and p.mean > 0]
    if len(completed) < 2:
        return float("nan")
    return completed[-1].mean / completed[0].mean


ALL_CHECKS = {
    "4": check_figure4,
    "5": check_figure5,
    "6": check_figure6,
    "7": check_figure7,
    "8": check_figure8,
}
