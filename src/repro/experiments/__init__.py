"""Experiment harness regenerating every figure of the paper's evaluation.

Each ``figure*`` module exposes a ``run(quick=...)`` function returning a
:class:`~repro.experiments.series.FigureResult` and the shared
:mod:`repro.experiments.report` module renders the results as text tables
(the same rows/series the paper plots).

Quick mode uses fewer messages and fewer runs per point so the whole suite
finishes on a laptop; full mode uses parameters closer to the paper's
(smaller confidence intervals, same shapes).
"""

from repro.experiments.report import format_figure, format_markdown_table
from repro.experiments.series import FigurePoint, FigureResult, Series

# NOTE: the figure modules are intentionally *not* imported here.  They
# declare their grids through :mod:`repro.campaigns`, which in turn folds
# results into the containers above -- importing them eagerly would make the
# package import circular.  Use ``from repro.experiments import figure4``.

__all__ = [
    "FigurePoint",
    "FigureResult",
    "Series",
    "format_figure",
    "format_markdown_table",
]
