"""Figure 6: latency vs mistake recurrence time T_MR (suspicion-steady, T_M = 0).

Four panels: (n, throughput) in {3, 7} x {10/s, 300/s}.  The paper's result:
the GM algorithm is very sensitive to wrong suspicions -- at n = 3 and
T = 10/s it only works for T_MR >= 50 ms whereas the FD algorithm still
works at T_MR = 10 ms; the curves of the two algorithms only join for very
large T_MR (>= 5000 ms).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.campaigns.aggregate import run_campaign_figure
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import CampaignSpec, PointSpec, SeriesPointSpec, SeriesSpec, replicate_seeds
from repro.experiments.helpers import algorithm_label
from repro.experiments.series import FigureResult

QUICK_MESSAGES = 80
FULL_MESSAGES = 300

#: The four panels of the figure: (n, throughput in 1/s).
PANELS: Tuple[Tuple[int, float], ...] = ((3, 10.0), (7, 10.0), (3, 300.0), (7, 300.0))

QUICK_TMR_VALUES = (10.0, 100.0, 1000.0, 10000.0)
FULL_TMR_VALUES = (1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0, 1000000.0)


def build_campaign(
    quick: bool = True,
    seed: int = 1,
    panels: Iterable[Tuple[int, float]] = PANELS,
    algorithms: Iterable[str] = ("fd", "gm"),
    tmr_values: Optional[Iterable[float]] = None,
    num_messages: Optional[int] = None,
    replicas: int = 1,
) -> CampaignSpec:
    """Declare the Figure 6 grid as a campaign."""
    messages = num_messages or (QUICK_MESSAGES if quick else FULL_MESSAGES)
    sweep = list(tmr_values) if tmr_values is not None else list(
        QUICK_TMR_VALUES if quick else FULL_TMR_VALUES
    )
    seeds = replicate_seeds(seed, replicas)
    campaign = CampaignSpec(name="figure6", description="latency vs T_MR, suspicion-steady")
    for n, throughput in panels:
        for algorithm in algorithms:
            series = SeriesSpec(
                label=f"{algorithm_label(algorithm)}, n={n}, T={throughput:g}/s",
                params={"n": n, "throughput": throughput},
            )
            for tmr in sweep:
                series.points.append(
                    SeriesPointSpec(
                        x=tmr,
                        points=[
                            PointSpec(
                                kind="suspicion-steady",
                                stack=algorithm,
                                n=n,
                                seed=point_seed,
                                throughput=throughput,
                                num_messages=messages,
                                mistake_recurrence_time=tmr,
                                mistake_duration=0.0,
                            )
                            for point_seed in seeds
                        ],
                    )
                )
            campaign.add_series(series)
    return campaign


def run(
    quick: bool = True,
    seed: int = 1,
    panels: Iterable[Tuple[int, float]] = PANELS,
    algorithms: Iterable[str] = ("fd", "gm"),
    tmr_values: Optional[Iterable[float]] = None,
    num_messages: Optional[int] = None,
    replicas: int = 1,
    runner: Optional[CampaignRunner] = None,
) -> FigureResult:
    """Regenerate Figure 6."""
    return run_campaign_figure(
        build_campaign(
            quick=quick,
            seed=seed,
            panels=panels,
            algorithms=algorithms,
            tmr_values=tmr_values,
            num_messages=num_messages,
            replicas=replicas,
        ),
        runner,
        figure="6",
        title="Latency vs mistake recurrence time T_MR (T_M = 0), suspicion-steady",
        x_label="mistake recurrence time T_MR [ms]",
        y_label="min latency [ms]",
        note=(
            "Expected shape: GM latency explodes (or the point does not complete) "
            "at small T_MR while FD degrades only mildly; the curves join at very "
            "large T_MR."
        ),
    )
