"""Figure 7: latency vs mistake duration T_M (suspicion-steady, T_MR fixed).

Four panels with the paper's T_MR choices (picked so that the two algorithms
are close but not equal at T_M = 0):

* n = 3, T = 10/s,  T_MR = 1 000 ms
* n = 7, T = 10/s,  T_MR = 10 000 ms
* n = 3, T = 300/s, T_MR = 10 000 ms
* n = 7, T = 300/s, T_MR = 100 000 ms

The paper's result: the GM algorithm is sensitive to the mistake *duration*
as well (wrongly suspected processes get excluded and have to rejoin), while
the FD algorithm barely reacts to it.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.campaigns.aggregate import run_campaign_figure
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import CampaignSpec, PointSpec, SeriesPointSpec, SeriesSpec, replicate_seeds
from repro.experiments.helpers import algorithm_label
from repro.experiments.series import FigureResult

QUICK_MESSAGES = 80
FULL_MESSAGES = 300

#: The four panels: (n, throughput in 1/s, T_MR in ms).
PANELS: Tuple[Tuple[int, float, float], ...] = (
    (3, 10.0, 1000.0),
    (7, 10.0, 10000.0),
    (3, 300.0, 10000.0),
    (7, 300.0, 100000.0),
)

QUICK_TM_VALUES = (1.0, 10.0, 100.0, 1000.0)
FULL_TM_VALUES = (1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0)


def build_campaign(
    quick: bool = True,
    seed: int = 1,
    panels: Iterable[Tuple[int, float, float]] = PANELS,
    algorithms: Iterable[str] = ("fd", "gm"),
    tm_values: Optional[Iterable[float]] = None,
    num_messages: Optional[int] = None,
    replicas: int = 1,
) -> CampaignSpec:
    """Declare the Figure 7 grid as a campaign."""
    messages = num_messages or (QUICK_MESSAGES if quick else FULL_MESSAGES)
    sweep = list(tm_values) if tm_values is not None else list(
        QUICK_TM_VALUES if quick else FULL_TM_VALUES
    )
    seeds = replicate_seeds(seed, replicas)
    campaign = CampaignSpec(name="figure7", description="latency vs T_M, suspicion-steady")
    for n, throughput, tmr in panels:
        for algorithm in algorithms:
            series = SeriesSpec(
                label=(
                    f"{algorithm_label(algorithm)}, n={n}, T={throughput:g}/s, "
                    f"T_MR={tmr:g}ms"
                ),
                params={"n": n, "throughput": throughput, "tmr": tmr},
            )
            for tm in sweep:
                series.points.append(
                    SeriesPointSpec(
                        x=tm,
                        points=[
                            PointSpec(
                                kind="suspicion-steady",
                                stack=algorithm,
                                n=n,
                                seed=point_seed,
                                throughput=throughput,
                                num_messages=messages,
                                mistake_recurrence_time=tmr,
                                mistake_duration=tm,
                            )
                            for point_seed in seeds
                        ],
                    )
                )
            campaign.add_series(series)
    return campaign


def run(
    quick: bool = True,
    seed: int = 1,
    panels: Iterable[Tuple[int, float, float]] = PANELS,
    algorithms: Iterable[str] = ("fd", "gm"),
    tm_values: Optional[Iterable[float]] = None,
    num_messages: Optional[int] = None,
    replicas: int = 1,
    runner: Optional[CampaignRunner] = None,
) -> FigureResult:
    """Regenerate Figure 7."""
    return run_campaign_figure(
        build_campaign(
            quick=quick,
            seed=seed,
            panels=panels,
            algorithms=algorithms,
            tm_values=tm_values,
            num_messages=num_messages,
            replicas=replicas,
        ),
        runner,
        figure="7",
        title="Latency vs mistake duration T_M (T_MR fixed), suspicion-steady",
        x_label="mistake duration T_M [ms]",
        y_label="min latency [ms]",
        note=(
            "Expected shape: GM latency grows with T_M much faster than FD "
            "latency (exclusions followed by costly rejoins)."
        ),
    )
