"""Text rendering of figure results (the tables the benchmarks print)."""

from __future__ import annotations

import math
from typing import List

from repro.experiments.series import FigureResult


def format_figure(figure: FigureResult) -> str:
    """Render a figure as a fixed-width text table (one row per x value)."""
    lines: List[str] = []
    lines.append(f"Figure {figure.figure}: {figure.title}")
    lines.append(f"  x = {figure.x_label}; cells = {figure.y_label} (mean ± 95% CI)")
    if not figure.series:
        lines.append("  (no data)")
        return "\n".join(lines)

    xs: List[float] = []
    for series in figure.series:
        for x in series.xs():
            if x not in xs:
                xs.append(x)
    xs.sort()

    label_width = max(len("x"), *(len(s.label) for s in figure.series))
    header = "  " + "x".rjust(12) + "  " + "  ".join(
        s.label.rjust(max(16, len(s.label))) for s in figure.series
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for x in xs:
        cells = []
        for series in figure.series:
            point = series.point_at(x)
            if point is None:
                cells.append(" " * max(16, len(series.label)))
            else:
                cells.append(point.formatted().rjust(max(16, len(series.label))))
        lines.append("  " + f"{x:12g}" + "  " + "  ".join(cells))
    for note in figure.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def format_markdown_table(figure: FigureResult) -> str:
    """Render a figure as a GitHub-flavoured markdown table."""
    lines: List[str] = []
    lines.append(f"**Figure {figure.figure} — {figure.title}**")
    lines.append("")
    header = "| " + figure.x_label + " | " + " | ".join(s.label for s in figure.series) + " |"
    divider = "|" + "---|" * (len(figure.series) + 1)
    lines.append(header)
    lines.append(divider)

    xs: List[float] = []
    for series in figure.series:
        for x in series.xs():
            if x not in xs:
                xs.append(x)
    xs.sort()
    for x in xs:
        cells = []
        for series in figure.series:
            point = series.point_at(x)
            if point is None:
                cells.append("")
            elif not point.completed or math.isnan(point.mean):
                cells.append("did not complete")
            else:
                cells.append(f"{point.mean:.1f} ± {point.ci:.1f}")
        lines.append("| " + f"{x:g}" + " | " + " | ".join(cells) + " |")
    lines.append("")
    for note in figure.notes:
        lines.append(f"*{note}*")
    return "\n".join(lines)
