"""Figure 4: latency vs throughput in the normal-steady scenario.

The paper's result: the two algorithms have *the same* performance when
neither crashes nor suspicions occur (they generate the same message
exchange), latency grows with the throughput and with the number of
processes, and the system saturates around 700 messages/s for λ = 1.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.experiments.helpers import (
    algorithm_label,
    base_config,
    default_throughputs,
    point_from_scenario,
)
from repro.experiments.series import FigureResult, Series
from repro.scenarios.steady import run_normal_steady

#: Number of measured messages per point.
QUICK_MESSAGES = 150
FULL_MESSAGES = 600


def run(
    quick: bool = True,
    seed: int = 1,
    n_values: Iterable[int] = (3, 7),
    algorithms: Iterable[str] = ("fd", "gm"),
    throughputs: Optional[Iterable[float]] = None,
    num_messages: Optional[int] = None,
) -> FigureResult:
    """Regenerate Figure 4."""
    messages = num_messages or (QUICK_MESSAGES if quick else FULL_MESSAGES)
    figure = FigureResult(
        figure="4",
        title="Latency vs throughput, normal-steady scenario",
        x_label="throughput [1/s]",
        y_label="min latency [ms]",
    )
    for n in n_values:
        sweep = list(throughputs) if throughputs is not None else default_throughputs(n, quick)
        for algorithm in algorithms:
            series = Series(label=f"{algorithm_label(algorithm)}, n={n}", params={"n": n})
            for throughput in sweep:
                config = base_config(algorithm, n, seed)
                result = run_normal_steady(config, throughput, num_messages=messages)
                series.add(point_from_scenario(throughput, result))
            figure.add_series(series)
    figure.notes.append(
        "Expected shape: the FD and GM curves coincide for each n; latency "
        "grows with the throughput and with n."
    )
    return figure
