"""Figure 4: latency vs throughput in the normal-steady scenario.

The paper's result: the two algorithms have *the same* performance when
neither crashes nor suspicions occur (they generate the same message
exchange), latency grows with the throughput and with the number of
processes, and the system saturates around 700 messages/s for λ = 1.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.campaigns.aggregate import run_campaign_figure
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import CampaignSpec, PointSpec, SeriesPointSpec, SeriesSpec, replicate_seeds
from repro.experiments.helpers import algorithm_label, default_throughputs
from repro.experiments.series import FigureResult

#: Number of measured messages per point.
QUICK_MESSAGES = 150
FULL_MESSAGES = 600


def build_campaign(
    quick: bool = True,
    seed: int = 1,
    n_values: Iterable[int] = (3, 7),
    algorithms: Iterable[str] = ("fd", "gm"),
    throughputs: Optional[Iterable[float]] = None,
    num_messages: Optional[int] = None,
    replicas: int = 1,
) -> CampaignSpec:
    """Declare the Figure 4 grid as a campaign."""
    messages = num_messages or (QUICK_MESSAGES if quick else FULL_MESSAGES)
    seeds = replicate_seeds(seed, replicas)
    campaign = CampaignSpec(name="figure4", description="latency vs throughput, normal-steady")
    for n in n_values:
        sweep = list(throughputs) if throughputs is not None else default_throughputs(n, quick)
        for algorithm in algorithms:
            series = SeriesSpec(
                label=f"{algorithm_label(algorithm)}, n={n}", params={"n": n}
            )
            for throughput in sweep:
                series.points.append(
                    SeriesPointSpec(
                        x=throughput,
                        points=[
                            PointSpec(
                                kind="normal-steady",
                                stack=algorithm,
                                n=n,
                                seed=point_seed,
                                throughput=throughput,
                                num_messages=messages,
                            )
                            for point_seed in seeds
                        ],
                    )
                )
            campaign.add_series(series)
    return campaign


def run(
    quick: bool = True,
    seed: int = 1,
    n_values: Iterable[int] = (3, 7),
    algorithms: Iterable[str] = ("fd", "gm"),
    throughputs: Optional[Iterable[float]] = None,
    num_messages: Optional[int] = None,
    replicas: int = 1,
    runner: Optional[CampaignRunner] = None,
) -> FigureResult:
    """Regenerate Figure 4."""
    return run_campaign_figure(
        build_campaign(
            quick=quick,
            seed=seed,
            n_values=n_values,
            algorithms=algorithms,
            throughputs=throughputs,
            num_messages=num_messages,
            replicas=replicas,
        ),
        runner,
        figure="4",
        title="Latency vs throughput, normal-steady scenario",
        x_label="throughput [1/s]",
        y_label="min latency [ms]",
        note=(
            "Expected shape: the FD and GM curves coincide for each n; latency "
            "grows with the throughput and with n."
        ),
    )
