"""Result containers of the figure-regeneration experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class FigurePoint:
    """One plotted point: an x value, a mean latency and its 95 % CI."""

    x: float
    mean: float
    ci: float
    samples: int
    completed: bool = True

    def formatted(self) -> str:
        """Render the point the way the tables print it."""
        if not self.completed or math.isnan(self.mean):
            return "      --      "
        return f"{self.mean:8.2f} ±{self.ci:5.2f}"


@dataclass
class Series:
    """One curve of a figure (e.g. "FD, 1 crash" or "GM, n=7")."""

    label: str
    points: List[FigurePoint] = field(default_factory=list)
    params: Dict[str, Any] = field(default_factory=dict)

    def add(self, point: FigurePoint) -> None:
        """Append a point to the curve."""
        self.points.append(point)

    def xs(self) -> List[float]:
        """The x values of the curve."""
        return [p.x for p in self.points]

    def means(self) -> List[float]:
        """The mean values of the curve (NaN for incomplete points)."""
        return [p.mean if p.completed else float("nan") for p in self.points]

    def point_at(self, x: float) -> Optional[FigurePoint]:
        """The point with the given x value, if any."""
        for point in self.points:
            if point.x == x:
                return point
        return None


@dataclass
class FigureResult:
    """All series of one figure, plus metadata used by the report module."""

    figure: str
    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_series(self, series: Series) -> None:
        """Append a curve to the figure."""
        self.series.append(series)

    def get_series(self, label: str) -> Optional[Series]:
        """Find a curve by label."""
        for candidate in self.series:
            if candidate.label == label:
                return candidate
        return None
