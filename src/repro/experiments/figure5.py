"""Figure 5: latency vs throughput in the crash-steady scenario.

The paper's result: latency decreases as more processes crash (crashed
processes stop loading the network); the GM algorithm is slightly better
than the FD algorithm for the same number of crashes because the sequencer
waits for acknowledgements from a majority of a *smaller* view.  Following
the paper, the crashed processes are non-coordinator processes (the
coordinator re-numbering optimisation makes the steady state independent of
which processes crashed).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.experiments.helpers import (
    algorithm_label,
    base_config,
    default_throughputs,
    point_from_scenario,
)
from repro.experiments.series import FigureResult, Series
from repro.scenarios.steady import run_crash_steady, run_normal_steady

QUICK_MESSAGES = 150
FULL_MESSAGES = 500

#: Crash counts plotted per system size (as in the paper).
CRASH_COUNTS: Dict[int, Tuple[int, ...]] = {3: (0, 1), 7: (0, 1, 2, 3)}


def crashed_processes(n: int, count: int) -> Tuple[int, ...]:
    """The ``count`` highest-numbered (non-coordinator) processes."""
    return tuple(range(n - count, n))


def run(
    quick: bool = True,
    seed: int = 1,
    n_values: Iterable[int] = (3, 7),
    algorithms: Iterable[str] = ("fd", "gm"),
    throughputs: Optional[Iterable[float]] = None,
    num_messages: Optional[int] = None,
) -> FigureResult:
    """Regenerate Figure 5."""
    messages = num_messages or (QUICK_MESSAGES if quick else FULL_MESSAGES)
    figure = FigureResult(
        figure="5",
        title="Latency vs throughput, crash-steady scenario",
        x_label="throughput [1/s]",
        y_label="min latency [ms]",
    )
    for n in n_values:
        sweep = list(throughputs) if throughputs is not None else default_throughputs(n, quick)
        crash_counts = CRASH_COUNTS.get(n, (0, 1))
        for crashes in crash_counts:
            crashed = crashed_processes(n, crashes)
            for algorithm in algorithms:
                if crashes == 0 and algorithm != "fd":
                    # With no crash the two algorithms coincide (Fig. 4); the
                    # paper plots a single "FD and GM, no crash" curve.
                    continue
                label = (
                    f"FD and GM, no crash, n={n}"
                    if crashes == 0
                    else f"{algorithm_label(algorithm)}, {crashes} crash(es), n={n}"
                )
                series = Series(label=label, params={"n": n, "crashes": crashes})
                for throughput in sweep:
                    config = base_config(algorithm, n, seed)
                    if crashes == 0:
                        result = run_normal_steady(config, throughput, num_messages=messages)
                    else:
                        result = run_crash_steady(
                            config, throughput, crashed, num_messages=messages
                        )
                    series.add(point_from_scenario(throughput, result))
                figure.add_series(series)
    figure.notes.append(
        "Expected shape: latency decreases as more processes crash; for the "
        "same number of crashes the GM curve is at or below the FD curve "
        "(the gap grows with n)."
    )
    return figure
