"""Figure 5: latency vs throughput in the crash-steady scenario.

The paper's result: latency decreases as more processes crash (crashed
processes stop loading the network); the GM algorithm is slightly better
than the FD algorithm for the same number of crashes because the sequencer
waits for acknowledgements from a majority of a *smaller* view.  Following
the paper, the crashed processes are non-coordinator processes (the
coordinator re-numbering optimisation makes the steady state independent of
which processes crashed).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.campaigns.aggregate import run_campaign_figure
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import (
    CampaignSpec,
    PointSpec,
    SeriesPointSpec,
    SeriesSpec,
    crashed_processes,
    replicate_seeds,
)
from repro.experiments.helpers import algorithm_label, default_throughputs
from repro.experiments.series import FigureResult

QUICK_MESSAGES = 150
FULL_MESSAGES = 500

#: Crash counts plotted per system size (as in the paper).
CRASH_COUNTS: Dict[int, Tuple[int, ...]] = {3: (0, 1), 7: (0, 1, 2, 3)}


def build_campaign(
    quick: bool = True,
    seed: int = 1,
    n_values: Iterable[int] = (3, 7),
    algorithms: Iterable[str] = ("fd", "gm"),
    throughputs: Optional[Iterable[float]] = None,
    num_messages: Optional[int] = None,
    replicas: int = 1,
) -> CampaignSpec:
    """Declare the Figure 5 grid as a campaign.

    In quick mode the no-crash curves are normal-steady points identical to
    Figure 4's (both figures measure 150 messages), so with a shared result
    store they come straight from the cache.  In full mode the per-figure
    message counts differ (500 vs 600), so the points are distinct.
    """
    messages = num_messages or (QUICK_MESSAGES if quick else FULL_MESSAGES)
    seeds = replicate_seeds(seed, replicas)
    campaign = CampaignSpec(name="figure5", description="latency vs throughput, crash-steady")
    for n in n_values:
        sweep = list(throughputs) if throughputs is not None else default_throughputs(n, quick)
        crash_counts = CRASH_COUNTS.get(n, (0, 1))
        for crashes in crash_counts:
            crashed = crashed_processes(n, crashes)
            for algorithm in algorithms:
                if crashes == 0 and algorithm != "fd":
                    # With no crash the two algorithms coincide (Fig. 4); the
                    # paper plots a single "FD and GM, no crash" curve.
                    continue
                label = (
                    f"FD and GM, no crash, n={n}"
                    if crashes == 0
                    else f"{algorithm_label(algorithm)}, {crashes} crash(es), n={n}"
                )
                series = SeriesSpec(label=label, params={"n": n, "crashes": crashes})
                for throughput in sweep:
                    series.points.append(
                        SeriesPointSpec(
                            x=throughput,
                            points=[
                                PointSpec(
                                    kind="normal-steady" if crashes == 0 else "crash-steady",
                                    stack=algorithm,
                                    n=n,
                                    seed=point_seed,
                                    throughput=throughput,
                                    num_messages=messages,
                                    crashed=crashed,
                                )
                                for point_seed in seeds
                            ],
                        )
                    )
                campaign.add_series(series)
    return campaign


def run(
    quick: bool = True,
    seed: int = 1,
    n_values: Iterable[int] = (3, 7),
    algorithms: Iterable[str] = ("fd", "gm"),
    throughputs: Optional[Iterable[float]] = None,
    num_messages: Optional[int] = None,
    replicas: int = 1,
    runner: Optional[CampaignRunner] = None,
) -> FigureResult:
    """Regenerate Figure 5."""
    return run_campaign_figure(
        build_campaign(
            quick=quick,
            seed=seed,
            n_values=n_values,
            algorithms=algorithms,
            throughputs=throughputs,
            num_messages=num_messages,
            replicas=replicas,
        ),
        runner,
        figure="5",
        title="Latency vs throughput, crash-steady scenario",
        x_label="throughput [1/s]",
        y_label="min latency [ms]",
        note=(
            "Expected shape: latency decreases as more processes crash; for the "
            "same number of crashes the GM curve is at or below the FD curve "
            "(the gap grows with n)."
        ),
    )
