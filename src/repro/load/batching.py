"""Ingress request batching: amortize one ordering step over k requests.

The dominant per-request cost of both algorithms is per *message*, not per
byte: every A-broadcast pays one send plus ``n - 1`` receives of CPU cost
``lambda`` for the DATA dissemination alone, then its share of the
sequencing traffic (consensus instance / sequencer batch).
:class:`BatchingAtomicBroadcast` wraps any registered stack's atomic
broadcast and coalesces up to ``max_batch`` pending client payloads into
*one* inner A-broadcast -- the single biggest real-world throughput lever
for this protocol class (ROADMAP item 3).

The wrapper preserves the total order: the inner broadcast delivers batch
containers in the agreed total order at every process, and every process
unpacks a container deterministically (in batch order), so the wrapper-level
delivery sequences are totally ordered whenever the inner ones are.  The
wrapper-level latency is honest client latency: broadcast listeners fire at
submission time, so the batch accumulation delay (bounded by ``max_delay``)
is part of every recorded latency.

Batching is **off by default** (``SystemConfig(max_batch=0)``): no wrapper
is constructed at all, so the off path is architecturally identical to the
pre-batching system and every golden baseline is untouched.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.core.types import AtomicBroadcast, BroadcastID
from repro.sim.process import SimProcess

#: Container tag of a batched inner payload (unlikely to collide with
#: application payloads; tests pin the pass-through of untagged payloads).
BATCH_TAG = "__reqbatch__"


class BatchingAtomicBroadcast(AtomicBroadcast):
    """Coalesces client A-broadcasts into batched inner A-broadcasts.

    Parameters
    ----------
    inner:
        The wrapped stack-level :class:`AtomicBroadcast` of the same process.
    max_batch:
        Flush as soon as this many payloads are pending (>= 1).  ``1``
        degenerates to one container per request -- useful for measuring the
        wrapper overhead in isolation.
    max_delay:
        Flush at the latest this many ms after the first pending payload
        arrived, so sub-saturation requests are not held hostage waiting for
        a full batch.  ``0`` flushes in a zero-delay timer event: payloads
        arriving at the same simulation instant still coalesce, anything
        later does not.
    """

    protocol = "abcast-batch"

    def __init__(
        self,
        process: SimProcess,
        inner: AtomicBroadcast,
        max_batch: int,
        max_delay: float = 0.0,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0 ms, got {max_delay}")
        super().__init__(process)
        self.inner = inner
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._pending: List[Tuple[BroadcastID, Any]] = []
        self._flush_timer = None
        #: Containers flushed so far (diagnostic).
        self.batches_flushed = 0
        inner.add_delivery_listener(self._on_inner_delivery)

    # ------------------------------------------------------------------ API

    def broadcast(self, payload: Any) -> BroadcastID:
        """Accept ``payload`` now; A-broadcast it in the next batch flush."""
        broadcast_id = self._next_broadcast_id()
        self._notify_broadcast(broadcast_id, payload)
        self._pending.append((broadcast_id, payload))
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._flush_timer is None:
            self._flush_timer = self.set_timer(self.max_delay, self._flush_from_timer)
        return broadcast_id

    @property
    def pending_count(self) -> int:
        """Payloads accepted but not yet handed to the inner broadcast."""
        return len(self._pending)

    # ------------------------------------------------------------------ internals

    def _flush_from_timer(self) -> None:
        # The firing timer clears its own handle first, so ``_flush`` never
        # cancels an already-executed event (which would inflate the
        # kernel's cancelled-event counter).
        self._flush_timer = None
        self._flush()

    def _flush(self) -> None:
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        if not self._pending:
            return
        entries = tuple(self._pending)
        self._pending = []
        self.batches_flushed += 1
        self._obs.service_batch(self.now, self.pid, len(entries))
        self.inner.broadcast((BATCH_TAG, entries))

    def _on_inner_delivery(self, inner_id: BroadcastID, payload: Any) -> None:
        if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == BATCH_TAG:
            for broadcast_id, item in payload[1]:
                self._deliver(broadcast_id, item)
        else:
            # Pass-through of payloads broadcast directly on the inner layer
            # (nothing does this when batching is on, but a wrapper that
            # silently swallowed them would be a debugging trap).
            self._deliver(inner_id, payload)

    def on_message(self, sender: int, body: Any) -> None:  # pragma: no cover
        raise RuntimeError("the batching wrapper exchanges no messages of its own")

    # ------------------------------------------------------------------ crash/recover

    def on_crash(self) -> None:
        # The hosting process cancelled every timer; drop the stale handle so
        # a post-recovery broadcast arms a fresh one.  Pending payloads stay
        # buffered: like the GM algorithm's unsequenced buffer, they are
        # flushed when the process comes back.
        self._flush_timer = None

    def on_recover(self) -> None:
        if self._pending and self._flush_timer is None:
            self._flush_timer = self.set_timer(self.max_delay, self._flush_from_timer)


def wrap_system_abcast(
    process: SimProcess,
    abcast: AtomicBroadcast,
    max_batch: int,
    max_delay: float,
) -> AtomicBroadcast:
    """The abcast the system should expose: wrapped iff batching is on."""
    if max_batch <= 0:
        return abcast
    return BatchingAtomicBroadcast(process, abcast, max_batch, max_delay)


__all__ = ["BATCH_TAG", "BatchingAtomicBroadcast", "wrap_system_abcast"]
