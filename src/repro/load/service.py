"""The load-tested service: admission control and backpressure over replication.

:class:`LoadTestedService` wraps a :class:`repro.replication.service.ReplicatedService`
with the serving-stack concerns a real deployment has and the demo lacked:

* **admission window** -- at most ``max_inflight`` requests may be inside the
  broadcast layer at once (0 = unbounded, the demo behaviour);
* **bounded queue** -- up to ``max_queue`` further requests park in a FIFO
  queue and are admitted as replies free the window;
* **load shedding** -- a request arriving with window and queue both full is
  rejected immediately (its completion callback fires with ``shed=True``),
  so saturation shows up as shed load and bounded queueing delay instead of
  unbounded broadcast backlog;
* **consistency axis** -- ``"ordered"`` sends every command (reads included)
  through the total order; ``"local"`` serves ``get`` requests from the
  ingress replica's local state machine immediately, bypassing broadcast
  *and* the admission window (the lease-style weak-read trade-off).

Every request is tracked as a :class:`ServiceRequest` with its outcome and
client-perceived response time (queueing delay included), and the
``service.request`` / ``service.reply`` / ``service.batch`` instrumentation
hooks expose counters, queue-depth high-water marks and the response-time
histogram through the standard ``metrics.json`` snapshot.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.replication.service import ClientRequest, ReplicatedService
from repro.replication.state_machine import Command, KeyValueStore, StateMachine

#: Consistency modes of the read path.
CONSISTENCY_MODES = ("ordered", "local")


@dataclass(frozen=True)
class AdmissionConfig:
    """Backpressure policy of the service ingress.

    ``max_inflight = 0`` disables the window entirely (and with it the
    queue): every request is admitted, reproducing the bare replicated
    service.  With a window, ``max_queue`` bounds the FIFO overflow queue;
    ``max_queue = 0`` sheds immediately once the window is full.
    """

    max_inflight: int = 0
    max_queue: int = 0

    def __post_init__(self) -> None:
        if self.max_inflight < 0:
            raise ValueError(f"max_inflight must be >= 0, got {self.max_inflight}")
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")


@dataclass
class ServiceRequest:
    """One client request as the service saw it, with its outcome."""

    index: int
    command: Command
    sender: int
    submitted_at: float
    #: ``"admitted"``, ``"queued"``, ``"shed"`` or ``"local"``.
    status: str = "admitted"
    completed_at: Optional[float] = None
    reply: Any = None
    shed: bool = False
    #: Set once the request is A-broadcast (admitted or de-queued).
    client_request: Optional[ClientRequest] = None
    #: Completion callbacks (closed-loop clients hang their loop here).
    callbacks: List[Callable[["ServiceRequest"], None]] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return self.completed_at is not None

    @property
    def response_time(self) -> Optional[float]:
        """Client-perceived response time incl. queueing (``None`` if open/shed)."""
        if self.completed_at is None or self.shed:
            return None
        return self.completed_at - self.submitted_at


class LoadTestedService:
    """Admission-controlled, consistency-aware front of the replicated KV store."""

    def __init__(
        self,
        system,
        consistency: str = "ordered",
        admission: Optional[AdmissionConfig] = None,
        processing_time: float = 0.0,
        state_machine_factory: Callable[[], StateMachine] = KeyValueStore,
    ) -> None:
        if consistency not in CONSISTENCY_MODES:
            raise ValueError(
                f"unknown consistency mode {consistency!r}; expected one of {CONSISTENCY_MODES}"
            )
        self.system = system
        self.consistency = consistency
        self.admission = admission if admission is not None else AdmissionConfig()
        self.replicated = ReplicatedService(
            system,
            state_machine_factory=state_machine_factory,
            processing_time=processing_time,
        )
        self.replicated.add_reply_listener(self._on_reply)
        #: Every request ever submitted, in submission order.
        self.requests: List[ServiceRequest] = []
        self._by_broadcast: Dict[Any, ServiceRequest] = {}
        self._queue: Deque[ServiceRequest] = deque()
        self._inflight = 0
        self._completion_listeners: List[Callable[[ServiceRequest], None]] = []
        # Outcome counters (mirrored by the service.* instrumentation).
        self.admitted = 0
        self.queued = 0
        self.shed = 0
        self.local_reads = 0
        self.queue_depth_hwm = 0
        self.inflight_hwm = 0

    def add_completion_listener(
        self, listener: Callable[[ServiceRequest], None]
    ) -> None:
        """Subscribe to every request completion (shed requests included)."""
        self._completion_listeners.append(listener)

    # ------------------------------------------------------------------ client API

    def submit(
        self,
        sender: int,
        command: Command,
        on_complete: Optional[Callable[[ServiceRequest], None]] = None,
    ) -> ServiceRequest:
        """Submit ``command`` through ingress replica ``sender``.

        Returns the tracked :class:`ServiceRequest`; its ``status`` tells the
        caller what the admission layer decided.  ``on_complete`` fires when
        the request finishes -- immediately for shed requests and local
        reads, at the first A-delivery for ordered commands.
        """
        now = self.system.sim.now
        request = ServiceRequest(
            index=len(self.requests),
            command=command,
            sender=sender,
            submitted_at=now,
        )
        if on_complete is not None:
            request.callbacks.append(on_complete)
        self.requests.append(request)

        if self.consistency == "local" and command.operation == "get":
            request.status = "local"
            self.local_reads += 1
            self._observe_request(now, command.client, "local")
            reply = self.replicated.read_local(sender, command)
            self._complete(request, reply, shed=False)
            return request

        if self.admission.max_inflight <= 0 or self._inflight < self.admission.max_inflight:
            self._admit(request)
            return request
        if len(self._queue) < self.admission.max_queue:
            request.status = "queued"
            self.queued += 1
            self._queue.append(request)
            if len(self._queue) > self.queue_depth_hwm:
                self.queue_depth_hwm = len(self._queue)
            self._observe_request(now, command.client, "queued")
            obs = self.system.obs
            if obs is not None:
                obs.gauge_max("service.queue_depth_hwm", len(self._queue))
            return request
        request.status = "shed"
        self.shed += 1
        self._observe_request(now, command.client, "shed")
        self._complete(request, reply=None, shed=True)
        return request

    def submit_at(
        self,
        time: float,
        sender: int,
        command: Command,
        on_complete: Optional[Callable[[ServiceRequest], None]] = None,
    ) -> None:
        """Schedule a submission at an absolute simulation time."""
        self.system.sim.schedule_at(time, self.submit, sender, command, on_complete)

    # ------------------------------------------------------------------ internals

    def _observe_request(self, now: float, client: int, status: str) -> None:
        obs = self.system.obs
        if obs is not None:
            obs.service_request(now, client, status)

    def _admit(self, request: ServiceRequest) -> None:
        self._inflight += 1
        if self._inflight > self.inflight_hwm:
            self.inflight_hwm = self._inflight
        if request.status != "queued":
            self.admitted += 1
            self._observe_request(self.system.sim.now, request.command.client, "admitted")
        obs = self.system.obs
        if obs is not None:
            obs.gauge_max("service.inflight_hwm", self._inflight)
        request.client_request = self.replicated.submit(request.sender, request.command)
        self._by_broadcast[request.client_request.broadcast_id] = request

    def _on_reply(self, client_request: ClientRequest) -> None:
        request = self._by_broadcast.pop(client_request.broadcast_id, None)
        if request is None:
            # A request submitted directly on the replicated layer
            # (mixed use is legal); the window never accounted for it.
            return
        self._inflight -= 1
        self._complete(request, client_request.reply, shed=False)
        while self._queue and (
            self.admission.max_inflight <= 0 or self._inflight < self.admission.max_inflight
        ):
            self._admit(self._queue.popleft())

    def _complete(self, request: ServiceRequest, reply: Any, shed: bool) -> None:
        request.completed_at = self.system.sim.now
        request.reply = reply
        request.shed = shed
        if request.status == "local":
            obs = self.system.obs
            if obs is not None:
                # Ordered commands are reported by the replication layer at
                # first A-delivery; the local read path never gets there.
                obs.service_reply(
                    self.system.sim.now, request.command.client, request.response_time
                )
        for callback in list(request.callbacks):
            callback(request)
        for listener in list(self._completion_listeners):
            listener(request)

    # ------------------------------------------------------------------ inspection

    @property
    def inflight(self) -> int:
        """Requests currently inside the broadcast layer."""
        return self._inflight

    @property
    def queue_depth(self) -> int:
        """Requests currently parked in the admission queue."""
        return len(self._queue)

    def response_times(self) -> List[float]:
        """Response times of every completed (non-shed) request."""
        return [
            request.response_time
            for request in self.requests
            if request.response_time is not None
        ]

    def outcome_counts(self) -> Dict[str, int]:
        """Admission outcomes: admitted / queued / shed / local_reads."""
        return {
            "admitted": self.admitted,
            "queued": self.queued,
            "shed": self.shed,
            "local_reads": self.local_reads,
        }

    def replicas_consistent(self) -> bool:
        """Delegate of :meth:`ReplicatedService.replicas_consistent`."""
        return self.replicated.replicas_consistent()


__all__ = [
    "AdmissionConfig",
    "CONSISTENCY_MODES",
    "LoadTestedService",
    "ServiceRequest",
]
