"""Service load-testing: client populations, request batching, backpressure.

This package promotes the replicated KV store from a demo to a load-tested
service:

* :mod:`repro.load.clients` -- open-loop (Poisson/uniform arrivals) and
  closed-loop (N clients with think time) populations over the KV command
  set;
* :mod:`repro.load.batching` -- :class:`BatchingAtomicBroadcast`, the
  ingress request-batching wrapper that amortizes one ordering step over up
  to ``max_batch`` requests (enabled via ``SystemConfig.max_batch``);
* :mod:`repro.load.service` -- :class:`LoadTestedService`, the
  admission-controlled, consistency-aware front of the replicated service.

The ``service-load`` scenario (:func:`repro.scenarios.run_service_load`)
drives all three through the campaign machinery.
"""

from repro.load.batching import BATCH_TAG, BatchingAtomicBroadcast
from repro.load.clients import ARRIVALS, ClosedLoopClients, CommandMix, OpenLoopClients
from repro.load.service import (
    CONSISTENCY_MODES,
    AdmissionConfig,
    LoadTestedService,
    ServiceRequest,
)

__all__ = [
    "ARRIVALS",
    "BATCH_TAG",
    "BatchingAtomicBroadcast",
    "CONSISTENCY_MODES",
    "AdmissionConfig",
    "ClosedLoopClients",
    "CommandMix",
    "LoadTestedService",
    "OpenLoopClients",
    "ServiceRequest",
]
