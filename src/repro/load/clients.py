"""Client populations driving the load-tested replicated service.

Two standard load-generation disciplines over the KV command set:

* :class:`OpenLoopClients` -- an *arrival process* (Poisson or uniform)
  at a configured offered load, independent of the service's state.  This
  generalizes the paper's Section 5.1 microbenchmark workload
  (:class:`repro.workload.generator.PoissonWorkload`) from opaque payloads
  to service requests: an open loop keeps offering load past saturation,
  which is what exposes capacity limits and backpressure behaviour.
* :class:`ClosedLoopClients` -- ``N`` clients that each keep exactly one
  request outstanding: submit, wait for the reply, think for an
  exponentially distributed time, repeat.  A closed loop self-throttles at
  saturation (offered load tracks completion rate), the classic
  interactive-user model.

Both draw all randomness (arrival gaps, think times, senders, command mix)
from dedicated named streams of the system's root seed, so a load run is as
deterministic as every other scenario in the repository.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.metrics.stats import interarrival_from_throughput
from repro.replication.state_machine import Command

#: Arrival disciplines of the open-loop population.
ARRIVALS = ("poisson", "uniform")


@dataclass(frozen=True)
class CommandMix:
    """Operation mix of a synthetic KV workload (weights need not sum to 1).

    ``keyspace`` keys are drawn uniformly, giving natural key contention.
    The default mix is write-heavy on purpose: writes must go through the
    total order under every consistency mode, so they keep the broadcast
    layer honest while ``get`` traffic exercises the consistency axis.
    """

    put: float = 0.5
    get: float = 0.3
    increment: float = 0.15
    delete: float = 0.05
    keyspace: int = 64

    def __post_init__(self) -> None:
        weights = (self.put, self.get, self.increment, self.delete)
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError(f"command mix weights must be >= 0 and not all zero: {self}")
        if self.keyspace < 1:
            raise ValueError(f"keyspace must be >= 1, got {self.keyspace}")

    def draw(self, rng, client: int, request_id: int) -> Command:
        """Draw one command from the mix using ``rng``."""
        weights = (
            ("put", self.put),
            ("get", self.get),
            ("increment", self.increment),
            ("delete", self.delete),
        )
        total = sum(weight for _op, weight in weights)
        pick = rng.random() * total
        operation = weights[-1][0]
        for op, weight in weights:
            if pick < weight:
                operation = op
                break
            pick -= weight
        # Counters live in their own key range: increment requires numeric
        # values and would type-clash with string-valued puts on shared keys.
        prefix = "ctr" if operation == "increment" else "key"
        key = f"{prefix}-{rng.randrange(self.keyspace)}"
        value = f"v{client}.{request_id}" if operation == "put" else None
        return Command(
            operation=operation,
            key=key,
            value=value,
            client=client,
            request_id=request_id,
        )


class _ClientPopulation:
    """Shared plumbing: sender assignment, request numbering, the mix."""

    def __init__(
        self,
        service,
        num_clients: int,
        mix: Optional[CommandMix],
        rng_name: str,
        senders: Optional[Sequence[int]],
    ) -> None:
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        self.service = service
        self.system = service.system
        self.num_clients = num_clients
        self.mix = mix if mix is not None else CommandMix()
        self._rng = self.system.rng.stream(rng_name)
        self.senders: List[int] = (
            list(senders) if senders is not None else list(range(self.system.config.n))
        )
        if not self.senders:
            raise ValueError("at least one ingress replica is required")
        #: Requests issued so far (the global request counter).
        self.issued = 0

    def _sender_for(self, client: int) -> int:
        """Ingress replica of ``client``: round-robin, skipping crashed ones."""
        preferred = self.senders[client % len(self.senders)]
        if not self.system.process(preferred).crashed:
            return preferred
        position = self.senders.index(preferred)
        for offset in range(1, len(self.senders)):
            candidate = self.senders[(position + offset) % len(self.senders)]
            if not self.system.process(candidate).crashed:
                return candidate
        return preferred

    def _next_command(self, client: int) -> Command:
        request_id = self.issued
        self.issued += 1
        return self.mix.draw(self._rng, client, request_id)


class OpenLoopClients(_ClientPopulation):
    """An open-loop arrival process submitting service requests.

    Arrivals are pre-scheduled on the kernel (like the paper's workload
    generator): ``offered_load`` requests per second with ``arrival``
    discipline ``"poisson"`` (exponential gaps) or ``"uniform"`` (gaps
    uniform in ``[0, 2/rate]``, same mean, lower variance).  Each arrival
    belongs to a uniformly drawn client, enters through the client's
    round-robin ingress replica, and is handed to
    :meth:`repro.load.service.LoadTestedService.submit`.
    """

    def __init__(
        self,
        service,
        offered_load: float,
        num_clients: int = 1,
        arrival: str = "poisson",
        mix: Optional[CommandMix] = None,
        rng_name: str = "load-clients",
        senders: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(service, num_clients, mix, rng_name, senders)
        if offered_load <= 0:
            raise ValueError(f"offered_load must be positive, got {offered_load}")
        if arrival not in ARRIVALS:
            raise ValueError(f"unknown arrival discipline {arrival!r}; expected one of {ARRIVALS}")
        self.offered_load = offered_load
        self.arrival = arrival

    @property
    def mean_interarrival(self) -> float:
        """Mean request gap in ms."""
        return interarrival_from_throughput(self.offered_load)

    def schedule_requests(self, count: int, start_time: float = 0.0) -> float:
        """Pre-schedule ``count`` arrivals; returns the last arrival time."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        mean = self.mean_interarrival
        time = start_time
        for _ in range(count):
            if self.arrival == "poisson":
                time += self._rng.expovariate(1.0 / mean)
            else:
                time += self._rng.uniform(0.0, 2.0 * mean)
            client = self._rng.randrange(self.num_clients)
            self.system.sim.schedule_at(time, self._emit, client)
        return time

    def _emit(self, client: int) -> None:
        command = self._next_command(client)
        self.service.submit(self._sender_for(client), command)


class ClosedLoopClients(_ClientPopulation):
    """``N`` clients, one outstanding request each, exponential think times.

    Every client loops submit -> reply -> think.  A shed request completes
    immediately (the admission layer said no), so a closed-loop client never
    deadlocks on backpressure; it just thinks and tries again.  ``start``
    staggers the first submissions over one mean think time so the
    population does not arrive as a single burst at t=0 (with
    ``think_time=0`` the stagger collapses and all clients hit the service
    at the start instant -- the maximum-pressure configuration).

    ``total_requests`` bounds the run: once the population has issued that
    many requests, clients stop instead of submitting again.
    """

    def __init__(
        self,
        service,
        num_clients: int,
        think_time: float,
        mix: Optional[CommandMix] = None,
        rng_name: str = "load-clients",
        senders: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(service, num_clients, mix, rng_name, senders)
        if think_time < 0:
            raise ValueError(f"think_time must be >= 0 ms, got {think_time}")
        self.think_time = think_time
        self._total = 0
        self._started = False

    def start(self, total_requests: int) -> None:
        """Launch the population; it stops after ``total_requests`` submissions."""
        if self._started:
            raise RuntimeError("the client population is already running")
        if total_requests < 1:
            raise ValueError(f"total_requests must be >= 1, got {total_requests}")
        self._started = True
        self._total = total_requests
        for client in range(self.num_clients):
            offset = self._think_delay() if self.think_time > 0 else 0.0
            self.system.sim.schedule_at(
                self.system.sim.now + offset, self._submit_next, client
            )

    def _think_delay(self) -> float:
        if self.think_time <= 0:
            return 0.0
        return self._rng.expovariate(1.0 / self.think_time)

    def _submit_next(self, client: int) -> None:
        if self.issued >= self._total:
            return
        command = self._next_command(client)
        self.service.submit(
            self._sender_for(client),
            command,
            on_complete=lambda _request, _client=client: self._on_complete(_client),
        )

    def _on_complete(self, client: int) -> None:
        if self.issued >= self._total:
            return
        # Always go through the kernel, even with zero think time: a shed
        # request completes synchronously inside submit(), and re-submitting
        # inline would recurse one stack frame per shed request.
        delay = self._think_delay()
        self.system.sim.schedule_at(self.system.sim.now + delay, self._submit_next, client)


__all__ = ["ARRIVALS", "ClosedLoopClients", "CommandMix", "OpenLoopClients"]
