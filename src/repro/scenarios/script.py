"""Stage orchestration for composite fault scenarios.

The paper's scenarios are one-shot measurements; the fault-injection
scenarios added on top (partitions, WAN topologies, gray failures) are
small *sequences*: configure the topology, inject the fault, run the
measured window, verify invariants on the outcome.  A
:class:`ScenarioScript` makes that sequence explicit and uniformly
error-handled:

* stages run in declaration order, each receiving the shared
  :class:`ScriptContext` (a scratch value bag plus the eventual
  :class:`~repro.scenarios.results.ScenarioResult`);
* the first failing stage **short-circuits** the remaining stages;
* a *critical* stage failure (configuration errors, simulator crashes)
  re-raises after recording which stage died, so sweep workers surface a
  clean attribution instead of a half-attributed traceback;
* a *non-critical* stage failure (a verification that found the invariant
  violated) is recorded into the result's ``params`` -- a violated
  invariant is a datum the sweep should keep, not an exception that
  discards the point.

The script never builds systems or schedules events itself -- stages do,
usually by delegating to :class:`~repro.scenarios.runner.ScenarioRunner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.scenarios.results import ScenarioResult

__all__ = ["ScenarioScript", "ScriptContext", "Stage"]


class ScriptContext:
    """Shared mutable state of one script run.

    Attributes
    ----------
    values:
        Inter-stage scratch storage (specs, derived configs, ...).
    result:
        The scenario result, once a stage produced one.
    stages_run:
        Names of the stages that completed, in order.
    failed_stage / error:
        The first failing stage and its exception (``None`` while ok).
    """

    def __init__(self, **initial: Any) -> None:
        self.values: Dict[str, Any] = dict(initial)
        self.result: Optional[ScenarioResult] = None
        self.stages_run: List[str] = []
        self.failed_stage: Optional[str] = None
        self.error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        """Whether every stage so far completed."""
        return self.failed_stage is None

    def require(self, key: str) -> Any:
        """Fetch a scratch value an earlier stage must have produced."""
        try:
            return self.values[key]
        except KeyError:
            raise RuntimeError(
                f"script stage requires {key!r}, but no earlier stage produced it"
            ) from None


@dataclass(frozen=True)
class Stage:
    """One named step of a script.

    ``critical`` stages re-raise on failure (after recording it); a
    non-critical stage failure only short-circuits the remaining stages.
    """

    name: str
    run: Callable[[ScriptContext], None]
    critical: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a stage needs a non-empty name")


@dataclass
class ScenarioScript:
    """An ordered stage pipeline with error short-circuiting."""

    scenario: str
    stages: List[Stage] = field(default_factory=list)

    def stage(
        self, name: str, run: Callable[[ScriptContext], None], critical: bool = True
    ) -> "ScenarioScript":
        """Append a stage (chainable)."""
        if any(existing.name == name for existing in self.stages):
            raise ValueError(f"script {self.scenario!r} already has a stage {name!r}")
        self.stages.append(Stage(name, run, critical))
        return self

    def run(self, context: Optional[ScriptContext] = None) -> ScriptContext:
        """Execute the stages in order; return the (possibly failed) context.

        The outcome is annotated into ``context.result.params`` under
        ``"script"`` whenever a result exists, so cached campaign points
        carry their stage trace.
        """
        if not self.stages:
            raise ValueError(f"script {self.scenario!r} has no stages")
        context = context if context is not None else ScriptContext()
        try:
            for stage in self.stages:
                try:
                    stage.run(context)
                except Exception as exc:
                    context.failed_stage = stage.name
                    context.error = exc
                    if stage.critical:
                        raise
                    break
                context.stages_run.append(stage.name)
        finally:
            self._annotate(context)
        return context

    def _annotate(self, context: ScriptContext) -> None:
        result = context.result
        if result is None:
            return
        trace: Dict[str, Any] = {"stages": list(context.stages_run)}
        if context.failed_stage is not None:
            trace["failed_stage"] = context.failed_stage
            trace["error"] = str(context.error)
        result.params["script"] = trace
