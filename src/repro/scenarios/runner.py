"""The single scenario driver.

Every benchmark scenario -- the paper's four and the beyond-paper ones -- is
"a Poisson workload plus a declarative :class:`~repro.scenarios.faults.FaultSchedule`
plus a measurement".  :class:`ScenarioRunner` owns everything the old
hand-written drivers duplicated: system construction, fault compilation,
workload scheduling, warm-up accounting, latency recording, stop conditions
and result assembly.  Scenario modules shrink to thin *specs*:

* :class:`SteadyStateSpec` measures the latency of ``num_messages`` workload
  messages after a warm-up window (``normal-steady``, ``crash-steady``,
  ``suspicion-steady``, ``correlated-crash``, ``churn-steady``,
  ``asymmetric-qos``);
* :class:`ProbeSpec` measures one tagged message injected at a fault instant
  (the crash-transient scenario), returning its latency.

The runner reproduces the legacy drivers bit for bit for the paper's four
scenarios: construction order, listener registration order and random-stream
usage are identical, so golden results carry over unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Sequence, Set

from repro.core.types import BroadcastID
from repro.metrics.latency import LatencyRecorder
from repro.metrics.stats import interarrival_from_throughput
from repro.obs import export as obs_export
from repro.scenarios.faults import FaultSchedule
from repro.scenarios.results import ScenarioResult
from repro.system import SystemConfig, build_system
from repro.workload.generator import PoissonWorkload

#: Default number of measured messages per point.
DEFAULT_MESSAGES = 400
#: Default fraction of extra messages used to warm the system up.
DEFAULT_WARMUP_FRACTION = 0.2
#: Hard cap on simulated events, to bound runs where the algorithm thrashes.
DEFAULT_MAX_EVENTS = 4_000_000


@dataclass
class SteadyStateSpec:
    """One steady-state measurement: workload + faults + measured window."""

    scenario: str
    config: SystemConfig
    throughput: float
    num_messages: int = DEFAULT_MESSAGES
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    #: Workload senders; default: the processes alive after the pre-run faults.
    senders: Optional[Sequence[int]] = None
    #: Redirect arrivals whose chosen sender is down to the next live process
    #: (used by scenarios whose fault schedule crashes processes mid-run).
    reassign_crashed_senders: bool = False
    max_time: Optional[float] = None
    max_events: int = DEFAULT_MAX_EVENTS
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ReformationSpec(SteadyStateSpec):
    """One recovery measurement: drive the group into view-majority loss.

    A steady-state measurement whose fault schedule (typically
    :meth:`FaultSchedule.view_majority_loss`) blocks the installed view at
    ``block_time``; the runner additionally watches every membership
    service for view installations and reports, in the result ``params``:

    * ``reformed``             -- whether any process installed a view of a
      later epoch (i.e. a reformation decided); ``None`` for stacks
      without a membership service (``"fd"``), which run the same workload
      and faults but have no views to reform,
    * ``time_to_reformation``  -- first such installation time minus
      ``block_time`` (``None`` when the group stays blocked, as the plain
      GM stacks do),
    * ``reformed_members``     -- membership of the first reformed view,
    * ``views_installed``      -- total view installations across processes.

    ``senders`` / ``reassign_crashed_senders`` are forced by the runner:
    every process sends (wrongly excluded senders flush their buffered
    messages when the reformation re-admits them) and crashed senders'
    arrivals are redirected.
    """

    block_time: float = 0.0


@dataclass
class ProbeSpec:
    """One transient measurement: background workload + faults + tagged probe."""

    config: SystemConfig
    throughput: float
    probe_sender: int
    probe_time: float
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    max_wait: float = 60_000.0
    max_events: int = DEFAULT_MAX_EVENTS
    payload: Any = "tagged-transient-message"
    #: Shared :class:`repro.obs.Instrumentation` to attach to the fresh
    #: system (the transient driver passes one object across its runs so a
    #: point's counters aggregate over all independent executions).
    obs: Any = None


class ScenarioRunner:
    """Executes scenario specs on freshly built systems."""

    def run_steady(self, spec: SteadyStateSpec) -> ScenarioResult:
        """Run one steady-state scenario point and return its result."""
        return self._measure_steady(build_system(spec.config), spec)

    def run_steady_on(self, system, spec: SteadyStateSpec) -> ScenarioResult:
        """Run one steady-state point on a caller-prepared system.

        Used by scripted scenarios (:mod:`repro.scenarios.script`) whose
        verification stages need to inspect the system after the run --
        the caller builds the system (``build_system(spec.config)``),
        keeps the reference, and verifies against it once this returns.
        """
        return self._measure_steady(system, spec)

    def run_reformation(self, spec: ReformationSpec) -> ScenarioResult:
        """Run one view-majority-loss point, measuring time-to-reformation."""
        system = build_system(spec.config)
        watches_views = system.stack_spec.uses_membership
        installs: list = []
        if watches_views:
            for pid, membership in enumerate(system.memberships):
                membership.add_view_listener(
                    lambda view, _pid=pid: installs.append(
                        (system.sim.now, _pid, view)
                    )
                )
        steady = replace(
            spec,
            senders=list(range(spec.config.n)),
            reassign_crashed_senders=True,
            params=dict(spec.params),
        )
        result = self._measure_steady(system, steady)
        reformed = [
            (time, pid, view) for time, pid, view in installs if view.epoch > 0
        ]
        first = min(reformed, default=None)
        result.params.update(
            {
                "block_time": spec.block_time,
                "reformed": bool(reformed) if watches_views else None,
                "time_to_reformation": (
                    None if first is None else first[0] - spec.block_time
                ),
                "reformed_members": None if first is None else list(first[2].members),
                "views_installed": len(installs) if watches_views else None,
            }
        )
        return result

    def _measure_steady(self, system, spec: SteadyStateSpec) -> ScenarioResult:
        """The shared steady-state measurement loop on a prepared system."""
        spec.faults.apply_pre(system)

        recorder = LatencyRecorder()
        recorder.attach(system)

        senders = (
            list(spec.senders) if spec.senders is not None else system.correct_processes()
        )
        workload = PoissonWorkload(
            system,
            spec.throughput,
            senders=senders,
            reassign_crashed=spec.reassign_crashed_senders,
        )

        warmup_count = int(math.ceil(spec.num_messages * spec.warmup_fraction))
        total = warmup_count + spec.num_messages
        measured_ids: Set[BroadcastID] = set()
        outstanding = {"count": spec.num_messages, "all_sent": False}

        def on_sent(index: int, broadcast_id: BroadcastID, _time: float) -> None:
            if index >= warmup_count:
                measured_ids.add(broadcast_id)
                if recorder.is_delivered(broadcast_id):
                    outstanding["count"] -= 1
            if index == total - 1:
                outstanding["all_sent"] = True
            _maybe_stop()

        def on_delivery(_pid: int, broadcast_id: BroadcastID, _payload) -> None:
            if broadcast_id in measured_ids and recorder.delivery_count(broadcast_id) == 1:
                outstanding["count"] -= 1
                _maybe_stop()

        def _maybe_stop() -> None:
            if outstanding["all_sent"] and outstanding["count"] <= 0:
                system.sim.stop()

        workload.add_sent_callback(on_sent)
        system.add_delivery_listener(on_delivery)

        last_arrival = workload.schedule_messages(total, start_time=0.0)
        spec.faults.schedule(system)

        max_time = spec.max_time
        if max_time is None:
            # Allow generous slack beyond the arrival window before giving up.
            max_time = last_arrival + max(
                20_000.0, 20 * interarrival_from_throughput(spec.throughput)
            )

        system.run(until=max_time, max_events=spec.max_events)

        params = dict(spec.params)
        if system.sim.run_exhausted:
            # The run hit the event budget rather than draining/stopping --
            # the point must be read as "gave up", not "finished".
            params["run_exhausted"] = True

        metrics = None
        if system.obs is not None:
            metrics = obs_export.metrics_snapshot(
                system, scenario=spec.scenario, throughput=spec.throughput
            )
            obs_export.maybe_write_traces(
                system,
                f"{spec.scenario}-{spec.config.stack_label.replace('/', '-')}"
                f"-n{spec.config.n}-s{spec.config.seed}-T{spec.throughput:g}",
            )

        latencies = list(recorder.latencies(measured_ids).values())
        return ScenarioResult(
            scenario=spec.scenario,
            algorithm=spec.config.stack_label,
            n=spec.config.n,
            throughput=spec.throughput,
            latencies=latencies,
            undelivered=spec.num_messages - len(latencies),
            measured=spec.num_messages,
            duration=system.sim.now,
            events=system.sim.events_processed,
            params=params,
            metrics=metrics,
        )

    def run_probe(self, spec: ProbeSpec) -> Optional[float]:
        """Run one probe execution; return the tagged latency (or ``None``)."""
        system = build_system(spec.config)
        if spec.obs is not None:
            system.enable_instrumentation(spec.obs)
        spec.faults.apply_pre(system)
        recorder = LatencyRecorder()
        recorder.attach(system)

        # Background traffic before and after the fault, from every process
        # (a crashed sender's post-crash messages are dropped by the network,
        # which matches "crashed processes do not send any further messages").
        workload = PoissonWorkload(
            system, spec.throughput, senders=list(range(spec.config.n))
        )
        horizon = spec.probe_time + spec.max_wait
        background_count = int(spec.throughput * horizon / 1000.0) + 1
        workload.schedule_messages(background_count, start_time=0.0)

        tagged: Dict[str, Any] = {}

        def on_delivery(_pid, broadcast_id, _payload) -> None:
            if tagged.get("id") == broadcast_id:
                system.sim.stop()

        def emit_probe() -> None:
            tagged["id"] = system.broadcast(spec.probe_sender, spec.payload)

        system.add_delivery_listener(on_delivery)
        # The fault events are scheduled first so that, at the probe instant,
        # the fault fires before the probe is A-broadcast -- the paper's
        # "p crashes and q A-broadcasts m at the same time t".
        spec.faults.schedule(system)
        system.sim.schedule_at(spec.probe_time, emit_probe)
        system.run(until=horizon, max_events=spec.max_events)

        tagged_id = tagged.get("id")
        if tagged_id is None:
            return None
        return recorder.latency(tagged_id)
