"""Declarative fault schedules.

A :class:`FaultSchedule` is a list of timed fault events -- crashes,
recoveries, correlated crash groups, forced wrong-suspicion windows,
network partitions (symmetric splits and asymmetric blocked links), gray
failures (degraded CPUs, lossy/duplicating links) and Poisson
crash-recovery churn generators -- that is *compiled onto* a
:class:`repro.system.BroadcastSystem` before a run.  The scenario drivers
stop hand-coding their fault logic: every scenario (the paper's four and the
beyond-paper ones) is "a workload plus a fault schedule", executed by the
:class:`repro.scenarios.runner.ScenarioRunner`.

Two kinds of events exist:

* **pre-run events** (``CrashAt`` with ``time <= 0``) are applied
  synchronously before the simulation starts, reproducing the crash-steady
  convention where crashes happened long before the measured window;
* **timed events** are scheduled on the simulation kernel and fire during
  the run.

Generators (:class:`PoissonChurn`) expand deterministically into concrete
crash/recovery pairs using the system's named random streams, so a churn
schedule is a pure function of the system seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.rng import RandomStreams

#: Canonical timing of the view-majority-loss schedule: the wrong-suspicion
#: window and the instant of the blocking crash inside it.  Shared with the
#: scenario driver defaults and with campaign-spec validation, so an
#: out-of-window ``crash_time`` is rejected before any simulation starts.
VML_SUSPECT_START = 50.0
VML_SUSPECT_DURATION = 400.0
VML_CRASH_TIME = 300.0


class FaultEvent:
    """Base class of all fault-schedule events (marker only)."""


@dataclass(frozen=True)
class CrashAt(FaultEvent):
    """Crash ``pid`` at ``time``.

    With ``time <= 0`` the crash is applied before the simulation starts;
    ``permanent_suspicion`` additionally makes every failure detector suspect
    the process from the very beginning (the crash-steady convention, where
    crashes happened long before the measured window and all detection has
    completed).
    """

    time: float
    pid: int
    permanent_suspicion: bool = False


@dataclass(frozen=True)
class RecoverAt(FaultEvent):
    """Recover ``pid`` at ``time`` (it rejoins and catches up via protocol)."""

    time: float
    pid: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"recoveries cannot predate the run, got time={self.time}")


@dataclass(frozen=True)
class CorrelatedCrash(FaultEvent):
    """Crash every process in ``pids`` at the same instant ``time``.

    The paper only ever crashes one process at a time; a correlated group
    models a shared-fate fault (rack power loss, correlated software bug).
    """

    time: float
    pids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.pids:
            raise ValueError("a correlated crash needs at least one process")
        if len(set(self.pids)) != len(self.pids):
            raise ValueError(f"duplicate pids in correlated crash group: {self.pids}")


@dataclass(frozen=True)
class SuspectDuring(FaultEvent):
    """Force a wrong suspicion of ``target`` during ``[start, start + duration]``.

    ``monitors`` restricts which observers make the mistake (default: all) --
    the deterministic complement of the random QoS mistake model, useful for
    worst-case asymmetric suspicion scenarios.
    """

    start: float
    duration: float
    target: int
    monitors: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")


@dataclass(frozen=True)
class PartitionAt(FaultEvent):
    """Partition the network at ``time``.

    ``groups`` lists the symmetric sides of the split: communication is only
    possible within a group, and every pid not listed becomes a singleton.
    ``links`` instead blocks individual *directed* ``(src, dst)`` links (an
    asymmetric partition -- e.g. A can reach B while B's frames to A are
    lost).  Exactly one of the two must be given.  Partitions replace each
    other: a later :class:`PartitionAt` supersedes the earlier mask, and
    :class:`HealAt` restores full connectivity.
    """

    time: float
    groups: Tuple[Tuple[int, ...], ...] = ()
    links: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"partitions cannot predate the run, got time={self.time}")
        if bool(self.groups) == bool(self.links):
            raise ValueError("a partition needs either groups or links (not both)")
        seen = set()
        for group in self.groups:
            for pid in group:
                if pid in seen:
                    raise ValueError(f"pid {pid} appears in more than one group")
                seen.add(pid)
        for link in self.links:
            if len(link) != 2 or link[0] == link[1]:
                raise ValueError(f"a blocked link must be a (src, dst) pair, got {link!r}")


@dataclass(frozen=True)
class HealAt(FaultEvent):
    """Heal every partition (and blocked link) at ``time``."""

    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"healing cannot predate the run, got time={self.time}")


@dataclass(frozen=True)
class DegradeAt(FaultEvent):
    """Gray failure: slow the CPU of ``pid`` by ``factor`` from ``time`` on.

    The process stays alive and correct -- every job it serves just takes
    ``factor`` times as long -- so a well-calibrated failure detector must
    *not* permanently exclude it.  ``RestoreAt`` returns it to full speed.
    """

    time: float
    pid: int
    factor: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"degradations cannot predate the run, got time={self.time}")
        if self.factor < 1.0:
            raise ValueError(f"a degradation factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class RestoreAt(FaultEvent):
    """End a gray CPU degradation: ``pid`` runs at full speed from ``time``."""

    time: float
    pid: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"restorations cannot predate the run, got time={self.time}")


@dataclass(frozen=True)
class DegradeLinkAt(FaultEvent):
    """Gray link: make the directed link ``src -> dst`` lossy/duplicating.

    Each frame crossing the link is independently dropped with
    ``loss_probability`` and (if not dropped) duplicated with
    ``duplicate_probability``, driven by the system's named random stream
    so runs stay deterministic per seed.  Scheduling the event with both
    probabilities zero restores the link.
    """

    time: float
    src: int
    dst: int
    loss_probability: float = 0.0
    duplicate_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"link faults cannot predate the run, got time={self.time}")
        if self.src == self.dst:
            raise ValueError("a link fault needs two distinct endpoints")
        for name in ("loss_probability", "duplicate_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class PoissonChurn(FaultEvent):
    """Crash-recovery churn: a Poisson process of crashes, each with a downtime.

    Crash arrivals form a Poisson process of ``rate`` crashes/s over
    ``[start, until]``; each crash picks a uniformly random up process and
    keeps it down for an exponential downtime of mean ``mean_downtime`` ms.
    The generator never takes down more than ``max_concurrent`` processes at
    once (default: the ``f < n/2`` bound of the system), so a churn schedule
    always keeps a correct majority -- crash arrivals that would violate the
    bound are dropped.

    Expansion is driven by the system's named random stream ``rng_name``:
    the concrete crash/recovery timeline is a deterministic function of the
    system seed.
    """

    rate: float
    mean_downtime: float
    until: float
    start: float = 0.0
    max_concurrent: Optional[int] = None
    rng_name: str = "churn"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"churn rate must be > 0 crashes/s, got {self.rate}")
        if self.mean_downtime <= 0:
            raise ValueError(f"mean_downtime must be > 0 ms, got {self.mean_downtime}")
        if self.until <= self.start:
            raise ValueError("the churn window must have positive length")

    def expand(
        self, system, external_downtime: Sequence[Tuple[float, float, int]] = ()
    ) -> List[FaultEvent]:
        """Generate the concrete crash/recovery events for ``system``.

        The draws come from a *fresh* stream factory seeded with the system
        seed (same derivation as ``system.rng``, independent state), so the
        expansion is a pure function of the seed: validating a schedule with
        :meth:`FaultSchedule.max_concurrent_crashes` and then applying it
        operates on the identical timeline.

        ``external_downtime`` lists ``(start, end, pid)`` windows during
        which other events of the same schedule keep ``pid`` down:
        :meth:`FaultSchedule.timeline` passes them so that churn neither
        re-crashes/revives a process another event controls nor exceeds the
        concurrency bound together with those events.
        """
        rng = RandomStreams(system.config.seed).stream(self.rng_name)
        n = system.config.n
        limit = (
            self.max_concurrent
            if self.max_concurrent is not None
            else system.config.max_tolerated_crashes()
        )
        events: List[FaultEvent] = []
        down: List[Tuple[float, int]] = []  # (recovery_time, pid), kept sorted
        time = self.start
        while True:
            time += rng.expovariate(self.rate / 1000.0)
            if time >= self.until:
                break
            down = [(recovery, pid) for recovery, pid in down if recovery > time]
            # Reserve every external window that has not ended yet (active
            # *or* upcoming): a churn downtime drawn now may still be open
            # when a future static crash fires, so only the slots left after
            # all outstanding windows are safe to churn.
            reserved = {pid for _start, end, pid in external_downtime if end > time}
            if len(down) + len(reserved) >= limit:
                continue  # the f < n/2 bound is tight right now: skip this crash
            busy = {pid for _recovery, pid in down} | reserved
            up = sorted(set(range(n)) - busy)
            if not up:
                continue
            pid = rng.choice(up)
            downtime = rng.expovariate(1.0 / self.mean_downtime)
            events.append(CrashAt(time, pid))
            events.append(RecoverAt(time + downtime, pid))
            down.append((time + downtime, pid))
        return events


@dataclass
class FaultSchedule:
    """An ordered collection of fault events compiled onto one system."""

    events: List[FaultEvent] = field(default_factory=list)

    # ------------------------------------------------------------------ building

    def add(self, event: FaultEvent) -> "FaultSchedule":
        """Append ``event`` (chainable)."""
        self.events.append(event)
        return self

    def crash(self, time: float, pid: int) -> "FaultSchedule":
        """Append a :class:`CrashAt` (chainable)."""
        return self.add(CrashAt(time, pid))

    def recover(self, time: float, pid: int) -> "FaultSchedule":
        """Append a :class:`RecoverAt` (chainable)."""
        return self.add(RecoverAt(time, pid))

    def partition(self, time: float, groups: Sequence[Sequence[int]]) -> "FaultSchedule":
        """Append a symmetric :class:`PartitionAt` (chainable)."""
        return self.add(PartitionAt(time, groups=tuple(tuple(g) for g in groups)))

    def heal(self, time: float) -> "FaultSchedule":
        """Append a :class:`HealAt` (chainable)."""
        return self.add(HealAt(time))

    def degrade(self, time: float, pid: int, factor: float) -> "FaultSchedule":
        """Append a :class:`DegradeAt` (chainable)."""
        return self.add(DegradeAt(time, pid, factor))

    def restore(self, time: float, pid: int) -> "FaultSchedule":
        """Append a :class:`RestoreAt` (chainable)."""
        return self.add(RestoreAt(time, pid))

    @staticmethod
    def pre_crashed(pids: Sequence[int]) -> "FaultSchedule":
        """The crash-steady schedule: ``pids`` down and suspected from t = 0."""
        return FaultSchedule(
            [CrashAt(0.0, pid, permanent_suspicion=True) for pid in pids]
        )

    @staticmethod
    def partition_transient(
        n: int, start: float, duration: float
    ) -> "FaultSchedule":
        """The canonical transient partition: split off a minority, then heal.

        The top ``(n - 1) // 2`` pids form the minority side -- the largest
        split that still leaves a majority able to make progress.  The
        minority must never deliver past the epoch fence while partitioned
        (its views cannot gather a majority), and after healing every
        process converges back onto one total order.
        """
        if n < 3:
            raise ValueError(f"a transient partition needs n >= 3, got n={n}")
        if duration <= 0:
            raise ValueError(f"the partition needs a positive duration, got {duration}")
        minority = tuple(range(n - (n - 1) // 2, n))
        majority = tuple(range(n - (n - 1) // 2))
        return FaultSchedule(
            [
                PartitionAt(start, groups=(majority, minority)),
                HealAt(start + duration),
            ]
        )

    @staticmethod
    def view_majority_loss(
        n: int,
        suspect_start: float = VML_SUSPECT_START,
        suspect_duration: float = VML_SUSPECT_DURATION,
        crash_time: float = VML_CRASH_TIME,
    ) -> "FaultSchedule":
        """The canonical schedule driving a GM group into view-majority loss.

        Two composed faults reproduce the blocked state deterministically:

        1. a :class:`SuspectDuring` window makes every monitor wrongly
           suspect the ``(n - 1) // 2`` highest-numbered processes, so the
           installed view shrinks to the ``ceil((n + 1) / 2)`` lowest pids;
        2. a :class:`CrashAt` then *really* crashes the highest-numbered
           members of the shrunken view -- just enough of them that the
           alive members no longer form a majority of that view, while a
           global majority of all ``n`` processes stays alive.

        Under the plain GM stacks no view change can ever decide again (the
        paper's liveness limit, detected by the
        ``gm_blocked_by_view_majority_loss`` property); under ``gm-reform``
        the stalled view change escalates to a reformation.  The suspicion
        window ends before a default-timeout reformation proposes, so the
        wrongly excluded processes are trusted again and re-admitted.

        Odd ``n >= 3`` uses the single-window construction.  Even ``n >= 4``
        cannot cross the view majority in one shrink (removing ``(n-1)//2``
        members from an even view leaves an alive majority), so it stages
        two suspicion windows: the first suspects only the highest pid,
        shrinking to the odd view ``{0..n-2}``; a second window starting
        midway between ``suspect_start`` and ``crash_time`` then suspects
        the top ``(n-2)/2`` of that view, reaching the same blocked shape
        with the shrunken view ``{0..n/2-1}``.  Both windows end together,
        so the reformation re-admits every wrongly suspected process.
        """
        if n < 3:
            raise ValueError(f"view-majority loss needs a group size >= 3, got n={n}")
        if not suspect_start < crash_time < suspect_start + suspect_duration:
            raise ValueError(
                "the blocking crash must fire inside the suspicion window "
                f"(need {suspect_start} < crash_time < "
                f"{suspect_start + suspect_duration}, got {crash_time}); outside "
                "it the view keeps an alive majority and never blocks"
            )
        window_end = suspect_start + suspect_duration
        events: List[FaultEvent] = []
        if n % 2 == 0:
            # Stage 1: drop the highest pid, making the view odd.
            events.append(SuspectDuring(suspect_start, suspect_duration, n - 1))
            # Stage 2: midway to the crash, drop the top (n-2)/2 of the
            # intermediate view {0..n-2} -- an odd-sized view, so this
            # single shrink crosses its majority exactly as the odd-n case.
            stage2_start = (suspect_start + crash_time) / 2.0
            intermediate = n - 1
            suspected = tuple(range(intermediate - (intermediate - 1) // 2, intermediate))
            events.extend(
                SuspectDuring(stage2_start, window_end - stage2_start, target)
                for target in suspected
            )
            shrunken = intermediate - len(suspected)
        else:
            suspected = tuple(range(n - (n - 1) // 2, n))
            events.extend(
                SuspectDuring(suspect_start, suspect_duration, target)
                for target in suspected
            )
            shrunken = n - len(suspected)
        # Crash the highest members of the shrunken view {0..shrunken-1},
        # leaving the sequencer p0 alive: one fewer alive member than the
        # shrunken view's majority, the minimal blocking crash count.
        crash_count = shrunken - shrunken // 2
        crashed = tuple(range(shrunken - crash_count, shrunken))
        events.extend(CrashAt(crash_time, pid) for pid in crashed)
        return FaultSchedule(events)

    # ------------------------------------------------------------------ queries

    def pre_run_events(self) -> List[CrashAt]:
        """The events applied synchronously before the simulation starts."""
        return [
            event
            for event in self.events
            if isinstance(event, CrashAt) and event.time <= 0.0
        ]

    def timeline(self, system=None) -> List[FaultEvent]:
        """Concrete timed events in declaration order (generators expanded).

        Expanding a :class:`PoissonChurn` requires ``system`` (its random
        streams drive the generator); without one, generators are returned
        unexpanded.  The generators see the downtime windows of the
        schedule's explicit events, so churn composes with static crashes
        without touching their processes or breaching the concurrency bound.
        """
        concrete: List[FaultEvent] = []
        static_windows = self._static_downtime()
        for event in self.events:
            if isinstance(event, PoissonChurn):
                concrete.extend(
                    event.expand(system, external_downtime=static_windows)
                    if system is not None
                    else [event]
                )
            elif not (isinstance(event, CrashAt) and event.time <= 0.0):
                concrete.append(event)
        return concrete

    def _static_downtime(self) -> List[Tuple[float, float, int]]:
        """Downtime windows ``(start, end, pid)`` of the explicit events.

        A crash without a matching later recovery keeps its process down
        forever.  Pre-run crashes count from time zero.
        """
        recoveries: Dict[int, List[float]] = {}
        for event in self.events:
            if isinstance(event, RecoverAt):
                recoveries.setdefault(event.pid, []).append(event.time)
        windows: List[Tuple[float, float, int]] = []

        def close(start: float, pid: int) -> None:
            later = sorted(t for t in recoveries.get(pid, []) if t >= start)
            windows.append((start, later[0] if later else float("inf"), pid))

        for event in self.events:
            if isinstance(event, CrashAt):
                close(max(event.time, 0.0), event.pid)
            elif isinstance(event, CorrelatedCrash):
                for pid in event.pids:
                    close(event.time, pid)
        return windows

    def max_concurrent_crashes(self, system=None) -> int:
        """Largest number of processes simultaneously down under this schedule.

        Used to validate the ``f < n/2`` bound: scenario drivers refuse
        schedules that ever take a majority down.  Schedules containing
        generators (:class:`PoissonChurn`) need ``system`` to expand them;
        validating one without a system would silently undercount, so it is
        an error.
        """
        if system is None and any(
            isinstance(event, PoissonChurn) for event in self.events
        ):
            raise ValueError(
                "validating a schedule with churn generators requires the system "
                "whose random streams expand them"
            )
        deltas: List[Tuple[float, int]] = [(0.0, 1) for _ in self.pre_run_events()]
        for event in self.timeline(system):
            if isinstance(event, CrashAt):
                deltas.append((event.time, 1))
            elif isinstance(event, CorrelatedCrash):
                deltas.append((event.time, len(event.pids)))
            elif isinstance(event, RecoverAt):
                deltas.append((event.time, -1))
        worst = current = 0
        # Recoveries at the same instant as crashes are counted first: a
        # process that recovers at t frees its slot for a crash at t.
        for _time, delta in sorted(deltas, key=lambda d: (d[0], d[1])):
            current += delta
            worst = max(worst, current)
        return worst

    # ------------------------------------------------------------------ compilation

    def apply_pre(self, system) -> None:
        """Apply the pre-run crashes synchronously (before the run starts)."""
        for event in self.pre_run_events():
            system.crash(event.pid)
            if event.permanent_suspicion:
                system.suspect_permanently(event.pid)

    def schedule(self, system) -> None:
        """Schedule every timed event on the system's simulation kernel."""
        for event in self.timeline(system):
            if isinstance(event, CrashAt):
                system.crash_at(event.time, event.pid)
                if event.permanent_suspicion:
                    system.suspect_permanently_at(event.time, event.pid)
            elif isinstance(event, RecoverAt):
                system.recover_at(event.time, event.pid)
            elif isinstance(event, CorrelatedCrash):
                for pid in event.pids:
                    system.crash_at(event.time, pid)
            elif isinstance(event, SuspectDuring):
                system.suspect_during(
                    event.target,
                    event.start,
                    event.duration,
                    monitors=event.monitors,
                )
            elif isinstance(event, PartitionAt):
                if event.groups:
                    system.partition_at(event.time, event.groups)
                else:
                    system.block_links_at(event.time, event.links)
            elif isinstance(event, HealAt):
                system.heal_at(event.time)
            elif isinstance(event, DegradeAt):
                system.degrade_cpu_at(event.time, event.pid, event.factor)
            elif isinstance(event, RestoreAt):
                system.restore_cpu_at(event.time, event.pid)
            elif isinstance(event, DegradeLinkAt):
                system.degrade_link_at(
                    event.time,
                    event.src,
                    event.dst,
                    event.loss_probability,
                    event.duplicate_probability,
                )
            else:  # pragma: no cover - defensive
                raise TypeError(f"cannot schedule fault event {event!r}")

    def apply(self, system) -> None:
        """Compile the whole schedule onto ``system`` (pre events + timed).

        ``system`` is anything satisfying the
        :class:`repro.stacks.FaultInjectable` capability protocol -- the
        schedule only uses ``crash`` / ``recover`` (and their scheduled
        variants), ``suspect_permanently`` / ``suspect_permanently_at``,
        ``suspect_during``, the partition capabilities (``partition_at`` /
        ``block_links_at`` / ``heal_at``) and the gray-failure capabilities
        (``degrade_cpu_at`` / ``restore_cpu_at`` / ``degrade_link_at``),
        never failure detector or network internals, so schedules run
        unchanged on every registered stack and fd kind.
        """
        self.apply_pre(system)
        self.schedule(system)
