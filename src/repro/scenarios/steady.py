"""Steady-state benchmark scenarios of the paper.

Three of the paper's four scenarios measure the latency of atomic broadcast
in steady state, under a Poisson workload of aggregate throughput ``T``:

* ``normal-steady``    -- neither crashes nor wrong suspicions (Fig. 4),
* ``crash-steady``     -- some processes crashed long before the measured
  window, and every failure detector suspects them permanently (Fig. 5),
* ``suspicion-steady`` -- no crashes, but the failure detectors wrongly
  suspect correct processes, with mistake recurrence time ``T_MR`` and
  mistake duration ``T_M`` (Figs. 6 and 7).

Each function is a thin spec over the shared
:class:`repro.scenarios.runner.ScenarioRunner`: it pins the failure detector
QoS and the fault schedule and delegates workload scheduling, warm-up,
measurement and stop conditions to the runner.  The beyond-paper scenarios
live in :mod:`repro.scenarios.extended`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.failure_detectors.qos import QoSConfig
from repro.scenarios.faults import FaultSchedule
from repro.scenarios.runner import (
    DEFAULT_MAX_EVENTS,
    DEFAULT_MESSAGES,
    DEFAULT_WARMUP_FRACTION,
    ScenarioRunner,
    SteadyStateSpec,
)
from repro.scenarios.results import ScenarioResult
from repro.system import SystemConfig

__all__ = [
    "DEFAULT_MAX_EVENTS",
    "DEFAULT_MESSAGES",
    "DEFAULT_WARMUP_FRACTION",
    "run_crash_steady",
    "run_normal_steady",
    "run_suspicion_steady",
]


def run_normal_steady(
    config: SystemConfig,
    throughput: float,
    num_messages: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Latency in runs with neither crashes nor suspicions (Fig. 4)."""
    spec = SteadyStateSpec(
        scenario="normal-steady",
        config=replace(config, fd=QoSConfig()),
        throughput=throughput,
        num_messages=num_messages,
        warmup_fraction=warmup_fraction,
        max_time=max_time,
        max_events=max_events,
    )
    return ScenarioRunner().run_steady(spec)


def run_crash_steady(
    config: SystemConfig,
    throughput: float,
    crashed: Sequence[int],
    num_messages: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Latency long after the processes in ``crashed`` have crashed (Fig. 5).

    The crashed processes are suspected permanently by every failure detector
    from the very start of the run, and they do not send workload messages --
    exactly the paper's definition of the crash-steady scenario.
    """
    crashed = tuple(crashed)
    if len(crashed) > config.max_tolerated_crashes():
        raise ValueError(
            f"{len(crashed)} crashes exceed the f < n/2 bound for n={config.n}"
        )
    spec = SteadyStateSpec(
        scenario="crash-steady",
        config=replace(config, fd=QoSConfig()),
        throughput=throughput,
        num_messages=num_messages,
        warmup_fraction=warmup_fraction,
        faults=FaultSchedule.pre_crashed(crashed),
        max_time=max_time,
        max_events=max_events,
        params={"crashed": crashed},
    )
    return ScenarioRunner().run_steady(spec)


def run_suspicion_steady(
    config: SystemConfig,
    throughput: float,
    mistake_recurrence_time: float,
    mistake_duration: float = 0.0,
    num_messages: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Latency with wrong suspicions of correct processes (Figs. 6 and 7).

    ``mistake_recurrence_time`` and ``mistake_duration`` are the means (in
    ms) of the exponential QoS metrics ``T_MR`` and ``T_M`` of every failure
    detector pair.  No process crashes.
    """
    if config.fd_kind != "qos":
        raise ValueError(
            "suspicion-steady drives the random QoS mistake model; "
            f"fd_kind={config.fd_kind!r} does not support it (use fd_kind='qos')"
        )
    fd = QoSConfig(
        detection_time=0.0,
        mistake_recurrence_time=mistake_recurrence_time,
        mistake_duration=mistake_duration,
    )
    spec = SteadyStateSpec(
        scenario="suspicion-steady",
        config=replace(config, fd=fd),
        throughput=throughput,
        num_messages=num_messages,
        warmup_fraction=warmup_fraction,
        max_time=max_time,
        max_events=max_events,
        params={
            "mistake_recurrence_time": mistake_recurrence_time,
            "mistake_duration": mistake_duration,
        },
    )
    return ScenarioRunner().run_steady(spec)
