"""Steady-state benchmark scenarios.

Three of the paper's four scenarios measure the latency of atomic broadcast
in steady state, under a Poisson workload of aggregate throughput ``T``:

* ``normal-steady``    -- neither crashes nor wrong suspicions (Fig. 4),
* ``crash-steady``     -- some processes crashed long before the measured
  window, and every failure detector suspects them permanently (Fig. 5),
* ``suspicion-steady`` -- no crashes, but the failure detectors wrongly
  suspect correct processes, with mistake recurrence time ``T_MR`` and
  mistake duration ``T_M`` (Figs. 6 and 7).

Every run measures ``num_messages`` messages after a warm-up period and
reports the latency of each (time from A-broadcast to the earliest
A-delivery).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Optional, Sequence, Set

from repro.core.types import BroadcastID
from repro.failure_detectors.qos import QoSConfig
from repro.metrics.latency import LatencyRecorder
from repro.metrics.stats import interarrival_from_throughput
from repro.scenarios.results import ScenarioResult
from repro.system import SystemConfig, build_system
from repro.workload.generator import PoissonWorkload

#: Default number of measured messages per point.
DEFAULT_MESSAGES = 400
#: Default fraction of extra messages used to warm the system up.
DEFAULT_WARMUP_FRACTION = 0.2
#: Hard cap on simulated events, to bound runs where the algorithm thrashes.
DEFAULT_MAX_EVENTS = 4_000_000


def _run_steady(
    scenario: str,
    config: SystemConfig,
    throughput: float,
    num_messages: int,
    warmup_fraction: float,
    crashed: Sequence[int],
    max_time: Optional[float],
    max_events: int,
    params: dict,
) -> ScenarioResult:
    """Common driver of the three steady-state scenarios."""
    system = build_system(config)
    for pid in crashed:
        system.crash(pid)
        system.fd_fabric.suspect_permanently(pid)

    recorder = LatencyRecorder()
    recorder.attach(system)

    senders = system.correct_processes()
    workload = PoissonWorkload(system, throughput, senders=senders)

    warmup_count = int(math.ceil(num_messages * warmup_fraction))
    total = warmup_count + num_messages
    measured_ids: Set[BroadcastID] = set()
    outstanding = {"count": num_messages, "all_sent": False}

    def on_sent(index: int, broadcast_id: BroadcastID, _time: float) -> None:
        if index >= warmup_count:
            measured_ids.add(broadcast_id)
            if recorder.is_delivered(broadcast_id):
                outstanding["count"] -= 1
        if index == total - 1:
            outstanding["all_sent"] = True
        _maybe_stop()

    def on_delivery(_pid: int, broadcast_id: BroadcastID, _payload) -> None:
        if broadcast_id in measured_ids and recorder.delivery_count(broadcast_id) == 1:
            outstanding["count"] -= 1
            _maybe_stop()

    def _maybe_stop() -> None:
        if outstanding["all_sent"] and outstanding["count"] <= 0:
            system.sim.stop()

    workload.add_sent_callback(on_sent)
    system.add_delivery_listener(on_delivery)

    last_arrival = workload.schedule_messages(total, start_time=0.0)
    if max_time is None:
        # Allow generous slack beyond the arrival window before giving up.
        max_time = last_arrival + max(20_000.0, 20 * interarrival_from_throughput(throughput))

    system.run(until=max_time, max_events=max_events)

    latencies = list(recorder.latencies(measured_ids).values())
    result = ScenarioResult(
        scenario=scenario,
        algorithm=config.algorithm,
        n=config.n,
        throughput=throughput,
        latencies=latencies,
        undelivered=len(measured_ids) - len(latencies) + (num_messages - len(measured_ids)),
        measured=num_messages,
        duration=system.sim.now,
        events=system.sim.events_processed,
        params=dict(params),
    )
    return result


def run_normal_steady(
    config: SystemConfig,
    throughput: float,
    num_messages: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Latency in runs with neither crashes nor suspicions (Fig. 4)."""
    config = replace(config, fd=QoSConfig())
    return _run_steady(
        "normal-steady",
        config,
        throughput,
        num_messages,
        warmup_fraction,
        crashed=(),
        max_time=max_time,
        max_events=max_events,
        params={},
    )


def run_crash_steady(
    config: SystemConfig,
    throughput: float,
    crashed: Sequence[int],
    num_messages: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Latency long after the processes in ``crashed`` have crashed (Fig. 5).

    The crashed processes are suspected permanently by every failure detector
    from the very start of the run, and they do not send workload messages --
    exactly the paper's definition of the crash-steady scenario.
    """
    crashed = tuple(crashed)
    if len(crashed) > config.max_tolerated_crashes():
        raise ValueError(
            f"{len(crashed)} crashes exceed the f < n/2 bound for n={config.n}"
        )
    config = replace(config, fd=QoSConfig())
    return _run_steady(
        "crash-steady",
        config,
        throughput,
        num_messages,
        warmup_fraction,
        crashed=crashed,
        max_time=max_time,
        max_events=max_events,
        params={"crashed": crashed},
    )


def run_suspicion_steady(
    config: SystemConfig,
    throughput: float,
    mistake_recurrence_time: float,
    mistake_duration: float = 0.0,
    num_messages: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Latency with wrong suspicions of correct processes (Figs. 6 and 7).

    ``mistake_recurrence_time`` and ``mistake_duration`` are the means (in
    ms) of the exponential QoS metrics ``T_MR`` and ``T_M`` of every failure
    detector pair.  No process crashes.
    """
    fd = QoSConfig(
        detection_time=0.0,
        mistake_recurrence_time=mistake_recurrence_time,
        mistake_duration=mistake_duration,
    )
    config = replace(config, fd=fd)
    return _run_steady(
        "suspicion-steady",
        config,
        throughput,
        num_messages,
        warmup_fraction,
        crashed=(),
        max_time=max_time,
        max_events=max_events,
        params={
            "mistake_recurrence_time": mistake_recurrence_time,
            "mistake_duration": mistake_duration,
        },
    )
