"""Benchmark scenarios: the paper's four plus beyond-paper fault schedules.

The paper's scenarios:

* :func:`run_normal_steady`    -- Fig. 4,
* :func:`run_crash_steady`     -- Fig. 5,
* :func:`run_suspicion_steady` -- Figs. 6 and 7,
* :func:`run_crash_transient`  -- Fig. 8.

Beyond-paper scenarios unlocked by the declarative fault-schedule engine
(:mod:`repro.scenarios.faults` + :mod:`repro.scenarios.runner`):

* :func:`run_correlated_crash` -- a simultaneous multi-process crash inside
  the measured window,
* :func:`run_churn_steady`     -- Poisson crash-recovery churn with rejoin,
* :func:`run_asymmetric_qos`   -- one flaky failure detector pair,
* :func:`run_view_majority_loss` -- the deterministic view-majority-loss
  blocked state, measuring time-to-reformation under ``gm-reform``,
* :func:`run_service_load`     -- the replicated KV service under an open-
  or closed-loop client population with admission control and optional
  request batching (:mod:`repro.load`).
"""

from repro.scenarios.extended import (
    run_asymmetric_qos,
    run_churn_steady,
    run_correlated_crash,
    run_view_majority_loss,
)
from repro.scenarios.faults import (
    CorrelatedCrash,
    CrashAt,
    FaultSchedule,
    PoissonChurn,
    RecoverAt,
    SuspectDuring,
)
from repro.scenarios.results import ScenarioResult, TransientResult
from repro.scenarios.runner import (
    ProbeSpec,
    ReformationSpec,
    ScenarioRunner,
    SteadyStateSpec,
)
from repro.scenarios.service_load import run_service_load
from repro.scenarios.steady import (
    run_crash_steady,
    run_normal_steady,
    run_suspicion_steady,
)
from repro.scenarios.transient import run_crash_transient, sweep_crash_transient

__all__ = [
    "CorrelatedCrash",
    "CrashAt",
    "FaultSchedule",
    "PoissonChurn",
    "ProbeSpec",
    "RecoverAt",
    "ReformationSpec",
    "ScenarioResult",
    "ScenarioRunner",
    "SteadyStateSpec",
    "SuspectDuring",
    "TransientResult",
    "run_asymmetric_qos",
    "run_churn_steady",
    "run_correlated_crash",
    "run_crash_steady",
    "run_crash_transient",
    "run_normal_steady",
    "run_service_load",
    "run_suspicion_steady",
    "run_view_majority_loss",
    "sweep_crash_transient",
]
