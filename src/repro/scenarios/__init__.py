"""The paper's four benchmark scenarios.

* :func:`run_normal_steady`    -- Fig. 4,
* :func:`run_crash_steady`     -- Fig. 5,
* :func:`run_suspicion_steady` -- Figs. 6 and 7,
* :func:`run_crash_transient`  -- Fig. 8.
"""

from repro.scenarios.results import ScenarioResult, TransientResult
from repro.scenarios.steady import (
    run_crash_steady,
    run_normal_steady,
    run_suspicion_steady,
)
from repro.scenarios.transient import run_crash_transient, sweep_crash_transient

__all__ = [
    "ScenarioResult",
    "TransientResult",
    "run_crash_steady",
    "run_crash_transient",
    "run_normal_steady",
    "run_suspicion_steady",
    "sweep_crash_transient",
]
