"""Result containers of the benchmark scenarios."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.metrics.stats import Summary, summarize


@dataclass
class ScenarioResult:
    """Result of one steady-state scenario run (one plotted point).

    ``latencies`` holds the latency of every *measured* message that was
    delivered; ``undelivered`` counts measured messages that were never
    delivered anywhere before the simulation gave up.  A large undelivered
    count means the algorithm "does not work" at this operating point, which
    is how the missing points of Figs. 6-7 of the paper should be read.
    """

    scenario: str
    algorithm: str
    n: int
    throughput: float
    latencies: List[float] = field(default_factory=list)
    undelivered: int = 0
    measured: int = 0
    duration: float = 0.0
    events: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    #: ``metrics.json`` snapshot of the run (instrumented runs only).
    metrics: Optional[Dict[str, Any]] = None

    def summary(self, confidence: float = 0.95) -> Summary:
        """Mean latency and confidence interval of the measured messages."""
        return summarize(self.latencies, confidence)

    @property
    def mean_latency(self) -> float:
        """Mean latency (NaN when nothing was delivered)."""
        return self.summary().mean

    @property
    def delivery_ratio(self) -> float:
        """Fraction of measured messages that were delivered."""
        if self.measured == 0:
            return 0.0
        return len(self.latencies) / self.measured

    @property
    def completed(self) -> bool:
        """Whether the operating point is usable (>= 95 % delivered)."""
        return self.measured > 0 and self.delivery_ratio >= 0.95

    def describe(self) -> str:
        """One-line human-readable description of the point."""
        summary = self.summary()
        status = "" if self.completed else "  [DID NOT COMPLETE]"
        return (
            f"{self.scenario:<18} {self.algorithm:<14} n={self.n} "
            f"T={self.throughput:g}/s  latency={summary}{status}"
        )


@dataclass
class TransientResult:
    """Result of the crash-transient scenario (aggregated over many runs)."""

    algorithm: str
    n: int
    throughput: float
    detection_time: float
    crashed_process: int
    sender: int
    latencies: List[float] = field(default_factory=list)
    failed_runs: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    #: Aggregated metrics snapshot over all runs (instrumented points only).
    metrics: Optional[Dict[str, Any]] = None

    def latency_summary(self, confidence: float = 0.95) -> Summary:
        """Summary of the latency of the tagged message across runs."""
        return summarize(self.latencies, confidence)

    def overhead_summary(self, confidence: float = 0.95) -> Summary:
        """Summary of the latency *overhead* (latency minus detection time)."""
        return summarize(
            [latency - self.detection_time for latency in self.latencies], confidence
        )

    @property
    def runs(self) -> int:
        """Number of successful runs aggregated in this result."""
        return len(self.latencies)

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"crash-transient     {self.algorithm:<14} n={self.n} "
            f"T={self.throughput:g}/s TD={self.detection_time:g}ms  "
            f"overhead={self.overhead_summary()}"
        )
