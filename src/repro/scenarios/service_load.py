"""The ``service-load`` scenario: load-test the replicated KV service.

Where the steady-state scenarios measure A-broadcast latency of opaque
messages, this scenario measures *service* behaviour: a client population
(open- or closed-loop, :mod:`repro.load.clients`) submits KV commands to an
admission-controlled :class:`repro.load.service.LoadTestedService`, and the
measured quantity is the client-perceived response time -- queueing delay,
batching delay and ordering latency included.

The result reuses :class:`~repro.scenarios.results.ScenarioResult`:
``latencies`` holds the response times of completed measured requests and
``undelivered`` counts measured requests that were shed or never answered,
so ``delivery_ratio`` reads as *goodput ratio* and a saturated operating
point shows up exactly like a non-working one in the paper's figures.
``params`` adds the service-level read-outs: admission outcome counts,
goodput/offered rates and p50/p99/p999 response-time percentiles.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from repro.load.clients import ClosedLoopClients, CommandMix, OpenLoopClients
from repro.load.service import AdmissionConfig, LoadTestedService
from repro.metrics.stats import interarrival_from_throughput, latency_percentiles
from repro.obs import export as obs_export
from repro.scenarios.faults import FaultSchedule
from repro.scenarios.results import ScenarioResult
from repro.scenarios.runner import (
    DEFAULT_MAX_EVENTS,
    DEFAULT_MESSAGES,
    DEFAULT_WARMUP_FRACTION,
)
from repro.system import SystemConfig, build_system

#: Default admission window / queue bound of the scenario.
DEFAULT_MAX_INFLIGHT = 64
DEFAULT_MAX_QUEUE = 128


def run_service_load(
    config: SystemConfig,
    offered_load: float,
    clients: int = 0,
    think_time: float = 0.0,
    num_requests: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    consistency: str = "ordered",
    arrival: str = "poisson",
    mix: Optional[CommandMix] = None,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    max_queue: int = DEFAULT_MAX_QUEUE,
    faults: Optional[FaultSchedule] = None,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Run one service-load operating point.

    ``clients = 0`` (the default) runs an *open-loop* population arriving at
    ``offered_load`` requests/s with the given ``arrival`` discipline;
    ``clients > 0`` runs a *closed-loop* population of that many clients
    with exponential ``think_time`` (ms), and ``offered_load`` is recorded
    but does not drive generation.  Request batching and the failure
    detector come from ``config`` (``max_batch`` / ``max_delay`` /
    ``fd_scan_interval``), so a campaign sweeps them like any other system
    dimension.
    """
    faults = faults if faults is not None else FaultSchedule()
    system = build_system(config)
    faults.apply_pre(system)

    service = LoadTestedService(
        system,
        consistency=consistency,
        admission=AdmissionConfig(max_inflight=max_inflight, max_queue=max_queue),
    )

    warmup_count = int(math.ceil(num_requests * warmup_fraction))
    total = warmup_count + num_requests
    outstanding = {"count": num_requests}

    def on_complete(request) -> None:
        if request.index >= warmup_count:
            outstanding["count"] -= 1
            if outstanding["count"] <= 0 and population.issued >= total:
                system.sim.stop()

    service.add_completion_listener(on_complete)

    if clients > 0:
        population = ClosedLoopClients(service, clients, think_time, mix=mix)
        population.start(total)
        if max_time is None:
            # Serial worst case per client chain, with generous slack per
            # round trip; closed loops self-throttle, so this rarely binds.
            rounds = math.ceil(total / clients)
            max_time = 20_000.0 + rounds * (think_time + 500.0)
    else:
        population = OpenLoopClients(
            service, offered_load, num_clients=max(1, config.n), arrival=arrival, mix=mix
        )
        last_arrival = population.schedule_requests(total, start_time=0.0)
        if max_time is None:
            max_time = last_arrival + max(
                20_000.0, 20 * interarrival_from_throughput(offered_load)
            )

    faults.schedule(system)
    system.run(until=max_time, max_events=max_events)

    measured = service.requests[warmup_count:]
    latencies = [
        request.response_time
        for request in measured
        if request.response_time is not None
    ]
    duration = system.sim.now
    completed_total = sum(1 for r in service.requests if r.response_time is not None)

    params: Dict[str, Any] = {
        "clients": clients,
        "think_time": think_time,
        "consistency": consistency,
        "arrival": arrival,
        "max_inflight": max_inflight,
        "max_queue": max_queue,
        "max_batch": config.max_batch,
        "max_delay": config.max_delay,
        "outcomes": service.outcome_counts(),
        "queue_depth_hwm": service.queue_depth_hwm,
        "inflight_hwm": service.inflight_hwm,
        # Rates over the whole run, in requests/s.
        "offered_rate": 1000.0 * len(service.requests) / duration if duration else 0.0,
        "goodput": 1000.0 * completed_total / duration if duration else 0.0,
        "replicas_consistent": service.replicas_consistent(),
        **latency_percentiles(latencies),
    }
    if system.sim.run_exhausted:
        params["run_exhausted"] = True

    metrics = None
    if system.obs is not None:
        metrics = obs_export.metrics_snapshot(
            system, scenario="service-load", throughput=offered_load
        )
        obs_export.maybe_write_traces(
            system,
            f"service-load-{config.stack_label.replace('/', '-')}"
            f"-n{config.n}-s{config.seed}-T{offered_load:g}",
        )

    return ScenarioResult(
        scenario="service-load",
        algorithm=config.stack_label,
        n=config.n,
        throughput=offered_load,
        latencies=latencies,
        undelivered=num_requests - len(latencies),
        measured=num_requests,
        duration=duration,
        events=system.sim.events_processed,
        params=params,
        metrics=metrics,
    )


__all__ = ["DEFAULT_MAX_INFLIGHT", "DEFAULT_MAX_QUEUE", "run_service_load"]
