"""Beyond-paper fault-schedule scenarios.

The paper measures four scenarios; the declarative fault-schedule engine
makes three genuinely new workloads one spec each:

* ``correlated-crash`` -- a group of processes crashes *simultaneously* in
  the middle of the measured window (shared-fate fault), and the measurement
  spans the crash: the result mixes pre-crash, transient and post-crash
  latencies into one distribution.
* ``churn-steady``     -- Poisson crash-recovery churn: processes keep
  crashing and coming back (rejoining via view change / catch-up), never
  violating ``f < n/2`` at any instant.
* ``asymmetric-qos``   -- one flaky *observer pair*: a single failure
  detector pair ``(p observes q)`` has much worse QoS than every other pair,
  probing how far one bad link degrades each algorithm.

All three are steady-state measurements executed by the shared
:class:`repro.scenarios.runner.ScenarioRunner`, so they sweep, cache and
aggregate through the campaign subsystem exactly like the paper's scenarios.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Optional, Sequence

from repro.failure_detectors.qos import QoSConfig
from repro.metrics.stats import interarrival_from_throughput
from repro.scenarios.faults import (
    VML_CRASH_TIME,
    VML_SUSPECT_DURATION,
    VML_SUSPECT_START,
    CorrelatedCrash,
    FaultSchedule,
    PoissonChurn,
)
from repro.scenarios.results import ScenarioResult
from repro.scenarios.runner import (
    DEFAULT_MAX_EVENTS,
    DEFAULT_MESSAGES,
    DEFAULT_WARMUP_FRACTION,
    ReformationSpec,
    ScenarioRunner,
    SteadyStateSpec,
)
from repro.system import SystemConfig

__all__ = [
    "run_asymmetric_qos",
    "run_churn_steady",
    "run_correlated_crash",
    "run_view_majority_loss",
]


def _arrival_window(num_messages: int, warmup_fraction: float, throughput: float) -> float:
    """Expected length of the arrival window in ms (for default fault timing)."""
    total = int(math.ceil(num_messages * warmup_fraction)) + num_messages
    return total * interarrival_from_throughput(throughput)


def run_correlated_crash(
    config: SystemConfig,
    throughput: float,
    crashed: Sequence[int],
    crash_time: Optional[float] = None,
    detection_time: float = 10.0,
    num_messages: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Steady-state latency across a simultaneous crash of ``crashed``.

    All processes in ``crashed`` fail at ``crash_time`` (default: the middle
    of the expected arrival window), each crash detected ``detection_time``
    ms later.  Workload arrivals that would have been sent by a crashed
    process are redirected to the next live process.
    """
    crashed = tuple(crashed)
    if not crashed:
        raise ValueError("correlated-crash needs a non-empty crash group")
    if len(crashed) > config.max_tolerated_crashes():
        raise ValueError(
            f"{len(crashed)} simultaneous crashes exceed the f < n/2 bound "
            f"for n={config.n}"
        )
    if crash_time is None:
        crash_time = 0.5 * _arrival_window(num_messages, warmup_fraction, throughput)
    spec = SteadyStateSpec(
        scenario="correlated-crash",
        config=replace(config, fd=QoSConfig(detection_time=detection_time)),
        throughput=throughput,
        num_messages=num_messages,
        warmup_fraction=warmup_fraction,
        faults=FaultSchedule([CorrelatedCrash(crash_time, crashed)]),
        senders=list(range(config.n)),
        reassign_crashed_senders=True,
        max_time=max_time,
        max_events=max_events,
        params={
            "crashed": crashed,
            "crash_time": crash_time,
            "detection_time": detection_time,
        },
    )
    return ScenarioRunner().run_steady(spec)


def run_churn_steady(
    config: SystemConfig,
    throughput: float,
    churn_rate: float,
    mean_downtime: float,
    detection_time: float = 10.0,
    num_messages: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Steady-state latency under Poisson crash-recovery churn.

    Crashes arrive at ``churn_rate`` per second; each takes a uniformly
    random up process down for an exponential downtime of mean
    ``mean_downtime`` ms.  Recovered processes rejoin (view change + state
    transfer under GM, decision catch-up under FD) and the churn generator
    never takes down more than ``f < n/2`` processes at once.
    """
    window = _arrival_window(num_messages, warmup_fraction, throughput)
    churn_until = 1.5 * window + 10_000.0
    spec = SteadyStateSpec(
        scenario="churn-steady",
        config=replace(config, fd=QoSConfig(detection_time=detection_time)),
        throughput=throughput,
        num_messages=num_messages,
        warmup_fraction=warmup_fraction,
        faults=FaultSchedule(
            [PoissonChurn(rate=churn_rate, mean_downtime=mean_downtime, until=churn_until)]
        ),
        senders=list(range(config.n)),
        reassign_crashed_senders=True,
        max_time=max_time,
        max_events=max_events,
        params={
            "churn_rate": churn_rate,
            "mean_downtime": mean_downtime,
            "detection_time": detection_time,
        },
    )
    return ScenarioRunner().run_steady(spec)


def run_view_majority_loss(
    config: SystemConfig,
    throughput: float,
    detection_time: float = 10.0,
    suspect_start: float = VML_SUSPECT_START,
    suspect_duration: float = VML_SUSPECT_DURATION,
    crash_time: float = VML_CRASH_TIME,
    reformation_timeout: Optional[float] = None,
    num_messages: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Latency and time-to-reformation across a view-majority loss.

    The canonical blocked-state schedule
    (:meth:`FaultSchedule.view_majority_loss`) first shrinks the installed
    view through a window of wrong suspicions, then really crashes just
    enough of the shrunken view that its alive members lose the view
    majority -- the GM algorithm's documented permanent-deadlock state,
    which the ``gm-reform`` stack converts into a measurable recovery: the
    result's ``params`` report whether a successor view was installed and
    how long after the blocking crash (``time_to_reformation``).

    ``reformation_timeout`` overrides the config's reformation window (only
    meaningful for reformation-capable stacks); odd ``n >= 3`` only.
    """
    if reformation_timeout is not None:
        config = replace(config, reformation_timeout=reformation_timeout)
    faults = FaultSchedule.view_majority_loss(
        config.n,
        suspect_start=suspect_start,
        suspect_duration=suspect_duration,
        crash_time=crash_time,
    )
    spec = ReformationSpec(
        scenario="view-majority-loss",
        config=replace(config, fd=QoSConfig(detection_time=detection_time)),
        throughput=throughput,
        block_time=crash_time,
        num_messages=num_messages,
        warmup_fraction=warmup_fraction,
        faults=faults,
        max_time=max_time,
        max_events=max_events,
        params={
            "detection_time": detection_time,
            "suspect_start": suspect_start,
            "suspect_duration": suspect_duration,
            "crash_time": crash_time,
            "reformation_timeout": config.reformation_timeout,
        },
    )
    return ScenarioRunner().run_reformation(spec)


def run_asymmetric_qos(
    config: SystemConfig,
    throughput: float,
    mistake_recurrence_time: float,
    mistake_duration: float = 0.0,
    flaky_monitor: int = 1,
    flaky_target: int = 0,
    num_messages: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Steady-state latency with one flaky failure detector pair.

    Only the ordered pair ``(flaky_monitor observes flaky_target)`` makes
    mistakes, with the given ``T_MR`` / ``T_M`` means; every other pair is
    perfect.  The default pair is "p1 wrongly suspects the coordinator /
    sequencer p0", the most damaging single bad link for both algorithms.
    """
    if config.fd_kind != "qos":
        raise ValueError(
            "asymmetric-qos drives per-pair QoS overrides; "
            f"fd_kind={config.fd_kind!r} does not support them (use fd_kind='qos')"
        )
    if flaky_monitor == flaky_target:
        raise ValueError("the flaky observer pair needs two distinct processes")
    for pid in (flaky_monitor, flaky_target):
        if not 0 <= pid < config.n:
            raise ValueError(f"flaky pair process {pid} out of range 0..{config.n - 1}")
    if not math.isfinite(mistake_recurrence_time):
        raise ValueError("asymmetric-qos needs a finite mistake_recurrence_time")
    fd = QoSConfig().with_pair(
        flaky_monitor,
        flaky_target,
        mistake_recurrence_time=mistake_recurrence_time,
        mistake_duration=mistake_duration,
    )
    spec = SteadyStateSpec(
        scenario="asymmetric-qos",
        config=replace(config, fd=fd),
        throughput=throughput,
        num_messages=num_messages,
        warmup_fraction=warmup_fraction,
        max_time=max_time,
        max_events=max_events,
        params={
            "mistake_recurrence_time": mistake_recurrence_time,
            "mistake_duration": mistake_duration,
            "flaky_monitor": flaky_monitor,
            "flaky_target": flaky_target,
        },
    )
    return ScenarioRunner().run_steady(spec)
