"""Beyond-paper fault-schedule scenarios.

The paper measures four scenarios; the declarative fault-schedule engine
makes three genuinely new workloads one spec each:

* ``correlated-crash`` -- a group of processes crashes *simultaneously* in
  the middle of the measured window (shared-fate fault), and the measurement
  spans the crash: the result mixes pre-crash, transient and post-crash
  latencies into one distribution.
* ``churn-steady``     -- Poisson crash-recovery churn: processes keep
  crashing and coming back (rejoining via view change / catch-up), never
  violating ``f < n/2`` at any instant.
* ``asymmetric-qos``   -- one flaky *observer pair*: a single failure
  detector pair ``(p observes q)`` has much worse QoS than every other pair,
  probing how far one bad link degrades each algorithm.

The network fault-injection layer adds three scripted scenarios, each an
inject -> measure -> verify :class:`~repro.scenarios.script.ScenarioScript`:

* ``partition-transient`` -- a symmetric split isolates a minority for a
  fixed window, then heals; the measurement spans the partition.
* ``wan-steady``          -- the group is spread across the datacenters of a
  named :class:`~repro.sim.wan.WanProfile`; steady-state latency under WAN
  propagation delays (with the QoS detector derated so WAN lag alone never
  looks like a crash).
* ``gray-degradation``    -- one process's CPU runs ``degrade_factor`` times
  slower for a window (optionally with lossy links out of it): alive and
  correct, just slow -- the failure mode detectors must *not* treat as a
  crash.

All are steady-state measurements executed by the shared
:class:`repro.scenarios.runner.ScenarioRunner`, so they sweep, cache and
aggregate through the campaign subsystem exactly like the paper's scenarios.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Optional, Sequence

from repro.failure_detectors.qos import QoSConfig
from repro.metrics.stats import interarrival_from_throughput
from repro.scenarios.faults import (
    VML_CRASH_TIME,
    VML_SUSPECT_DURATION,
    VML_SUSPECT_START,
    CorrelatedCrash,
    DegradeLinkAt,
    FaultSchedule,
    PoissonChurn,
)
from repro.scenarios.results import ScenarioResult
from repro.scenarios.runner import (
    DEFAULT_MAX_EVENTS,
    DEFAULT_MESSAGES,
    DEFAULT_WARMUP_FRACTION,
    ReformationSpec,
    ScenarioRunner,
    SteadyStateSpec,
)
from repro.scenarios.script import ScenarioScript, ScriptContext, Stage
from repro.sim.wan import wan_profile
from repro.system import SystemConfig, build_system

__all__ = [
    "run_asymmetric_qos",
    "run_churn_steady",
    "run_correlated_crash",
    "run_gray_degradation",
    "run_partition_transient",
    "run_view_majority_loss",
    "run_wan_steady",
]


def _arrival_window(num_messages: int, warmup_fraction: float, throughput: float) -> float:
    """Expected length of the arrival window in ms (for default fault timing)."""
    total = int(math.ceil(num_messages * warmup_fraction)) + num_messages
    return total * interarrival_from_throughput(throughput)


def run_correlated_crash(
    config: SystemConfig,
    throughput: float,
    crashed: Sequence[int],
    crash_time: Optional[float] = None,
    detection_time: float = 10.0,
    num_messages: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Steady-state latency across a simultaneous crash of ``crashed``.

    All processes in ``crashed`` fail at ``crash_time`` (default: the middle
    of the expected arrival window), each crash detected ``detection_time``
    ms later.  Workload arrivals that would have been sent by a crashed
    process are redirected to the next live process.
    """
    crashed = tuple(crashed)
    if not crashed:
        raise ValueError("correlated-crash needs a non-empty crash group")
    if len(crashed) > config.max_tolerated_crashes():
        raise ValueError(
            f"{len(crashed)} simultaneous crashes exceed the f < n/2 bound "
            f"for n={config.n}"
        )
    if crash_time is None:
        crash_time = 0.5 * _arrival_window(num_messages, warmup_fraction, throughput)
    spec = SteadyStateSpec(
        scenario="correlated-crash",
        config=replace(config, fd=QoSConfig(detection_time=detection_time)),
        throughput=throughput,
        num_messages=num_messages,
        warmup_fraction=warmup_fraction,
        faults=FaultSchedule([CorrelatedCrash(crash_time, crashed)]),
        senders=list(range(config.n)),
        reassign_crashed_senders=True,
        max_time=max_time,
        max_events=max_events,
        params={
            "crashed": crashed,
            "crash_time": crash_time,
            "detection_time": detection_time,
        },
    )
    return ScenarioRunner().run_steady(spec)


def run_churn_steady(
    config: SystemConfig,
    throughput: float,
    churn_rate: float,
    mean_downtime: float,
    detection_time: float = 10.0,
    num_messages: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Steady-state latency under Poisson crash-recovery churn.

    Crashes arrive at ``churn_rate`` per second; each takes a uniformly
    random up process down for an exponential downtime of mean
    ``mean_downtime`` ms.  Recovered processes rejoin (view change + state
    transfer under GM, decision catch-up under FD) and the churn generator
    never takes down more than ``f < n/2`` processes at once.
    """
    window = _arrival_window(num_messages, warmup_fraction, throughput)
    churn_until = 1.5 * window + 10_000.0
    spec = SteadyStateSpec(
        scenario="churn-steady",
        config=replace(config, fd=QoSConfig(detection_time=detection_time)),
        throughput=throughput,
        num_messages=num_messages,
        warmup_fraction=warmup_fraction,
        faults=FaultSchedule(
            [PoissonChurn(rate=churn_rate, mean_downtime=mean_downtime, until=churn_until)]
        ),
        senders=list(range(config.n)),
        reassign_crashed_senders=True,
        max_time=max_time,
        max_events=max_events,
        params={
            "churn_rate": churn_rate,
            "mean_downtime": mean_downtime,
            "detection_time": detection_time,
        },
    )
    return ScenarioRunner().run_steady(spec)


def run_view_majority_loss(
    config: SystemConfig,
    throughput: float,
    detection_time: float = 10.0,
    suspect_start: float = VML_SUSPECT_START,
    suspect_duration: float = VML_SUSPECT_DURATION,
    crash_time: float = VML_CRASH_TIME,
    reformation_timeout: Optional[float] = None,
    num_messages: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Latency and time-to-reformation across a view-majority loss.

    The canonical blocked-state schedule
    (:meth:`FaultSchedule.view_majority_loss`) first shrinks the installed
    view through a window of wrong suspicions, then really crashes just
    enough of the shrunken view that its alive members lose the view
    majority -- the GM algorithm's documented permanent-deadlock state,
    which the ``gm-reform`` stack converts into a measurable recovery: the
    result's ``params`` report whether a successor view was installed and
    how long after the blocking crash (``time_to_reformation``).

    ``reformation_timeout`` overrides the config's reformation window (only
    meaningful for reformation-capable stacks); any ``n >= 3`` (even group
    sizes use the staged two-window suspicion construction).
    """
    if reformation_timeout is not None:
        config = replace(config, reformation_timeout=reformation_timeout)
    faults = FaultSchedule.view_majority_loss(
        config.n,
        suspect_start=suspect_start,
        suspect_duration=suspect_duration,
        crash_time=crash_time,
    )
    spec = ReformationSpec(
        scenario="view-majority-loss",
        config=replace(config, fd=QoSConfig(detection_time=detection_time)),
        throughput=throughput,
        block_time=crash_time,
        num_messages=num_messages,
        warmup_fraction=warmup_fraction,
        faults=faults,
        max_time=max_time,
        max_events=max_events,
        params={
            "detection_time": detection_time,
            "suspect_start": suspect_start,
            "suspect_duration": suspect_duration,
            "crash_time": crash_time,
            "reformation_timeout": config.reformation_timeout,
        },
    )
    return ScenarioRunner().run_reformation(spec)


def run_asymmetric_qos(
    config: SystemConfig,
    throughput: float,
    mistake_recurrence_time: float,
    mistake_duration: float = 0.0,
    flaky_monitor: int = 1,
    flaky_target: int = 0,
    num_messages: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Steady-state latency with one flaky failure detector pair.

    Only the ordered pair ``(flaky_monitor observes flaky_target)`` makes
    mistakes, with the given ``T_MR`` / ``T_M`` means; every other pair is
    perfect.  The default pair is "p1 wrongly suspects the coordinator /
    sequencer p0", the most damaging single bad link for both algorithms.
    """
    if config.fd_kind != "qos":
        raise ValueError(
            "asymmetric-qos drives per-pair QoS overrides; "
            f"fd_kind={config.fd_kind!r} does not support them (use fd_kind='qos')"
        )
    if flaky_monitor == flaky_target:
        raise ValueError("the flaky observer pair needs two distinct processes")
    for pid in (flaky_monitor, flaky_target):
        if not 0 <= pid < config.n:
            raise ValueError(f"flaky pair process {pid} out of range 0..{config.n - 1}")
    if not math.isfinite(mistake_recurrence_time):
        raise ValueError("asymmetric-qos needs a finite mistake_recurrence_time")
    fd = QoSConfig().with_pair(
        flaky_monitor,
        flaky_target,
        mistake_recurrence_time=mistake_recurrence_time,
        mistake_duration=mistake_duration,
    )
    spec = SteadyStateSpec(
        scenario="asymmetric-qos",
        config=replace(config, fd=fd),
        throughput=throughput,
        num_messages=num_messages,
        warmup_fraction=warmup_fraction,
        max_time=max_time,
        max_events=max_events,
        params={
            "mistake_recurrence_time": mistake_recurrence_time,
            "mistake_duration": mistake_duration,
            "flaky_monitor": flaky_monitor,
            "flaky_target": flaky_target,
        },
    )
    return ScenarioRunner().run_steady(spec)


def _run_scripted_steady(script: ScenarioScript, spec: SteadyStateSpec) -> ScenarioResult:
    """Insert the shared build/measure stages and run ``script``.

    Every scripted fault scenario shares the same core: build the system
    (keeping the reference for verification), run the steady-state
    measurement on it.  The caller appends its scenario-specific ``verify``
    stage (non-critical: a violated invariant is recorded into the result,
    not raised out of a sweep worker) before calling this.
    """
    def build(context: ScriptContext) -> None:
        context.values["system"] = build_system(spec.config)

    def measure(context: ScriptContext) -> None:
        context.result = ScenarioRunner().run_steady_on(context.require("system"), spec)

    script.stages[:0] = [Stage("build", build), Stage("measure", measure)]
    context = script.run()
    assert context.result is not None
    return context.result


def run_partition_transient(
    config: SystemConfig,
    throughput: float,
    partition_start: Optional[float] = None,
    partition_duration: float = 2_000.0,
    detection_time: float = 10.0,
    num_messages: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Steady-state latency across a transient symmetric partition.

    The top ``(n - 1) // 2`` pids are cut off from the majority at
    ``partition_start`` (default: the middle of the expected arrival
    window) and rejoin ``partition_duration`` ms later.  The clock-driven
    detectors suspect unreachable peers one detection time after the cut
    (and trust them again after the heal); the heartbeat detector starves
    naturally.  Workload arrivals stay on all processes -- minority-side
    sends during the window are the interesting part.

    The script's ``verify`` stage checks the partition actually bit
    (frames were dropped) and fully healed; a violation is recorded under
    ``params["script"]`` rather than raised.
    """
    n = config.n
    if partition_start is None:
        partition_start = 0.5 * _arrival_window(num_messages, warmup_fraction, throughput)
    faults = FaultSchedule.partition_transient(n, partition_start, partition_duration)
    minority = tuple(range(n - (n - 1) // 2, n))
    spec = SteadyStateSpec(
        scenario="partition-transient",
        config=replace(config, fd=QoSConfig(detection_time=detection_time)),
        throughput=throughput,
        num_messages=num_messages,
        warmup_fraction=warmup_fraction,
        faults=faults,
        senders=list(range(n)),
        max_time=max_time,
        max_events=max_events,
        params={
            "partition_start": partition_start,
            "partition_duration": partition_duration,
            "minority": minority,
            "detection_time": detection_time,
        },
    )

    def verify(context: ScriptContext) -> None:
        system = context.require("system")
        stats = system.network.stats
        if stats.dropped_partitioned == 0:
            raise AssertionError(
                "the partition window dropped no frames -- it never took effect"
            )
        # The run may legitimately stop (all measured messages delivered)
        # before the heal instant; only a run that outlived it must be whole.
        if context.result.duration >= partition_start + partition_duration:
            still_blocked = [
                (src, dst)
                for src in range(n)
                for dst in range(n)
                if src != dst and system.network.is_link_blocked(src, dst)
            ]
            if still_blocked:
                raise AssertionError(
                    f"links still blocked after the heal: {still_blocked}"
                )
        context.result.params["dropped_partitioned"] = stats.dropped_partitioned

    script = ScenarioScript("partition-transient").stage("verify", verify, critical=False)
    return _run_scripted_steady(script, spec)


def run_wan_steady(
    config: SystemConfig,
    throughput: float,
    profile: str = "wan-3dc",
    detection_time: float = 10.0,
    fd_slack: float = 2.0,
    num_messages: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Steady-state latency with the group spread across WAN datacenters.

    ``profile`` names a registered :class:`~repro.sim.wan.WanProfile`;
    process ``pid`` lives in datacenter ``pid % dc_count`` and every
    cross-datacenter frame pays the profile's one-way propagation delay on
    top of the paper's contention model.  When the stack runs the QoS
    detector, its per-pair detection times are derived from the topology
    (``fd_slack`` round trips of headroom) so WAN lag alone never looks
    like a crash.
    """
    topology = wan_profile(profile)
    fd = QoSConfig(detection_time=detection_time)
    if config.fd_kind == "qos":
        fd = topology.derive_fd_config(fd, config.n, slack=fd_slack)
    spec = SteadyStateSpec(
        scenario="wan-steady",
        config=replace(config, wan_profile=profile, fd=fd),
        throughput=throughput,
        num_messages=num_messages,
        warmup_fraction=warmup_fraction,
        max_time=max_time,
        max_events=max_events,
        params={
            "wan_profile": profile,
            "dc_count": topology.dc_count,
            "max_wan_delay": topology.max_delay(),
            "fd_slack": fd_slack,
            "detection_time": detection_time,
        },
    )

    def verify(context: ScriptContext) -> None:
        result = context.result
        if result.undelivered:
            raise AssertionError(
                f"wan-steady is fault-free yet {result.undelivered} measured "
                "messages were never delivered"
            )

    script = ScenarioScript("wan-steady").stage("verify", verify, critical=False)
    return _run_scripted_steady(script, spec)


def run_gray_degradation(
    config: SystemConfig,
    throughput: float,
    degraded_pid: int = 0,
    degrade_factor: float = 4.0,
    degrade_start: Optional[float] = None,
    degrade_duration: float = 2_000.0,
    link_loss: float = 0.0,
    detection_time: float = 10.0,
    num_messages: int = DEFAULT_MESSAGES,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    max_time: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ScenarioResult:
    """Steady-state latency across a gray failure of one process.

    From ``degrade_start`` (default: the middle of the expected arrival
    window) until ``degrade_duration`` later, ``degraded_pid``'s CPU serves
    every job ``degrade_factor`` times slower -- alive and correct, just
    slow.  With ``link_loss > 0`` its outgoing links additionally drop each
    frame with that probability during the window.  The default victim is
    pid 0: the sequencer/coordinator of the GM stacks, the most damaging
    single slow process.
    """
    n = config.n
    if not 0 <= degraded_pid < n:
        raise ValueError(f"degraded pid {degraded_pid} out of range 0..{n - 1}")
    if degrade_factor <= 1.0:
        raise ValueError(f"a gray degradation needs factor > 1, got {degrade_factor}")
    if not 0.0 <= link_loss < 1.0:
        raise ValueError(f"link_loss must be in [0, 1), got {link_loss}")
    if degrade_start is None:
        degrade_start = 0.5 * _arrival_window(num_messages, warmup_fraction, throughput)
    degrade_end = degrade_start + degrade_duration
    faults = FaultSchedule().degrade(degrade_start, degraded_pid, degrade_factor).restore(
        degrade_end, degraded_pid
    )
    if link_loss > 0.0:
        for dst in range(n):
            if dst == degraded_pid:
                continue
            faults = faults.add(
                DegradeLinkAt(degrade_start, degraded_pid, dst, loss_probability=link_loss)
            ).add(DegradeLinkAt(degrade_end, degraded_pid, dst))
    spec = SteadyStateSpec(
        scenario="gray-degradation",
        config=replace(config, fd=QoSConfig(detection_time=detection_time)),
        throughput=throughput,
        num_messages=num_messages,
        warmup_fraction=warmup_fraction,
        faults=faults,
        senders=list(range(n)),
        max_time=max_time,
        max_events=max_events,
        params={
            "degraded_pid": degraded_pid,
            "degrade_factor": degrade_factor,
            "degrade_start": degrade_start,
            "degrade_duration": degrade_duration,
            "link_loss": link_loss,
            "detection_time": detection_time,
        },
    )

    def verify(context: ScriptContext) -> None:
        system = context.require("system")
        # The run may legitimately stop (all measured messages delivered)
        # before the restore instant; only a run that outlived it must have
        # returned the CPU to full speed.
        if context.result.duration >= degrade_end:
            restored = system.network.cpu(degraded_pid).rate_factor
            if restored != 1.0:
                raise AssertionError(
                    f"pid {degraded_pid} still degraded after the window: x{restored}"
                )
        if link_loss > 0.0:
            context.result.params["dropped_lossy_link"] = (
                system.network.stats.dropped_lossy_link
            )

    script = ScenarioScript("gray-degradation").stage("verify", verify, critical=False)
    return _run_scripted_steady(script, spec)
