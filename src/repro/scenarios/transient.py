"""Crash-transient scenario (Fig. 8).

The paper defines the transient latency after a crash as follows: the system
runs in steady state under the Poisson workload; at time ``t`` a process
``p`` crashes and another process ``q`` A-broadcasts a message ``m`` at the
same instant; ``L(p, q)`` is the mean latency of ``m`` over many independent
executions, and the reported value is the worst case over ``(p, q)``.  In
practice the worst case is the crash of the round-1 coordinator of the FD
algorithm / the sequencer of the GM algorithm (process ``p1``), which is the
case the paper plots; this module lets callers pick any ``(p, q)`` pair or
sweep all of them.

Because no atomic broadcast can finish before the crash is detected, the
paper plots the latency *overhead*: latency minus the detection time ``T_D``.

Each independent execution is a :class:`repro.scenarios.runner.ProbeSpec`
(background workload, a one-event fault schedule crashing ``p`` at ``t`` and
a tagged probe from ``q`` at the same instant) run by the shared
:class:`repro.scenarios.runner.ScenarioRunner`.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from dataclasses import replace
from typing import List, Optional, Sequence

from repro.failure_detectors.qos import QoSConfig
from repro.scenarios.faults import CrashAt, FaultSchedule
from repro.scenarios.results import TransientResult
from repro.scenarios.runner import ProbeSpec, ScenarioRunner
from repro.system import SystemConfig

#: Default number of independent runs per (p, q, T_D, T) point.
DEFAULT_RUNS = 20
#: Default steady-state warm-up before the forced crash (ms).
DEFAULT_CRASH_TIME = 400.0


def run_crash_transient(
    config: SystemConfig,
    throughput: float,
    detection_time: float,
    crashed_process: int = 0,
    sender: Optional[int] = None,
    num_runs: int = DEFAULT_RUNS,
    crash_time: float = DEFAULT_CRASH_TIME,
    max_wait: float = 60_000.0,
    max_events: int = 4_000_000,
) -> TransientResult:
    """Measure the transient latency of a broadcast issued at the crash instant.

    Each run uses a fresh system (and seed): background Poisson traffic at
    ``throughput`` messages/s from every process, a crash of
    ``crashed_process`` at ``crash_time`` and a tagged message A-broadcast by
    ``sender`` at the same time.  The run ends as soon as the tagged message
    is delivered somewhere (or after ``max_wait`` ms past the crash).
    """
    if config.fd_kind == "heartbeat":
        raise ValueError(
            "crash-transient pins the detection time T_D (and subtracts it from "
            "the reported overhead); the heartbeat detector's T_D emerges from "
            "period + timeout instead (use fd_kind='qos' or 'perfect')"
        )
    if sender is None:
        sender = config.n - 1 if crashed_process != config.n - 1 else config.n - 2
    if sender == crashed_process:
        raise ValueError("the tagged sender must differ from the crashed process")

    fd = QoSConfig(detection_time=detection_time)
    base_config = replace(config, fd=fd)
    runner = ScenarioRunner()

    # With instrumentation requested, one shared Instrumentation object
    # rides along every independent run, so the point's counters aggregate
    # over all executions (event recording stays off: the runs' timelines
    # overlap, so an interleaved event trace would be meaningless).
    shared_obs = None
    run_config = base_config
    if base_config.instrument:
        from repro.obs.instrumentation import Instrumentation

        shared_obs = Instrumentation(record_events=False)
        run_config = replace(base_config, instrument=False)

    latencies: List[float] = []
    failed = 0
    for run in range(num_runs):
        spec = ProbeSpec(
            config=run_config.with_seed(run_config.seed + 1000 * (run + 1)),
            throughput=throughput,
            probe_sender=sender,
            probe_time=crash_time,
            faults=FaultSchedule([CrashAt(crash_time, crashed_process)]),
            max_wait=max_wait,
            max_events=max_events,
            obs=shared_obs,
        )
        latency = runner.run_probe(spec)
        if latency is None:
            failed += 1
        else:
            latencies.append(latency)

    metrics = None
    if shared_obs is not None:
        from repro.obs.export import metrics_snapshot_from_obs

        metrics = metrics_snapshot_from_obs(
            shared_obs,
            base_config,
            scenario="crash-transient",
            throughput=throughput,
            runs=num_runs,
        )

    return TransientResult(
        algorithm=config.stack_label,
        n=config.n,
        throughput=throughput,
        detection_time=detection_time,
        crashed_process=crashed_process,
        sender=sender,
        latencies=latencies,
        failed_runs=failed,
        params={"crash_time": crash_time, "num_runs": num_runs},
        metrics=metrics,
    )


def sweep_crash_transient(
    config: SystemConfig,
    throughput: float,
    detection_time: float,
    crashed_processes: Optional[Sequence[int]] = None,
    senders: Optional[Sequence[int]] = None,
    num_runs: int = DEFAULT_RUNS,
    store=None,
    jobs: int = 1,
    **kwargs,
) -> List[TransientResult]:
    """Measure L(p, q) for several (p, q) pairs (worst case = max of the means).

    Every ``(p, q)`` pair runs with its own seed derived from
    ``config.seed`` and the pair identity, so the pairs are independent
    replicas rather than re-reading the same random streams.  With a
    ``store`` (a :class:`repro.campaigns.store.ResultStore`), the sweep runs
    through the campaign subsystem: completed pairs are cached and a
    re-run only simulates what is missing; ``jobs`` fans the pending pairs
    out over worker processes.
    """
    # Imported lazily: repro.campaigns imports the scenario drivers.
    from repro.campaigns.runner import CampaignRunner, execute_point
    from repro.campaigns.records import record_to_result
    from repro.campaigns.spec import PointSpec, derive_seed

    crashed_processes = (
        list(crashed_processes) if crashed_processes is not None else [0]
    )
    if kwargs and (store is not None or jobs != 1):
        raise ValueError(
            "store-backed or parallel sweeps only support the fields a "
            f"PointSpec carries; got extra keyword arguments {sorted(kwargs)}"
        )

    pairs: List[tuple] = []
    for crashed in crashed_processes:
        candidate_senders = (
            [s for s in senders if s != crashed]
            if senders is not None
            else [pid for pid in range(config.n) if pid != crashed]
        )
        for sender in candidate_senders:
            pairs.append((crashed, sender))

    results: List[TransientResult] = []
    if store is None and kwargs:
        # Legacy direct path for options (crash_time, max_wait, ...) that a
        # PointSpec does not carry.
        for crashed, sender in pairs:
            seed = derive_seed(config.seed, f"transient/p{crashed}/q{sender}")
            results.append(
                run_crash_transient(
                    config.with_seed(seed),
                    throughput,
                    detection_time,
                    crashed_process=crashed,
                    sender=sender,
                    num_runs=num_runs,
                    **kwargs,
                )
            )
        return results

    # Carry every non-default SystemConfig field into the points, so a sweep
    # over a customised system (lambda_cpu, pipeline_depth, ...) simulates
    # that system and not the defaults.  ``fd`` is excluded: the transient
    # driver replaces it with the point's detection time anyway.
    # ``heartbeat`` is excluded because nested configs do not fit the flat
    # JSON override tuples; the other exclusions are first-class PointSpec
    # fields.
    defaults = SystemConfig(n=config.n, stack=config.stack, seed=config.seed)
    overrides = tuple(
        (field.name, getattr(config, field.name))
        for field in dataclass_fields(SystemConfig)
        if field.name not in ("n", "stack", "fd_kind", "seed", "fd", "heartbeat")
        and getattr(config, field.name) != getattr(defaults, field.name)
    )
    points = [
        PointSpec(
            kind="crash-transient",
            stack=config.stack,
            fd_kind=config.fd_kind,
            n=config.n,
            seed=derive_seed(config.seed, f"transient/p{crashed}/q{sender}"),
            throughput=throughput,
            num_runs=num_runs,
            detection_time=detection_time,
            crashed_process=crashed,
            sender=sender,
            config_overrides=overrides,
        )
        for crashed, sender in pairs
    ]
    if store is None and jobs == 1:
        return [record_to_result(execute_point(point)) for point in points]
    from repro.campaigns.spec import CampaignSpec, SeriesPointSpec, SeriesSpec

    campaign = CampaignSpec(
        name="crash-transient-sweep",
        series=[
            SeriesSpec(
                label=f"{config.stack_label}, n={config.n}",
                points=[
                    SeriesPointSpec(x=float(index), points=[point])
                    for index, point in enumerate(points)
                ],
            )
        ],
    )
    run = CampaignRunner(jobs=jobs, store=store).run(campaign)
    return [run.result(point) for point in points]
