"""Crash-transient scenario (Fig. 8).

The paper defines the transient latency after a crash as follows: the system
runs in steady state under the Poisson workload; at time ``t`` a process
``p`` crashes and another process ``q`` A-broadcasts a message ``m`` at the
same instant; ``L(p, q)`` is the mean latency of ``m`` over many independent
executions, and the reported value is the worst case over ``(p, q)``.  In
practice the worst case is the crash of the round-1 coordinator of the FD
algorithm / the sequencer of the GM algorithm (process ``p1``), which is the
case the paper plots; this module lets callers pick any ``(p, q)`` pair or
sweep all of them.

Because no atomic broadcast can finish before the crash is detected, the
paper plots the latency *overhead*: latency minus the detection time ``T_D``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from repro.failure_detectors.qos import QoSConfig
from repro.metrics.latency import LatencyRecorder
from repro.scenarios.results import TransientResult
from repro.system import SystemConfig, build_system
from repro.workload.generator import PoissonWorkload

#: Default number of independent runs per (p, q, T_D, T) point.
DEFAULT_RUNS = 20
#: Default steady-state warm-up before the forced crash (ms).
DEFAULT_CRASH_TIME = 400.0


def run_crash_transient(
    config: SystemConfig,
    throughput: float,
    detection_time: float,
    crashed_process: int = 0,
    sender: Optional[int] = None,
    num_runs: int = DEFAULT_RUNS,
    crash_time: float = DEFAULT_CRASH_TIME,
    max_wait: float = 60_000.0,
    max_events: int = 4_000_000,
) -> TransientResult:
    """Measure the transient latency of a broadcast issued at the crash instant.

    Each run uses a fresh system (and seed): background Poisson traffic at
    ``throughput`` messages/s from every process, a crash of
    ``crashed_process`` at ``crash_time`` and a tagged message A-broadcast by
    ``sender`` at the same time.  The run ends as soon as the tagged message
    is delivered somewhere (or after ``max_wait`` ms past the crash).
    """
    if sender is None:
        sender = config.n - 1 if crashed_process != config.n - 1 else config.n - 2
    if sender == crashed_process:
        raise ValueError("the tagged sender must differ from the crashed process")

    fd = QoSConfig(detection_time=detection_time)
    base_config = replace(config, fd=fd)

    latencies: List[float] = []
    failed = 0
    for run in range(num_runs):
        run_config = base_config.with_seed(base_config.seed + 1000 * (run + 1))
        latency = _single_transient_run(
            run_config,
            throughput,
            crashed_process,
            sender,
            crash_time,
            max_wait,
            max_events,
        )
        if latency is None:
            failed += 1
        else:
            latencies.append(latency)

    return TransientResult(
        algorithm=config.algorithm,
        n=config.n,
        throughput=throughput,
        detection_time=detection_time,
        crashed_process=crashed_process,
        sender=sender,
        latencies=latencies,
        failed_runs=failed,
        params={"crash_time": crash_time, "num_runs": num_runs},
    )


def _single_transient_run(
    config: SystemConfig,
    throughput: float,
    crashed_process: int,
    sender: int,
    crash_time: float,
    max_wait: float,
    max_events: int,
) -> Optional[float]:
    """One independent execution; returns the tagged message latency or ``None``."""
    system = build_system(config)
    recorder = LatencyRecorder()
    recorder.attach(system)

    # Background traffic before and after the crash, from every process (the
    # crashed sender's post-crash messages are dropped by the network, which
    # matches "crashed processes do not send any further messages").
    workload = PoissonWorkload(system, throughput, senders=list(range(config.n)))
    horizon = crash_time + max_wait
    background_count = int(throughput * horizon / 1000.0) + 1
    workload.schedule_messages(background_count, start_time=0.0)

    tagged = {}

    def crash_and_tag() -> None:
        system.crash(crashed_process)
        tagged["id"] = system.broadcast(sender, "tagged-transient-message")

    def on_delivery(_pid, broadcast_id, _payload) -> None:
        if tagged.get("id") == broadcast_id:
            system.sim.stop()

    system.add_delivery_listener(on_delivery)
    system.sim.schedule_at(crash_time, crash_and_tag)
    system.run(until=horizon, max_events=max_events)

    tagged_id = tagged.get("id")
    if tagged_id is None:
        return None
    return recorder.latency(tagged_id)


def sweep_crash_transient(
    config: SystemConfig,
    throughput: float,
    detection_time: float,
    crashed_processes: Optional[Sequence[int]] = None,
    senders: Optional[Sequence[int]] = None,
    num_runs: int = DEFAULT_RUNS,
    **kwargs,
) -> List[TransientResult]:
    """Measure L(p, q) for several (p, q) pairs (worst case = max of the means)."""
    crashed_processes = (
        list(crashed_processes) if crashed_processes is not None else [0]
    )
    results: List[TransientResult] = []
    for crashed in crashed_processes:
        candidate_senders = (
            [s for s in senders if s != crashed]
            if senders is not None
            else [pid for pid in range(config.n) if pid != crashed]
        )
        for sender in candidate_senders:
            results.append(
                run_crash_transient(
                    config,
                    throughput,
                    detection_time,
                    crashed_process=crashed,
                    sender=sender,
                    num_runs=num_runs,
                    **kwargs,
                )
            )
    return results
