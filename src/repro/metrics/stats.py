"""Summary statistics with confidence intervals.

The paper reports the mean latency with its 95 % confidence interval for
every plotted point; :func:`summarize` computes the same quantities.  The
Student-t quantile is taken from :mod:`scipy` when available and falls back
to the normal approximation otherwise (the package has no hard dependency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

try:  # pragma: no cover - exercised implicitly depending on the environment
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None

#: Two-sided 97.5 % quantile of the standard normal distribution.
_Z_975 = 1.959963984540054


@dataclass(frozen=True)
class Summary:
    """Mean, spread and confidence interval of a sample.

    ``ci_halfwidth`` is the half-width of the two-sided confidence interval
    at level ``confidence``; the interval is ``mean +/- ci_halfwidth``.
    """

    count: int
    mean: float
    std: float
    ci_halfwidth: float
    minimum: float
    maximum: float
    confidence: float = 0.95

    @property
    def ci_low(self) -> float:
        """Lower bound of the confidence interval."""
        return self.mean - self.ci_halfwidth

    @property
    def ci_high(self) -> float:
        """Upper bound of the confidence interval."""
        return self.mean + self.ci_halfwidth

    def __str__(self) -> str:
        if self.count == 0:
            return "no samples"
        return f"{self.mean:.2f} +/- {self.ci_halfwidth:.2f} (n={self.count})"


def _t_quantile(confidence: float, dof: int) -> float:
    if dof <= 0:
        return float("nan")
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, dof))
    return _Z_975 if confidence == 0.95 else _Z_975


def summarize(values: Iterable[float], confidence: float = 0.95) -> Summary:
    """Compute the mean and its ``confidence`` interval for ``values``."""
    data: List[float] = [float(v) for v in values]
    count = len(data)
    if count == 0:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, confidence)
    mean = sum(data) / count
    if count == 1:
        return Summary(1, mean, 0.0, float("inf"), mean, mean, confidence)
    variance = sum((v - mean) ** 2 for v in data) / (count - 1)
    std = math.sqrt(variance)
    halfwidth = _t_quantile(confidence, count - 1) * std / math.sqrt(count)
    return Summary(count, mean, std, halfwidth, min(data), max(data), confidence)


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-quantile of ``values`` by linear interpolation (NaN if empty).

    ``q`` is a fraction in ``[0, 1]``; the estimator interpolates between
    order statistics (the same convention as ``numpy.percentile``'s default),
    so small service-latency samples still give stable p99/p999 readings.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(float(v) for v in values)
    if not ordered:
        return float("nan")
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def latency_percentiles(values: Iterable[float]) -> dict:
    """The service-level latency quantiles (p50/p90/p99/p999) of ``values``.

    Returns NaN entries for an empty sample so downstream tables can render
    "no data" uniformly instead of special-casing missing keys.
    """
    ordered = sorted(float(v) for v in values)
    return {
        "p50": percentile(ordered, 0.50),
        "p90": percentile(ordered, 0.90),
        "p99": percentile(ordered, 0.99),
        "p999": percentile(ordered, 0.999),
    }


def throughput_from_interarrival(mean_interarrival_ms: float) -> float:
    """Convert a mean inter-arrival time in ms to a throughput in messages/s."""
    if mean_interarrival_ms <= 0:
        raise ValueError("mean inter-arrival time must be positive")
    return 1000.0 / mean_interarrival_ms


def interarrival_from_throughput(throughput_per_s: float) -> float:
    """Convert a throughput in messages/s to a mean inter-arrival time in ms."""
    if throughput_per_s <= 0:
        raise ValueError("throughput must be positive")
    return 1000.0 / throughput_per_s
