"""Latency recording.

The paper's performance measure is the latency of atomic broadcast: the time
from ``A-broadcast(m)`` to the *earliest* ``A-deliver(m)`` on any process
(Section 5.1).  :class:`LatencyRecorder` attaches to a
:class:`repro.system.BroadcastSystem` and records both ends of every message.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.types import BroadcastID
from repro.metrics.stats import Summary, summarize


class LatencyRecorder:
    """Records A-broadcast and first A-delivery times of every message."""

    def __init__(self) -> None:
        self._broadcast_times: Dict[BroadcastID, float] = {}
        self._first_delivery: Dict[BroadcastID, float] = {}
        self._delivery_counts: Dict[BroadcastID, int] = {}

    # ------------------------------------------------------------------ wiring

    def attach(self, system) -> None:
        """Hook the recorder into every process of ``system``."""
        sim = system.sim
        for abcast in system.abcasts:
            abcast.add_broadcast_listener(
                lambda bid, _payload, _sim=sim: self.record_broadcast(bid, _sim.now)
            )
            abcast.add_delivery_listener(
                lambda bid, _payload, _sim=sim: self.record_delivery(bid, _sim.now)
            )

    # ------------------------------------------------------------------ recording

    def record_broadcast(self, broadcast_id: BroadcastID, time: float) -> None:
        """Record that ``broadcast_id`` was A-broadcast at ``time``."""
        self._broadcast_times.setdefault(broadcast_id, time)

    def record_delivery(self, broadcast_id: BroadcastID, time: float) -> None:
        """Record one A-delivery of ``broadcast_id`` at ``time``."""
        self._delivery_counts[broadcast_id] = self._delivery_counts.get(broadcast_id, 0) + 1
        current = self._first_delivery.get(broadcast_id)
        if current is None or time < current:
            self._first_delivery[broadcast_id] = time

    # ------------------------------------------------------------------ queries

    def broadcast_time(self, broadcast_id: BroadcastID) -> Optional[float]:
        """When ``broadcast_id`` was A-broadcast (or ``None``)."""
        return self._broadcast_times.get(broadcast_id)

    def first_delivery_time(self, broadcast_id: BroadcastID) -> Optional[float]:
        """Earliest A-delivery time of ``broadcast_id`` (or ``None``)."""
        return self._first_delivery.get(broadcast_id)

    def delivery_count(self, broadcast_id: BroadcastID) -> int:
        """How many processes A-delivered ``broadcast_id`` so far."""
        return self._delivery_counts.get(broadcast_id, 0)

    def is_delivered(self, broadcast_id: BroadcastID) -> bool:
        """Whether at least one process A-delivered ``broadcast_id``."""
        return broadcast_id in self._first_delivery

    def latency(self, broadcast_id: BroadcastID) -> Optional[float]:
        """Latency of ``broadcast_id`` or ``None`` if not delivered yet."""
        start = self._broadcast_times.get(broadcast_id)
        end = self._first_delivery.get(broadcast_id)
        if start is None or end is None:
            return None
        return end - start

    def latencies(
        self, only: Optional[Iterable[BroadcastID]] = None
    ) -> Dict[BroadcastID, float]:
        """Latencies of delivered messages (optionally restricted to ``only``)."""
        ids: Iterable[BroadcastID]
        ids = self._broadcast_times if only is None else only
        result: Dict[BroadcastID, float] = {}
        for broadcast_id in ids:
            value = self.latency(broadcast_id)
            if value is not None:
                result[broadcast_id] = value
        return result

    def undelivered(self, only: Optional[Iterable[BroadcastID]] = None) -> List[BroadcastID]:
        """Messages that were broadcast but never delivered anywhere."""
        ids = self._broadcast_times if only is None else only
        return [bid for bid in ids if bid in self._broadcast_times and bid not in self._first_delivery]

    def summary(self, only: Optional[Iterable[BroadcastID]] = None) -> Summary:
        """Summary statistics of the recorded latencies."""
        return summarize(self.latencies(only).values())

    def tracked_count(self) -> int:
        """Number of broadcast messages tracked so far."""
        return len(self._broadcast_times)
