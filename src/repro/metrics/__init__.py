"""Performance metrics: latency recording and summary statistics."""

from repro.metrics.latency import LatencyRecorder
from repro.metrics.stats import Summary, summarize

__all__ = ["LatencyRecorder", "Summary", "summarize"]
