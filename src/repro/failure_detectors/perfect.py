"""Perfect failure detector: no mistakes, immediate (or delayed) detection.

Built directly on the shared
:class:`~repro.failure_detectors.fabric.CrashDetectionFabric` base -- *not*
on the QoS fabric -- so the perfect detector cannot inherit QoS mistake
behaviour by accident: there is simply no mistake machinery in its type.
Crashes are detected exactly ``detection_time`` after they happen, trust is
restored one ``detection_time`` after a recovery, and no correct process is
ever suspected.  Used extensively by the unit and property tests, and
available as the ``"perfect"`` fd kind of the stack registry
(``SystemConfig(stack="fd", fd_kind="perfect")`` or ``stack="fd/perfect"``).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.failure_detectors.fabric import CrashDetectionFabric
from repro.failure_detectors.interface import FailureDetector
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.rng import RandomStreams


class PerfectFailureDetector(FailureDetector):
    """Per-process detector driven by a :class:`PerfectFailureDetectorFabric`."""


class PerfectFailureDetectorFabric(CrashDetectionFabric):
    """An idealised detector: constant-delay crash detection, zero mistakes."""

    detector_class = PerfectFailureDetector

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        rng: Optional[RandomStreams] = None,
        detection_time: float = 0.0,
        monitored: Optional[Iterable[int]] = None,
        scan_interval: Optional[float] = None,
    ) -> None:
        if detection_time < 0:
            raise ValueError(f"detection_time must be >= 0, got {detection_time}")
        # ``rng`` is accepted (and ignored) so the fabric satisfies the
        # uniform registry factory signature: a perfect detector draws
        # nothing random.
        self.detection_time = detection_time
        super().__init__(sim, network, monitored=monitored, scan_interval=scan_interval)

    def _detection_time(self, monitor: int, monitored: int) -> float:
        return self.detection_time
