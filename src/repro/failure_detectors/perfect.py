"""Perfect failure detector: no mistakes, immediate (or delayed) detection.

A convenience wrapper over the QoS fabric with ``T_MR = inf`` and
``T_M = 0``.  Used extensively by the unit and property tests, and available
to library users who want to study algorithms under an idealised detector.
"""

from __future__ import annotations

from typing import Optional

from repro.failure_detectors.qos import QoSConfig, QoSFailureDetectorFabric
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.rng import RandomStreams


class PerfectFailureDetectorFabric(QoSFailureDetectorFabric):
    """QoS fabric configured as a perfect detector.

    Crashes are detected exactly ``detection_time`` after they happen and no
    correct process is ever suspected.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        rng: Optional[RandomStreams] = None,
        detection_time: float = 0.0,
    ) -> None:
        config = QoSConfig(
            detection_time=detection_time,
            mistake_recurrence_time=float("inf"),
            mistake_duration=0.0,
        )
        super().__init__(sim, network, rng or RandomStreams(0), config)
