"""Concrete heartbeat failure detector (extension, not used by the paper).

The paper models failure detectors abstractly through QoS metrics.  This
module provides a real, message-based detector so users can study how
implementation parameters (heartbeat period, timeout) translate into the QoS
metrics (``T_D`` roughly equals ``period + timeout`` in the absence of
contention) and how the extra heartbeat traffic loads the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.failure_detectors.interface import FailureDetector
from repro.sim.process import Component, SimProcess


@dataclass(frozen=True)
class HeartbeatConfig:
    """Parameters of the heartbeat detector.

    Attributes
    ----------
    period:
        Interval between two heartbeats sent by a process.
    timeout:
        A process is suspected when no heartbeat arrived for this long.
    check_interval:
        How often the monitor re-evaluates its timeouts; defaults to the
        period.
    """

    period: float = 10.0
    timeout: float = 30.0
    check_interval: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be > 0, got {self.period}")
        if self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.check_interval < 0:
            raise ValueError(f"check_interval must be >= 0, got {self.check_interval}")

    @property
    def effective_check_interval(self) -> float:
        """The check interval actually used (defaults to ``period``)."""
        return self.check_interval if self.check_interval > 0 else self.period


class HeartbeatFailureDetector(FailureDetector, Component):
    """A push-style heartbeat failure detector exchanging real messages."""

    protocol = "heartbeat-fd"

    def __init__(self, process: SimProcess, config: HeartbeatConfig) -> None:
        n = process.network.n
        FailureDetector.__init__(self, process.pid, range(n))
        Component.__init__(self, process)
        self.config = config
        self._last_heartbeat: Dict[int, float] = {}
        self._started = False

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Begin emitting heartbeats and checking timeouts."""
        if self._started:
            return
        self._started = True
        now = self.now
        for pid in self.monitored:
            self._last_heartbeat[pid] = now
        self._emit_heartbeat()
        self.set_timer(self.config.effective_check_interval, self._check_timeouts)

    # ------------------------------------------------------------------ messages

    def on_message(self, sender: int, body) -> None:
        """Record the heartbeat and clear any suspicion of the sender."""
        self._last_heartbeat[sender] = self.now
        if self.is_suspected(sender):
            self._set_suspected(sender, False)

    # ------------------------------------------------------------------ timers

    def _emit_heartbeat(self) -> None:
        destinations = [pid for pid in range(self.process.network.n) if pid != self.pid]
        if destinations:
            self.send(destinations, ("HEARTBEAT", self.pid))
        self.set_timer(self.config.period, self._emit_heartbeat)

    def _check_timeouts(self) -> None:
        now = self.now
        for pid in self.monitored:
            last = self._last_heartbeat.get(pid, 0.0)
            if now - last > self.config.timeout and not self.is_suspected(pid):
                self._set_suspected(pid, True)
        self.set_timer(self.config.effective_check_interval, self._check_timeouts)
