"""Concrete heartbeat failure detector (extension, not used by the paper).

The paper models failure detectors abstractly through QoS metrics.  This
module provides a real, message-based detector so users can study how
implementation parameters (heartbeat period, timeout) translate into the QoS
metrics (``T_D`` roughly equals ``period + timeout`` in the absence of
contention) and how the extra heartbeat traffic loads the network.

:class:`HeartbeatFailureDetectorFabric` adapts the per-process detectors to
the fabric protocol of the stack registry
(:class:`repro.stacks.api.FailureDetectorFabric`), which makes the heartbeat
detector a first-class ``fd_kind``: ``SystemConfig(stack="fd",
fd_kind="heartbeat")`` (or ``stack="fd/heartbeat"``) runs any scenario --
including the crash-recovery churn and correlated-crash schedules -- on real
heartbeat traffic instead of the paper's abstract QoS clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.failure_detectors.interface import FailureDetector
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.process import Component, SimProcess

INFINITY = float("inf")


@dataclass(frozen=True)
class HeartbeatConfig:
    """Parameters of the heartbeat detector.

    Attributes
    ----------
    period:
        Interval between two heartbeats sent by a process.
    timeout:
        A process is suspected when no heartbeat arrived for this long.
    check_interval:
        How often the monitor re-evaluates its timeouts; defaults to the
        period.
    """

    period: float = 10.0
    timeout: float = 30.0
    check_interval: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be > 0, got {self.period}")
        if self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.check_interval < 0:
            raise ValueError(f"check_interval must be >= 0, got {self.check_interval}")

    @property
    def effective_check_interval(self) -> float:
        """The check interval actually used (defaults to ``period``)."""
        return self.check_interval if self.check_interval > 0 else self.period


class HeartbeatFailureDetector(FailureDetector, Component):
    """A push-style heartbeat failure detector exchanging real messages."""

    protocol = "heartbeat-fd"

    def __init__(self, process: SimProcess, config: HeartbeatConfig) -> None:
        n = process.network.n
        FailureDetector.__init__(self, process.pid, range(n))
        Component.__init__(self, process)
        self.config = config
        self._last_heartbeat: Dict[int, float] = {}
        # Forced-suspicion windows (fault injection): while ``now`` is before
        # the recorded deadline, arriving heartbeats do not clear the
        # suspicion of that process.
        self._forced_until: Dict[int, float] = {}
        self._started = False

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Begin emitting heartbeats and checking timeouts."""
        if self._started:
            return
        self._started = True
        now = self.now
        for pid in self.monitored:
            self._last_heartbeat[pid] = now
        self._emit_heartbeat()
        self.set_timer(self.config.effective_check_interval, self._check_timeouts)

    def on_crash(self) -> None:
        """The hosting process crashed: timers died with it; allow a restart."""
        self._started = False

    def on_recover(self) -> None:
        """Warm restart: resume heartbeats and grant peers a fresh timeout.

        Re-arming the last-heartbeat clocks on recovery mirrors the QoS
        fabric's post-recovery grace: the recovered monitor does not
        instantly suspect every peer just because its clocks went stale
        while it was down.
        """
        self.start()

    # ------------------------------------------------------------------ messages

    def on_message(self, sender: int, body) -> None:
        """Record the heartbeat and clear any suspicion of the sender."""
        self._last_heartbeat[sender] = self.now
        if self.is_suspected(sender) and self.now >= self._forced_until.get(sender, 0.0):
            self._set_suspected(sender, False)

    # ------------------------------------------------------------------ fault injection

    def force_suspect_until(self, pid: int, until: float) -> None:
        """Suspect ``pid`` now and ignore its heartbeats until ``until``."""
        self._forced_until[pid] = max(until, self._forced_until.get(pid, 0.0))
        self._set_suspected(pid, True)

    def lift_forced_suspicion(self, pid: int) -> None:
        """End a forced window; trust returns unless ``pid`` is really down.

        A longer (or permanent) window layered on top of the one whose end
        scheduled this call keeps the suspicion: the lift only applies once
        the recorded deadline has actually passed.
        """
        if self._forced_until.get(pid, 0.0) > self.now:
            return
        self._forced_until.pop(pid, None)
        if not self.process.network.is_crashed(pid):
            self._set_suspected(pid, False)

    # ------------------------------------------------------------------ timers

    def _emit_heartbeat(self) -> None:
        destinations = [pid for pid in range(self.process.network.n) if pid != self.pid]
        if destinations:
            self.send(destinations, ("HEARTBEAT", self.pid))
        self.set_timer(self.config.period, self._emit_heartbeat)

    def _check_timeouts(self) -> None:
        now = self.now
        for pid in self.monitored:
            last = self._last_heartbeat.get(pid, 0.0)
            if now - last > self.config.timeout and not self.is_suspected(pid):
                self._set_suspected(pid, True)
        self.set_timer(self.config.effective_check_interval, self._check_timeouts)


class HeartbeatFailureDetectorFabric:
    """Fabric protocol adapter over per-process heartbeat detectors.

    Unlike the clock-driven fabrics, the detectors here are real protocol
    components: they are created when a process is attached, start with the
    process, stop when it crashes and resume when it recovers.  The fabric
    therefore has no crash bookkeeping of its own -- detection *is* the
    message timeout -- and only implements the forced-suspicion capabilities
    fault schedules require.
    """

    def __init__(self, sim: Simulator, network: Network, config: HeartbeatConfig) -> None:
        self._sim = sim
        self._network = network
        self.config = config
        self._detectors: Dict[int, HeartbeatFailureDetector] = {}

    # ------------------------------------------------------------------ access

    def attach(self, process: SimProcess) -> HeartbeatFailureDetector:
        """Create the heartbeat component of ``process`` (once per process)."""
        if process.pid in self._detectors:
            raise ValueError(f"process {process.pid} already has a heartbeat detector")
        detector = HeartbeatFailureDetector(process, self.config)
        self._detectors[process.pid] = detector
        return detector

    def detector(self, pid: int) -> HeartbeatFailureDetector:
        """The failure detector local to process ``pid``."""
        return self._detectors[pid]

    def detectors(self) -> Dict[int, HeartbeatFailureDetector]:
        """All detectors, keyed by owner process id."""
        return dict(self._detectors)

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """No-op: heartbeat detectors start with their hosting process."""

    # ------------------------------------------------------------------ fault injection

    def suspect_permanently(self, monitored: int, delay: float = 0.0) -> None:
        """Make every monitor suspect ``monitored`` permanently after ``delay``.

        The forced window never expires, so even a live process stays
        suspected (its heartbeats are ignored) -- matching the crash-steady
        convention of the clock-driven fabrics.
        """
        for monitor, detector in self._detectors.items():
            if monitor == monitored:
                continue
            if delay == 0.0:
                detector.force_suspect_until(monitored, INFINITY)
            else:
                self._sim.schedule(delay, detector.force_suspect_until, monitored, INFINITY)

    def suspect_during(
        self,
        target: int,
        start: float,
        duration: float,
        monitors: Optional[Iterable[int]] = None,
    ) -> None:
        """Force a wrong suspicion of ``target`` during ``[start, start + duration]``.

        Heartbeats from ``target`` arriving inside the window are ignored
        (the mistake does not self-heal early); crashed endpoints are
        skipped at fire time, and the suspicion is not lifted if ``target``
        really crashed in the meantime.
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        pids = self._detectors.keys() if monitors is None else monitors
        for monitor in pids:
            if monitor == target:
                continue
            self._sim.schedule_at(start, self._forced_begins, monitor, target, duration)

    def _forced_begins(self, monitor: int, target: int, duration: float) -> None:
        if self._network.is_crashed(monitor) or self._network.is_crashed(target):
            return
        detector = self._detectors[monitor]
        if detector.is_suspected(target):
            return
        if duration <= 0:
            detector.force_suspect_until(target, self._sim.now)
            detector.lift_forced_suspicion(target)
            return
        detector.force_suspect_until(target, self._sim.now + duration)
        self._sim.schedule(duration, detector.lift_forced_suspicion, target)
