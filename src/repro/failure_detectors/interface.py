"""Failure detector interface shared by all implementations.

A failure detector is local to one process.  Algorithms query the current
suspicion state with :meth:`FailureDetector.is_suspected` and subscribe to
changes with :meth:`FailureDetector.add_listener`; listeners are invoked as
``listener(pid, suspected)`` whenever the suspicion state of ``pid`` flips.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Set

SuspicionListener = Callable[[int, bool], None]


class FailureDetector:
    """Base class holding suspicion state and listener plumbing."""

    def __init__(self, owner_pid: int, monitored: Iterable[int]) -> None:
        self.owner_pid = owner_pid
        self._monitored: Set[int] = {pid for pid in monitored if pid != owner_pid}
        self._suspected: Set[int] = set()
        self._listeners: List[SuspicionListener] = []
        # Immutable snapshot iterated on every flip; rebuilt on add/remove so
        # the (hot) notification loop never copies the listener list.  Same
        # semantics as iterating a copy: mutations during a notification
        # affect the next flip, not the one in flight.
        self._listener_snapshot: tuple = ()
        #: Counters useful for tests and diagnostics.
        self.suspicion_events = 0
        self.trust_events = 0

    # ------------------------------------------------------------------ queries

    @property
    def monitored(self) -> Set[int]:
        """Processes this detector monitors (never includes the owner)."""
        return set(self._monitored)

    def is_suspected(self, pid: int) -> bool:
        """Whether ``pid`` is currently suspected by the owner process."""
        return pid in self._suspected

    def suspected(self) -> Set[int]:
        """The set of currently suspected processes."""
        return set(self._suspected)

    def trusted(self) -> Set[int]:
        """Monitored processes that are currently not suspected."""
        return self._monitored - self._suspected

    # ------------------------------------------------------------------ listeners

    def add_listener(self, listener: SuspicionListener) -> None:
        """Subscribe to suspicion-state changes."""
        self._listeners.append(listener)
        self._listener_snapshot = tuple(self._listeners)

    def remove_listener(self, listener: SuspicionListener) -> None:
        """Unsubscribe a previously added listener (no-op if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)
            self._listener_snapshot = tuple(self._listeners)

    # ------------------------------------------------------------------ mutation

    def _set_suspected(self, pid: int, suspected: bool) -> None:
        """Update the suspicion state of ``pid`` and notify listeners on change."""
        if pid == self.owner_pid or pid not in self._monitored:
            return
        suspected_set = self._suspected
        if (pid in suspected_set) == suspected:
            return
        if suspected:
            suspected_set.add(pid)
            self.suspicion_events += 1
        else:
            suspected_set.discard(pid)
            self.trust_events += 1
        for listener in self._listener_snapshot:
            listener(pid, suspected)

    def force_suspect(self, pid: int) -> None:
        """Testing hook: mark ``pid`` suspected immediately."""
        self._set_suspected(pid, True)

    def force_trust(self, pid: int) -> None:
        """Testing hook: mark ``pid`` trusted immediately."""
        self._set_suspected(pid, False)


class SuspicionLog:
    """Optional helper recording (time, pid, suspected) transitions."""

    def __init__(self) -> None:
        self.entries: List[tuple] = []

    def record(self, time: float, pid: int, suspected: bool) -> None:
        """Append one transition to the log."""
        self.entries.append((time, pid, suspected))

    def transitions_for(self, pid: int) -> List[tuple]:
        """All transitions concerning ``pid``."""
        return [entry for entry in self.entries if entry[1] == pid]

    def mistake_durations(self, pid: int) -> List[float]:
        """Durations of completed suspicion periods of ``pid``."""
        durations: List[float] = []
        start: Dict[int, float] = {}
        for time, entry_pid, suspected in self.entries:
            if entry_pid != pid:
                continue
            if suspected:
                start[entry_pid] = time
            elif entry_pid in start:
                durations.append(time - start.pop(entry_pid))
        return durations
