"""Failure detector models.

The paper abstracts failure detectors through the quality-of-service (QoS)
metrics of Chen, Toueg and Aguilera:

* detection time ``T_D`` -- time from the crash of the monitored process to
  the moment the monitor suspects it permanently,
* mistake recurrence time ``T_MR`` -- time between two consecutive wrong
  suspicions of a correct process,
* mistake duration ``T_M`` -- how long a wrong suspicion lasts.

:class:`QoSFailureDetectorFabric` implements exactly this model (constant
``T_D``, exponentially distributed ``T_MR`` and ``T_M``, all monitor pairs
independent).  :class:`PerfectFailureDetectorFabric` is the mistake-free
idealisation, built on the shared :class:`CrashDetectionFabric` base rather
than on the QoS fabric.  :class:`HeartbeatFailureDetectorFabric` drives the
concrete, message-based :class:`HeartbeatFailureDetector`: it lets users
check how implementation parameters (heartbeat period, timeout) map onto the
QoS metrics and how heartbeat traffic loads the network.

All three are registered as ``fd_kind``\\ s in the stack registry
(:mod:`repro.stacks.registry`): ``"qos"``, ``"perfect"`` and ``"heartbeat"``
are selectable on any stack via ``SystemConfig(fd_kind=...)``.
"""

from repro.failure_detectors.fabric import CrashDetectionFabric
from repro.failure_detectors.heartbeat import (
    HeartbeatConfig,
    HeartbeatFailureDetector,
    HeartbeatFailureDetectorFabric,
)
from repro.failure_detectors.interface import FailureDetector, SuspicionListener
from repro.failure_detectors.perfect import (
    PerfectFailureDetector,
    PerfectFailureDetectorFabric,
)
from repro.failure_detectors.qos import QoSConfig, QoSFailureDetector, QoSFailureDetectorFabric

__all__ = [
    "CrashDetectionFabric",
    "FailureDetector",
    "HeartbeatConfig",
    "HeartbeatFailureDetector",
    "HeartbeatFailureDetectorFabric",
    "PerfectFailureDetector",
    "PerfectFailureDetectorFabric",
    "QoSConfig",
    "QoSFailureDetector",
    "QoSFailureDetectorFabric",
    "SuspicionListener",
]
