"""Failure detector models.

The paper abstracts failure detectors through the quality-of-service (QoS)
metrics of Chen, Toueg and Aguilera:

* detection time ``T_D`` -- time from the crash of the monitored process to
  the moment the monitor suspects it permanently,
* mistake recurrence time ``T_MR`` -- time between two consecutive wrong
  suspicions of a correct process,
* mistake duration ``T_M`` -- how long a wrong suspicion lasts.

:class:`QoSFailureDetector` implements exactly this model (constant ``T_D``,
exponentially distributed ``T_MR`` and ``T_M``, all monitor pairs independent
and identically distributed).  :class:`PerfectFailureDetector` is the
degenerate case without mistakes.  :class:`HeartbeatFailureDetector` is a
concrete, message-based detector provided as an extension: it lets users
check how implementation parameters (heartbeat period, timeout) map onto the
QoS metrics.
"""

from repro.failure_detectors.interface import FailureDetector, SuspicionListener
from repro.failure_detectors.qos import QoSConfig, QoSFailureDetector, QoSFailureDetectorFabric
from repro.failure_detectors.perfect import PerfectFailureDetectorFabric
from repro.failure_detectors.heartbeat import HeartbeatConfig, HeartbeatFailureDetector

__all__ = [
    "FailureDetector",
    "HeartbeatConfig",
    "HeartbeatFailureDetector",
    "PerfectFailureDetectorFabric",
    "QoSConfig",
    "QoSFailureDetector",
    "QoSFailureDetectorFabric",
    "SuspicionListener",
]
