"""QoS-model failure detectors (Chen, Toueg, Aguilera).

The fabric owns one :class:`QoSFailureDetector` per process and drives all
``n * (n - 1)`` monitor pairs directly from the simulation clock, without
exchanging any messages.  This is the abstraction used by the paper
(Section 6.2):

* the detection time ``T_D`` is a constant,
* the mistake recurrence time ``T_MR`` and the mistake duration ``T_M`` are
  exponentially distributed,
* all monitor pairs are independent.

The paper assumes all pairs are identically distributed; this implementation
additionally supports **asymmetric per-pair QoS**: any ordered pair
``(monitor, monitored)`` can override the global parameters (for instance one
flaky observer that wrongly suspects one peer far more often than everyone
else), which is what the beyond-paper ``asymmetric-qos`` scenario sweeps.

Crash detection, trust restoration after recovery and the forced-suspicion
capabilities (:meth:`~repro.failure_detectors.fabric.CrashDetectionFabric.suspect_permanently`,
:meth:`~repro.failure_detectors.fabric.CrashDetectionFabric.suspect_during`)
come from the shared :class:`~repro.failure_detectors.fabric.CrashDetectionFabric`
base; this module adds the *random* mistake model on top.

Two hot-path notes.  Every pair caches its effective config and a bound
``expovariate`` per RNG stream (the draw *sequence* per stream is unchanged,
so results stay bit-identical -- the seed resolved the stream name with an
f-string and a dict lookup per draw).  And with
``scan_interval`` set (see the fabric base), mistake transitions ride the
fabric's batched calendar instead of per-pair simulator events -- the
O(n^2)-timers throughput lane for large n.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.failure_detectors.fabric import (
    KIND_MISTAKE_BEGIN,
    KIND_MISTAKE_END,
    CrashDetectionFabric,
    Pair,
)
from repro.failure_detectors.interface import FailureDetector
from repro.sim.engine import EventHandle, Simulator
from repro.sim.network import Network
from repro.sim.rng import RandomStreams

INFINITY = float("inf")

__all__ = ["INFINITY", "Pair", "QoSConfig", "QoSFailureDetector", "QoSFailureDetectorFabric"]


@dataclass(frozen=True)
class QoSConfig:
    """Quality-of-service parameters of the failure detectors.

    Attributes
    ----------
    detection_time:
        ``T_D``: time from a crash to its permanent detection (constant).
        Also the time from a recovery back to trust.
    mistake_recurrence_time:
        Mean of the exponential ``T_MR``: time between two consecutive wrong
        suspicions of a correct process.  ``inf`` disables wrong suspicions.
    mistake_duration:
        Mean of the exponential ``T_M``: how long a wrong suspicion lasts.
        Zero produces instantaneous mistakes (suspect and trust back-to-back,
        which still triggers the algorithms' reactions).
    pair_overrides:
        Per-pair overrides: ``(((monitor, monitored), QoSConfig), ...)``.
        The override applies to that ordered observer pair only; every other
        pair uses the top-level parameters.  Overrides cannot nest.
    """

    detection_time: float = 0.0
    mistake_recurrence_time: float = INFINITY
    mistake_duration: float = 0.0
    pair_overrides: Tuple[Tuple[Pair, "QoSConfig"], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.detection_time < 0:
            raise ValueError(f"detection_time must be >= 0, got {self.detection_time}")
        if self.mistake_recurrence_time <= 0:
            raise ValueError(
                "mistake_recurrence_time must be > 0 (use inf to disable mistakes), "
                f"got {self.mistake_recurrence_time}"
            )
        if self.mistake_duration < 0:
            raise ValueError(f"mistake_duration must be >= 0, got {self.mistake_duration}")
        for (monitor, monitored), override in self.pair_overrides:
            if monitor == monitored:
                raise ValueError(f"a process does not monitor itself: pair {monitor!r}")
            if override.pair_overrides:
                raise ValueError("pair overrides cannot nest further overrides")

    @property
    def generates_mistakes(self) -> bool:
        """Whether this configuration produces wrong suspicions at all."""
        if math.isfinite(self.mistake_recurrence_time):
            return True
        return any(
            math.isfinite(override.mistake_recurrence_time)
            for _pair, override in self.pair_overrides
        )

    def pair(self, monitor: int, monitored: int) -> "QoSConfig":
        """The effective parameters of the ordered pair ``(monitor, monitored)``."""
        for pair, override in self.pair_overrides:
            if pair == (monitor, monitored):
                return override
        return self

    def with_pair(self, monitor: int, monitored: int, **changes: float) -> "QoSConfig":
        """A copy of this configuration with one per-pair override.

        Keyword arguments name the QoS fields that differ for the ordered
        pair (``detection_time``, ``mistake_recurrence_time``,
        ``mistake_duration``); every field *not* named inherits this
        configuration's value, so overriding the mistake parameters of one
        pair does not silently reset its detection time.
        """
        override = QoSConfig(
            detection_time=changes.pop("detection_time", self.detection_time),
            mistake_recurrence_time=changes.pop(
                "mistake_recurrence_time", self.mistake_recurrence_time
            ),
            mistake_duration=changes.pop("mistake_duration", self.mistake_duration),
        )
        if changes:
            raise TypeError(f"unknown QoS fields: {sorted(changes)}")
        kept = tuple(
            (pair, config)
            for pair, config in self.pair_overrides
            if pair != (monitor, monitored)
        )
        return QoSConfig(
            detection_time=self.detection_time,
            mistake_recurrence_time=self.mistake_recurrence_time,
            mistake_duration=self.mistake_duration,
            pair_overrides=kept + (((monitor, monitored), override),),
        )


class QoSFailureDetector(FailureDetector):
    """Per-process failure detector driven by a :class:`QoSFailureDetectorFabric`."""


def _constant_draw(value: float) -> Callable[[], float]:
    def draw() -> float:
        return value

    return draw


class QoSFailureDetectorFabric(CrashDetectionFabric):
    """Creates and drives the QoS failure detectors of every process."""

    detector_class = QoSFailureDetector

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        rng: RandomStreams,
        config: QoSConfig,
        monitored: Optional[Iterable[int]] = None,
        scan_interval: Optional[float] = None,
    ) -> None:
        self._rng = rng
        self.config = config
        # Pending mistake events per ordered monitor pair (monitor, monitored)
        # (exact mode only; batch mode tracks mistakes on the calendar).
        self._pending: Dict[Pair, List[EventHandle]] = {}
        # Per-pair cache of (effective config, recurrence draw, duration
        # draw).  The draws are bound ``expovariate`` calls on the pair's
        # named streams: same streams, same draw sequence as resolving the
        # stream by name per draw, minus the f-string and dict lookups.
        self._pair_cache: Dict[Pair, Tuple[QoSConfig, Callable[[], float], Callable[[], float]]] = {}
        super().__init__(sim, network, monitored=monitored, scan_interval=scan_interval)

    # ------------------------------------------------------------------ hooks

    def _pair_config(self, monitor: int, monitored: int) -> QoSConfig:
        return self._pair_state(monitor, monitored)[0]

    def _pair_state(
        self, monitor: int, monitored: int
    ) -> Tuple[QoSConfig, Callable[[], float], Callable[[], float]]:
        state = self._pair_cache.get((monitor, monitored))
        if state is None:
            config = self.config.pair(monitor, monitored)
            state = (
                config,
                self._make_draw(
                    f"fd/{monitor}/{monitored}/recurrence", config.mistake_recurrence_time
                ),
                self._make_draw(
                    f"fd/{monitor}/{monitored}/duration", config.mistake_duration
                ),
            )
            self._pair_cache[(monitor, monitored)] = state
        return state

    def _make_draw(self, name: str, mean: float) -> Callable[[], float]:
        # Mirrors ``RandomStreams.exponential``: degenerate means consume no
        # randomness (and leave the stream uncreated until a real draw).
        if mean == 0:
            return _constant_draw(0.0)
        if mean == INFINITY:
            return _constant_draw(INFINITY)
        # Inlined ``Random.expovariate(rate)``: same formula on the same
        # stream (``-log(1 - U) / rate``), so the draw sequence stays
        # bit-identical, minus one call frame per draw.
        uniform = self._rng.stream(name).random
        rate = 1.0 / mean
        log = math.log

        def draw() -> float:
            return -log(1.0 - uniform()) / rate

        return draw

    def _detection_time(self, monitor: int, monitored: int) -> float:
        return self._pair_config(monitor, monitored).detection_time

    def _cancel_mistakes(self, monitor: int, monitored: int) -> None:
        if self._scan_interval is not None:
            self._calendar_cancel(KIND_MISTAKE_BEGIN, monitor, monitored)
            return
        for handle in self._pending.pop((monitor, monitored), []):
            handle.cancel()

    def _resume_mistakes(self, monitor: int, monitored: int) -> None:
        if monitor in self._crashed or monitored in self._crashed:
            return
        self._cancel_mistakes(monitor, monitored)
        # Cancelling may have killed the end event of a wrong suspicion that
        # was in progress when the crash hit; lift it now or it never ends.
        # Real crash detections are excluded: those pairs have a pending
        # trust restoration that owns the (delayed) correction.
        detector = self._detectors[monitor]
        if (
            detector.is_suspected(monitored)
            and not self._trust_pending(monitor, monitored)
        ):
            detector._set_suspected(monitored, False)
        self._schedule_next_mistake(monitor, monitored)

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Begin generating wrong suspicions (call once before the run)."""
        super().start()
        if not self.config.generates_mistakes:
            return
        for monitor in self._detectors:
            for monitored in self._detectors[monitor].monitored:
                self._schedule_next_mistake(monitor, monitored)

    # ------------------------------------------------------------------ mistakes

    def _schedule_next_mistake(self, monitor: int, monitored: int) -> None:
        if monitored in self._crashed or monitor in self._crashed:
            return
        # Cache probed inline: one mistake schedules another, so this runs
        # once per mistake cycle and the hit path skips the helper frame.
        state = self._pair_cache.get((monitor, monitored))
        if state is None:
            state = self._pair_state(monitor, monitored)
        interval = state[1]()
        if interval == INFINITY:
            return
        if self._scan_interval is not None:
            self._calendar_push(KIND_MISTAKE_BEGIN, interval, monitor, monitored)
            return
        handle = self._sim.schedule(interval, self._mistake_begins, monitor, monitored)
        pending = self._pending.setdefault((monitor, monitored), [])
        pending.append(handle)
        if len(pending) > 3:
            # At most two events are live per pair (one end, one begin); the
            # rest have fired or been cancelled.  Prune so long runs do not
            # accumulate one dead handle per mistake cycle.
            now = self._sim.now
            pending[:] = [
                h for h in pending if not h.cancelled and h.time >= now
            ]

    def _mistake_begins(self, monitor: int, monitored: int) -> None:
        if monitored in self._crashed or monitor in self._crashed:
            return
        detector = self._detectors[monitor]
        state = self._pair_cache.get((monitor, monitored))
        if state is None:
            state = self._pair_state(monitor, monitored)
        duration = state[2]()
        if monitored not in detector._suspected:
            detector._set_suspected(monitored, True)
            if duration <= 0:
                # Instantaneous mistake: listeners see the suspicion and the
                # correction back-to-back, which is enough to trigger the
                # algorithms' failure-handling paths.
                detector._set_suspected(monitored, False)
            else:
                handle = self._sim.schedule(
                    duration, self._mistake_ends, monitor, monitored
                )
                self._pending.setdefault((monitor, monitored), []).append(handle)
        self._schedule_next_mistake(monitor, monitored)

    def _mistake_ends(self, monitor: int, monitored: int) -> None:
        if monitored in self._crashed:
            return
        self._detectors[monitor]._set_suspected(monitored, False)

    # ------------------------------------------------------------------ batched scan

    def _scan_mistake_begins(self, monitor: int, monitored: int) -> None:
        if monitored in self._crashed or monitor in self._crashed:
            return
        detector = self._detectors[monitor]
        state = self._pair_cache.get((monitor, monitored))
        if state is None:
            state = self._pair_state(monitor, monitored)
        duration = state[2]()
        if monitored not in detector._suspected:
            detector._set_suspected(monitored, True)
            if duration <= 0:
                detector._set_suspected(monitored, False)
            else:
                self._calendar_push(KIND_MISTAKE_END, duration, monitor, monitored)
        self._schedule_next_mistake(monitor, monitored)

    def _scan_mistake_ends(self, monitor: int, monitored: int) -> None:
        if monitored in self._crashed:
            return
        self._detectors[monitor]._set_suspected(monitored, False)
