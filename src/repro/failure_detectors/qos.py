"""QoS-model failure detectors (Chen, Toueg, Aguilera).

The fabric owns one :class:`QoSFailureDetector` per process and drives all
``n * (n - 1)`` monitor pairs directly from the simulation clock, without
exchanging any messages.  This is the abstraction used by the paper
(Section 6.2):

* the detection time ``T_D`` is a constant,
* the mistake recurrence time ``T_MR`` and the mistake duration ``T_M`` are
  exponentially distributed,
* all monitor pairs are independent and identically distributed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.failure_detectors.interface import FailureDetector
from repro.sim.engine import EventHandle, Simulator
from repro.sim.network import Network
from repro.sim.rng import RandomStreams

INFINITY = float("inf")


@dataclass(frozen=True)
class QoSConfig:
    """Quality-of-service parameters of the failure detectors.

    Attributes
    ----------
    detection_time:
        ``T_D``: time from a crash to its permanent detection (constant).
    mistake_recurrence_time:
        Mean of the exponential ``T_MR``: time between two consecutive wrong
        suspicions of a correct process.  ``inf`` disables wrong suspicions.
    mistake_duration:
        Mean of the exponential ``T_M``: how long a wrong suspicion lasts.
        Zero produces instantaneous mistakes (suspect and trust back-to-back,
        which still triggers the algorithms' reactions).
    """

    detection_time: float = 0.0
    mistake_recurrence_time: float = INFINITY
    mistake_duration: float = 0.0

    def __post_init__(self) -> None:
        if self.detection_time < 0:
            raise ValueError(f"detection_time must be >= 0, got {self.detection_time}")
        if self.mistake_recurrence_time <= 0:
            raise ValueError(
                "mistake_recurrence_time must be > 0 (use inf to disable mistakes), "
                f"got {self.mistake_recurrence_time}"
            )
        if self.mistake_duration < 0:
            raise ValueError(f"mistake_duration must be >= 0, got {self.mistake_duration}")

    @property
    def generates_mistakes(self) -> bool:
        """Whether this configuration produces wrong suspicions at all."""
        return math.isfinite(self.mistake_recurrence_time)


class QoSFailureDetector(FailureDetector):
    """Per-process failure detector driven by a :class:`QoSFailureDetectorFabric`."""


class QoSFailureDetectorFabric:
    """Creates and drives the QoS failure detectors of every process."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        rng: RandomStreams,
        config: QoSConfig,
        monitored: Optional[Iterable[int]] = None,
    ) -> None:
        self._sim = sim
        self._network = network
        self._rng = rng
        self.config = config
        n = network.n
        pids = list(range(n)) if monitored is None else sorted(monitored)
        self._detectors: Dict[int, QoSFailureDetector] = {
            pid: QoSFailureDetector(pid, pids) for pid in pids
        }
        # Pending events per ordered monitor pair (monitor, monitored).
        self._pending: Dict[Tuple[int, int], List[EventHandle]] = {}
        self._crashed: set = set()
        network.add_crash_listener(self._on_crash)

    # ------------------------------------------------------------------ access

    def detector(self, pid: int) -> QoSFailureDetector:
        """The failure detector local to process ``pid``."""
        return self._detectors[pid]

    def detectors(self) -> Dict[int, QoSFailureDetector]:
        """All detectors, keyed by owner process id."""
        return dict(self._detectors)

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Begin generating wrong suspicions (call once before the run)."""
        if not self.config.generates_mistakes:
            return
        for monitor in self._detectors:
            for monitored in self._detectors[monitor].monitored:
                self._schedule_next_mistake(monitor, monitored)

    def suspect_permanently(self, monitored: int, delay: float = 0.0) -> None:
        """Make every monitor suspect ``monitored`` permanently after ``delay``.

        Used by the crash-steady scenario where crashes happened long before
        the measured window: every detector suspects the crashed processes
        from the very start of the run.
        """
        self._crashed.add(monitored)
        for monitor, detector in self._detectors.items():
            if monitor == monitored:
                continue
            self._cancel_pending(monitor, monitored)
            if delay == 0.0:
                detector._set_suspected(monitored, True)
            else:
                self._sim.schedule(delay, detector._set_suspected, monitored, True)

    # ------------------------------------------------------------------ crashes

    def _on_crash(self, pid: int, _time: float) -> None:
        if pid in self._crashed:
            return
        self._crashed.add(pid)
        for monitor, detector in self._detectors.items():
            if monitor == pid:
                continue
            self._cancel_pending(monitor, pid)
            self._sim.schedule(
                self.config.detection_time, self._detect_crash, monitor, pid
            )

    def _detect_crash(self, monitor: int, crashed: int) -> None:
        self._detectors[monitor]._set_suspected(crashed, True)

    # ------------------------------------------------------------------ mistakes

    def _schedule_next_mistake(self, monitor: int, monitored: int) -> None:
        if monitored in self._crashed or monitor in self._crashed:
            return
        interval = self._rng.exponential(
            f"fd/{monitor}/{monitored}/recurrence", self.config.mistake_recurrence_time
        )
        if not math.isfinite(interval):
            return
        handle = self._sim.schedule(interval, self._mistake_begins, monitor, monitored)
        self._pending.setdefault((monitor, monitored), []).append(handle)

    def _mistake_begins(self, monitor: int, monitored: int) -> None:
        if monitored in self._crashed or monitor in self._crashed:
            return
        detector = self._detectors[monitor]
        duration = self._rng.exponential(
            f"fd/{monitor}/{monitored}/duration", self.config.mistake_duration
        )
        if not detector.is_suspected(monitored):
            detector._set_suspected(monitored, True)
            if duration <= 0:
                # Instantaneous mistake: listeners see the suspicion and the
                # correction back-to-back, which is enough to trigger the
                # algorithms' failure-handling paths.
                detector._set_suspected(monitored, False)
            else:
                handle = self._sim.schedule(
                    duration, self._mistake_ends, monitor, monitored
                )
                self._pending.setdefault((monitor, monitored), []).append(handle)
        self._schedule_next_mistake(monitor, monitored)

    def _mistake_ends(self, monitor: int, monitored: int) -> None:
        if monitored in self._crashed:
            return
        self._detectors[monitor]._set_suspected(monitored, False)

    # ------------------------------------------------------------------ helpers

    def _cancel_pending(self, monitor: int, monitored: int) -> None:
        for handle in self._pending.pop((monitor, monitored), []):
            handle.cancel()
