"""Shared machinery of the clock-driven failure detector fabrics.

:class:`CrashDetectionFabric` owns one detector per process and implements
everything every clock-driven fabric needs, independent of *why* suspicions
happen:

* crash detection: a crash is suspected by every monitor a per-pair
  detection time ``T_D`` later (pending detections are cancelled if the
  process recovers first -- a crash shorter than ``T_D`` goes unnoticed);
* trust restoration: monitors that did suspect a recovered process trust it
  again one detection time after the recovery;
* forced suspicions: :meth:`suspect_permanently` (the crash-steady
  convention) and :meth:`suspect_during` (deterministic wrong-suspicion
  windows used by declarative fault schedules).

:class:`repro.failure_detectors.qos.QoSFailureDetectorFabric` extends it
with the paper's *random* mistake model (exponential ``T_MR`` / ``T_M``);
:class:`repro.failure_detectors.perfect.PerfectFailureDetectorFabric` uses
it as-is, so "perfect" can no longer inherit QoS mistake behaviour by
accident.  The mistake-specific extension points are the ``_cancel_mistakes``
/ ``_resume_mistakes`` hooks and the :meth:`start` override.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.failure_detectors.interface import FailureDetector
from repro.sim.engine import EventHandle, Simulator
from repro.sim.network import Network

#: An ordered (monitor, monitored) failure detector pair.
Pair = Tuple[int, int]


class CrashDetectionFabric:
    """Base fabric: crash detection, trust restoration, forced suspicions."""

    #: Detector class instantiated per process; subclasses may refine it.
    detector_class = FailureDetector

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        monitored: Optional[Iterable[int]] = None,
    ) -> None:
        self._sim = sim
        self._network = network
        pids = list(range(network.n)) if monitored is None else sorted(monitored)
        self._detectors: Dict[int, FailureDetector] = {
            pid: self.detector_class(pid, pids) for pid in pids
        }
        # Pending crash detections / post-recovery trust restorations, so a
        # recovery (resp. a re-crash) can cancel them.
        self._pending_detect: Dict[Pair, EventHandle] = {}
        self._pending_trust: Dict[Pair, EventHandle] = {}
        self._crashed: set = set()
        self._started = False
        network.add_crash_listener(self._on_crash)
        network.add_recovery_listener(self._on_recovery)

    # ------------------------------------------------------------------ access

    def attach(self, process) -> FailureDetector:
        """The detector of ``process`` (fabric protocol; detectors pre-exist)."""
        return self._detectors[process.pid]

    def detector(self, pid: int) -> FailureDetector:
        """The failure detector local to process ``pid``."""
        return self._detectors[pid]

    def detectors(self) -> Dict[int, FailureDetector]:
        """All detectors, keyed by owner process id."""
        return dict(self._detectors)

    # ------------------------------------------------------------------ hooks

    def _detection_time(self, monitor: int, monitored: int) -> float:
        """The detection time ``T_D`` of the ordered pair (default: 0)."""
        return 0.0

    def _cancel_mistakes(self, monitor: int, monitored: int) -> None:
        """Cancel pending random-mistake events of the pair (mistake models)."""

    def _resume_mistakes(self, monitor: int, monitored: int) -> None:
        """Resume random-mistake generation for the pair after a recovery."""

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Lifecycle hook called once when the system starts (idempotent)."""
        self._started = True

    def suspect_permanently(self, monitored: int, delay: float = 0.0) -> None:
        """Make every monitor suspect ``monitored`` permanently after ``delay``.

        Used by the crash-steady scenario where crashes happened long before
        the measured window: every detector suspects the crashed processes
        from the very start of the run.
        """
        self._crashed.add(monitored)
        for monitor, detector in self._detectors.items():
            if monitor == monitored:
                continue
            self._cancel_mistakes(monitor, monitored)
            if delay == 0.0:
                detector._set_suspected(monitored, True)
            else:
                self._sim.schedule(delay, detector._set_suspected, monitored, True)

    def suspect_during(
        self,
        target: int,
        start: float,
        duration: float,
        monitors: Optional[Iterable[int]] = None,
    ) -> None:
        """Force a wrong suspicion of ``target`` during ``[start, start + duration]``.

        Every monitor in ``monitors`` (default: all) suspects ``target`` at
        absolute time ``start`` and trusts it again ``duration`` later --
        the deterministic counterpart of the random QoS mistakes, used by
        declarative fault schedules.  Crashed endpoints are skipped at fire
        time, and the suspicion is not lifted if ``target`` really crashed
        in the meantime.
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        pids = self._detectors.keys() if monitors is None else monitors
        for monitor in pids:
            if monitor == target:
                continue
            self._sim.schedule_at(start, self._forced_begins, monitor, target, duration)

    def _forced_begins(self, monitor: int, target: int, duration: float) -> None:
        if target in self._crashed or monitor in self._crashed:
            return
        detector = self._detectors[monitor]
        if detector.is_suspected(target):
            return
        detector._set_suspected(target, True)
        if duration <= 0:
            detector._set_suspected(target, False)
        else:
            self._sim.schedule(duration, self._forced_ends, monitor, target)

    def _forced_ends(self, monitor: int, monitored: int) -> None:
        if monitored in self._crashed:
            return
        self._detectors[monitor]._set_suspected(monitored, False)

    # ------------------------------------------------------------------ crashes

    def _on_crash(self, pid: int, _time: float) -> None:
        if pid in self._crashed:
            return
        self._crashed.add(pid)
        for monitor, detector in self._detectors.items():
            if monitor == pid:
                continue
            self._cancel_mistakes(monitor, pid)
            self._cancel_trust(monitor, pid)
            detection_time = self._detection_time(monitor, pid)
            self._pending_detect[(monitor, pid)] = self._sim.schedule(
                detection_time, self._detect_crash, monitor, pid
            )

    def _detect_crash(self, monitor: int, crashed: int) -> None:
        self._pending_detect.pop((monitor, crashed), None)
        self._detectors[monitor]._set_suspected(crashed, True)

    # ------------------------------------------------------------------ recoveries

    def _on_recovery(self, pid: int, _time: float) -> None:
        if pid not in self._crashed:
            return
        self._crashed.discard(pid)
        for monitor in self._detectors:
            if monitor == pid:
                continue
            # A crash shorter than the detection time goes unnoticed.
            pending = self._pending_detect.pop((monitor, pid), None)
            if pending is not None:
                pending.cancel()
            if self._detectors[monitor].is_suspected(pid):
                detection_time = self._detection_time(monitor, pid)
                self._pending_trust[(monitor, pid)] = self._sim.schedule(
                    detection_time, self._restore_trust, monitor, pid
                )
            # Wrong-suspicion generation resumes in both directions.
            if self._started:
                self._resume_mistakes(monitor, pid)
                self._resume_mistakes(pid, monitor)

    def _restore_trust(self, monitor: int, recovered: int) -> None:
        self._pending_trust.pop((monitor, recovered), None)
        if recovered in self._crashed:
            return
        self._detectors[monitor]._set_suspected(recovered, False)

    # ------------------------------------------------------------------ helpers

    def _cancel_trust(self, monitor: int, monitored: int) -> None:
        handle = self._pending_trust.pop((monitor, monitored), None)
        if handle is not None:
            handle.cancel()
