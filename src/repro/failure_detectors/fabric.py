"""Shared machinery of the clock-driven failure detector fabrics.

:class:`CrashDetectionFabric` owns one detector per process and implements
everything every clock-driven fabric needs, independent of *why* suspicions
happen:

* crash detection: a crash is suspected by every monitor a per-pair
  detection time ``T_D`` later (pending detections are cancelled if the
  process recovers first -- a crash shorter than ``T_D`` goes unnoticed);
* trust restoration: monitors that did suspect a recovered process trust it
  again one detection time after the recovery;
* forced suspicions: :meth:`suspect_permanently` (the crash-steady
  convention) and :meth:`suspect_during` (deterministic wrong-suspicion
  windows used by declarative fault schedules);
* partition awareness: the clock-driven detectors exchange no messages, so
  they cannot starve naturally when the network partitions (unlike the
  heartbeat detector, whose real heartbeat traffic the partition mask
  drops).  The fabric therefore listens for reachability changes: while the
  ``monitored -> monitor`` link is blocked the pair behaves exactly like a
  crash from the monitor's point of view -- suspected one detection time
  after the cut, trusted again one detection time after the heal, with the
  pair's random mistakes suppressed in between (a stray mistake correction
  must not clear a partition-induced suspicion).

:class:`repro.failure_detectors.qos.QoSFailureDetectorFabric` extends it
with the paper's *random* mistake model (exponential ``T_MR`` / ``T_M``);
:class:`repro.failure_detectors.perfect.PerfectFailureDetectorFabric` uses
it as-is, so "perfect" can no longer inherit QoS mistake behaviour by
accident.  The mistake-specific extension points are the ``_cancel_mistakes``
/ ``_resume_mistakes`` hooks, the ``_scan_mistake_*`` calendar handlers and
the :meth:`start` override.

Batched scan mode
-----------------

With the default ``scan_interval=None`` every pending detection, trust
restoration and (in the QoS subclass) mistake transition is its own
simulator event -- O(n^2) live timer events, which dominates the event loop
at n >= 15.  Passing ``scan_interval=q`` (``SystemConfig(fd_scan_interval=q)``)
switches the fabric to a *batched calendar*: pair transitions become plain
tuples on a fabric-local heap, at most **one** simulator event (the scan) is
armed at a time, and each scan drains every transition due by then.
Cancellation is O(1) via per-pair generation counters instead of event
handles, so recoveries and re-crashes never touch the simulator queue.

The trade-off is explicit: transitions fire at the next multiple of ``q``
at or after their exact due time, so results are quantized to the scan tick
(same flavour of approximation as the heartbeat detector's
``check_interval``) and are *not* bit-identical to the default mode.  The
default mode stays the golden-pinned exact semantics; batch mode is the
throughput lane for large-n sweeps.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.failure_detectors.interface import FailureDetector
from repro.sim.engine import EventHandle, Simulator
from repro.sim.network import Network

#: An ordered (monitor, monitored) failure detector pair.
Pair = Tuple[int, int]

#: Calendar entry kinds (index into the scan dispatch table).
KIND_DETECT = 0
KIND_TRUST = 1
KIND_MISTAKE_BEGIN = 2
KIND_MISTAKE_END = 3


class CrashDetectionFabric:
    """Base fabric: crash detection, trust restoration, forced suspicions."""

    #: Detector class instantiated per process; subclasses may refine it.
    detector_class = FailureDetector

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        monitored: Optional[Iterable[int]] = None,
        scan_interval: Optional[float] = None,
    ) -> None:
        if scan_interval is not None and scan_interval <= 0:
            raise ValueError(f"scan_interval must be > 0, got {scan_interval}")
        self._sim = sim
        self._network = network
        pids = list(range(network.n)) if monitored is None else sorted(monitored)
        self._detectors: Dict[int, FailureDetector] = {
            pid: self.detector_class(pid, pids) for pid in pids
        }
        # Pending crash detections / post-recovery trust restorations, so a
        # recovery (resp. a re-crash) can cancel them (exact mode only).
        self._pending_detect: Dict[Pair, EventHandle] = {}
        self._pending_trust: Dict[Pair, EventHandle] = {}
        self._crashed: set = set()
        self._started = False
        # Batched-scan calendar (``scan_interval is not None``): a heap of
        # ``(due, seq, kind, monitor, monitored, gen)`` tuples drained by one
        # armed simulator event.  ``gen`` snapshots the pair's generation
        # counter; bumping the counter invalidates every outstanding entry of
        # that pair/kind family without touching the heap.
        self._scan_interval = scan_interval
        self._calendar: List[tuple] = []
        self._cal_seq = 0
        self._armed_time: Optional[float] = None
        self._armed_handle: Optional[EventHandle] = None
        # KIND_MISTAKE_BEGIN and KIND_MISTAKE_END share one generation map:
        # legacy ``_cancel_mistakes`` cancels both transition kinds at once.
        mistake_gen: Dict[Pair, int] = {}
        self._cal_gens = ({}, {}, mistake_gen, mistake_gen)
        self._scan_dispatch = (
            self._scan_detect,
            self._scan_trust,
            self._scan_mistake_begins,
            self._scan_mistake_ends,
        )
        #: Pairs with a live trust-restoration entry on the calendar (batch
        #: mode's counterpart of ``pair in self._pending_trust``).
        self._trust_armed: Set[Pair] = set()
        #: (monitor, monitored) pairs whose ``monitored -> monitor`` link is
        #: currently blocked by a partition, plus their pending transitions.
        #: Partition changes are rare (a handful per scenario), so these stay
        #: direct simulator events even in batched-scan mode -- the same
        #: convention as the forced-suspicion windows.
        self._partition_blocked: Set[Pair] = set()
        self._pending_part_detect: Dict[Pair, EventHandle] = {}
        self._pending_part_trust: Dict[Pair, EventHandle] = {}
        network.add_crash_listener(self._on_crash)
        network.add_recovery_listener(self._on_recovery)
        network.add_partition_listener(self._on_partition)

    # ------------------------------------------------------------------ access

    @property
    def scan_interval(self) -> Optional[float]:
        """The batched-scan tick, or ``None`` in exact per-pair-timer mode."""
        return self._scan_interval

    def attach(self, process) -> FailureDetector:
        """The detector of ``process`` (fabric protocol; detectors pre-exist)."""
        return self._detectors[process.pid]

    def detector(self, pid: int) -> FailureDetector:
        """The failure detector local to process ``pid``."""
        return self._detectors[pid]

    def detectors(self) -> Dict[int, FailureDetector]:
        """All detectors, keyed by owner process id."""
        return dict(self._detectors)

    # ------------------------------------------------------------------ hooks

    def _detection_time(self, monitor: int, monitored: int) -> float:
        """The detection time ``T_D`` of the ordered pair (default: 0)."""
        return 0.0

    def _cancel_mistakes(self, monitor: int, monitored: int) -> None:
        """Cancel pending random-mistake events of the pair (mistake models)."""

    def _resume_mistakes(self, monitor: int, monitored: int) -> None:
        """Resume random-mistake generation for the pair after a recovery."""

    def _scan_mistake_begins(self, monitor: int, monitored: int) -> None:
        """Calendar handler for mistake onsets (mistake models override)."""

    def _scan_mistake_ends(self, monitor: int, monitored: int) -> None:
        """Calendar handler for mistake corrections (mistake models override)."""

    # ------------------------------------------------------------------ calendar

    def _calendar_push(self, kind: int, delay: float, monitor: int, monitored: int) -> None:
        """Enter a pair transition on the batch calendar, ``delay`` from now."""
        due = self._sim.now + delay
        gen = self._cal_gens[kind].get((monitor, monitored), 0)
        heapq.heappush(self._calendar, (due, self._cal_seq, kind, monitor, monitored, gen))
        self._cal_seq += 1
        # Fast path: a scan armed at or before ``due`` already covers this
        # entry (its tick is <= quantize(due)), so skip the quantization.
        armed = self._armed_time
        if armed is None or armed > due:
            self._arm(due)

    def _calendar_cancel(self, kind: int, monitor: int, monitored: int) -> None:
        """Invalidate every outstanding calendar entry of the pair's kind."""
        gens = self._cal_gens[kind]
        pair = (monitor, monitored)
        gens[pair] = gens.get(pair, 0) + 1

    def _quantize(self, time: float) -> float:
        """The first scan tick at or after ``time`` (``ceil`` to the grid)."""
        interval = self._scan_interval
        return math.ceil(time / interval) * interval

    def _arm(self, due: float) -> None:
        """Make sure the scan event fires no later than ``due``'s tick."""
        tick = self._quantize(due)
        if self._armed_time is not None and self._armed_time <= tick:
            return
        if self._armed_handle is not None:
            self._armed_handle.cancel()
        self._armed_time = tick
        self._armed_handle = self._sim.schedule_at(tick, self._scan)

    def _scan(self) -> None:
        """Drain every calendar transition due by now, in (time, seq) order."""
        self._armed_time = None
        self._armed_handle = None
        calendar = self._calendar
        gens = self._cal_gens
        dispatch = self._scan_dispatch
        pop = heapq.heappop
        now = self._sim.now
        while calendar and calendar[0][0] <= now:
            due, _seq, kind, monitor, monitored, gen = pop(calendar)
            if gens[kind].get((monitor, monitored), 0) != gen:
                continue
            dispatch[kind](monitor, monitored)
        if calendar:
            self._arm(calendar[0][0])

    def _trust_pending(self, monitor: int, monitored: int) -> bool:
        """Whether the pair has a pending post-recovery trust restoration."""
        if (monitor, monitored) in self._pending_part_trust:
            return True
        if self._scan_interval is not None:
            return (monitor, monitored) in self._trust_armed
        return (monitor, monitored) in self._pending_trust

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Lifecycle hook called once when the system starts (idempotent)."""
        self._started = True

    def suspect_permanently(self, monitored: int, delay: float = 0.0) -> None:
        """Make every monitor suspect ``monitored`` permanently after ``delay``.

        Used by the crash-steady scenario where crashes happened long before
        the measured window: every detector suspects the crashed processes
        from the very start of the run.
        """
        self._crashed.add(monitored)
        for monitor, detector in self._detectors.items():
            if monitor == monitored:
                continue
            self._cancel_mistakes(monitor, monitored)
            if delay == 0.0:
                detector._set_suspected(monitored, True)
            else:
                self._sim.schedule(delay, detector._set_suspected, monitored, True)

    def suspect_during(
        self,
        target: int,
        start: float,
        duration: float,
        monitors: Optional[Iterable[int]] = None,
    ) -> None:
        """Force a wrong suspicion of ``target`` during ``[start, start + duration]``.

        Every monitor in ``monitors`` (default: all) suspects ``target`` at
        absolute time ``start`` and trusts it again ``duration`` later --
        the deterministic counterpart of the random QoS mistakes, used by
        declarative fault schedules.  Crashed endpoints are skipped at fire
        time, and the suspicion is not lifted if ``target`` really crashed
        in the meantime.  Forced windows are rare (a handful per scenario),
        so they stay direct simulator events even in batched-scan mode.
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        pids = self._detectors.keys() if monitors is None else monitors
        for monitor in pids:
            if monitor == target:
                continue
            self._sim.schedule_at(start, self._forced_begins, monitor, target, duration)

    def _forced_begins(self, monitor: int, target: int, duration: float) -> None:
        if target in self._crashed or monitor in self._crashed:
            return
        detector = self._detectors[monitor]
        if detector.is_suspected(target):
            return
        detector._set_suspected(target, True)
        if duration <= 0:
            detector._set_suspected(target, False)
        else:
            self._sim.schedule(duration, self._forced_ends, monitor, target)

    def _forced_ends(self, monitor: int, monitored: int) -> None:
        if monitored in self._crashed:
            return
        self._detectors[monitor]._set_suspected(monitored, False)

    # ------------------------------------------------------------------ partitions

    def _on_partition(self, blocked: Optional[Set[tuple]], _time: float) -> None:
        """React to a reachability change: a cut monitoring link looks like a crash.

        Monitor ``m`` learns about ``p`` through the ``p -> m`` link; while
        that link is blocked the pair behaves exactly like a crash of ``p``
        from ``m``'s point of view.  ``blocked`` is the network's full set of
        blocked directed ``(src, dst)`` links (or ``None``/empty after a
        heal); the fabric diffs it against the previous set so asymmetric
        splits and partial heals work pair by pair.
        """
        detectors = self._detectors
        now_blocked: Set[Pair] = set()
        if blocked:
            for src, dst in blocked:
                if src != dst and src in detectors and dst in detectors:
                    now_blocked.add((dst, src))  # monitor dst loses news of src
        for monitor, monitored in now_blocked - self._partition_blocked:
            # A stray random-mistake correction must not clear the upcoming
            # partition suspicion, so the pair's mistakes stop (crash parity).
            self._cancel_mistakes(monitor, monitored)
            self._cancel_part_trust(monitor, monitored)
            if monitored in self._crashed:
                continue  # the crash path already drives this pair
            self._pending_part_detect[(monitor, monitored)] = self._sim.schedule(
                self._detection_time(monitor, monitored),
                self._partition_detect,
                monitor,
                monitored,
            )
        for monitor, monitored in self._partition_blocked - now_blocked:
            # A cut shorter than the detection time goes unnoticed.
            pending = self._pending_part_detect.pop((monitor, monitored), None)
            if pending is not None:
                pending.cancel()
            if monitored not in self._crashed and detectors[monitor].is_suspected(monitored):
                self._pending_part_trust[(monitor, monitored)] = self._sim.schedule(
                    self._detection_time(monitor, monitored),
                    self._partition_trust,
                    monitor,
                    monitored,
                )
            # Mistake generation resumes once the link is back (the pending
            # partition trust, entered first, keeps ``_resume_mistakes`` from
            # lifting the suspicion early).
            if self._started and monitored not in self._crashed and monitor not in self._crashed:
                self._resume_mistakes(monitor, monitored)
        self._partition_blocked = now_blocked

    def _partition_detect(self, monitor: int, monitored: int) -> None:
        self._pending_part_detect.pop((monitor, monitored), None)
        if monitored in self._crashed:
            return
        self._detectors[monitor]._set_suspected(monitored, True)

    def _partition_trust(self, monitor: int, monitored: int) -> None:
        self._pending_part_trust.pop((monitor, monitored), None)
        if monitored in self._crashed or (monitor, monitored) in self._partition_blocked:
            return
        self._detectors[monitor]._set_suspected(monitored, False)

    def _cancel_part_trust(self, monitor: int, monitored: int) -> None:
        handle = self._pending_part_trust.pop((monitor, monitored), None)
        if handle is not None:
            handle.cancel()

    # ------------------------------------------------------------------ crashes

    def _on_crash(self, pid: int, _time: float) -> None:
        if pid in self._crashed:
            return
        self._crashed.add(pid)
        batch = self._scan_interval is not None
        for monitor in self._detectors:
            if monitor == pid:
                continue
            self._cancel_mistakes(monitor, pid)
            self._cancel_trust(monitor, pid)
            detection_time = self._detection_time(monitor, pid)
            if batch:
                self._calendar_push(KIND_DETECT, detection_time, monitor, pid)
            else:
                self._pending_detect[(monitor, pid)] = self._sim.schedule(
                    detection_time, self._detect_crash, monitor, pid
                )

    def _detect_crash(self, monitor: int, crashed: int) -> None:
        self._pending_detect.pop((monitor, crashed), None)
        self._detectors[monitor]._set_suspected(crashed, True)

    def _scan_detect(self, monitor: int, crashed: int) -> None:
        # Recovery bumps the detect generation, so reaching here means the
        # crash is still in effect.
        self._detectors[monitor]._set_suspected(crashed, True)

    # ------------------------------------------------------------------ recoveries

    def _on_recovery(self, pid: int, _time: float) -> None:
        if pid not in self._crashed:
            return
        self._crashed.discard(pid)
        batch = self._scan_interval is not None
        for monitor in self._detectors:
            if monitor == pid:
                continue
            # A crash shorter than the detection time goes unnoticed.
            if batch:
                self._calendar_cancel(KIND_DETECT, monitor, pid)
            else:
                pending = self._pending_detect.pop((monitor, pid), None)
                if pending is not None:
                    pending.cancel()
            if (monitor, pid) in self._partition_blocked:
                # The recovered process is still cut off from this monitor:
                # the heal (not the recovery) owns the eventual trust
                # restoration.  If the crash masked the partition's own
                # detection (it began while the process was down), arm it now.
                if (monitor, pid) not in self._pending_part_detect and not self._detectors[
                    monitor
                ].is_suspected(pid):
                    self._pending_part_detect[(monitor, pid)] = self._sim.schedule(
                        self._detection_time(monitor, pid),
                        self._partition_detect,
                        monitor,
                        pid,
                    )
            elif self._detectors[monitor].is_suspected(pid):
                detection_time = self._detection_time(monitor, pid)
                if batch:
                    self._trust_armed.add((monitor, pid))
                    self._calendar_push(KIND_TRUST, detection_time, monitor, pid)
                else:
                    self._pending_trust[(monitor, pid)] = self._sim.schedule(
                        detection_time, self._restore_trust, monitor, pid
                    )
            # Wrong-suspicion generation resumes in both directions (unless a
            # partition still blocks that direction's monitoring link).
            if self._started:
                if (monitor, pid) not in self._partition_blocked:
                    self._resume_mistakes(monitor, pid)
                if (pid, monitor) not in self._partition_blocked:
                    self._resume_mistakes(pid, monitor)

    def _restore_trust(self, monitor: int, recovered: int) -> None:
        self._pending_trust.pop((monitor, recovered), None)
        if recovered in self._crashed:
            return
        self._detectors[monitor]._set_suspected(recovered, False)

    def _scan_trust(self, monitor: int, recovered: int) -> None:
        self._trust_armed.discard((monitor, recovered))
        if recovered in self._crashed:
            return
        self._detectors[monitor]._set_suspected(recovered, False)

    # ------------------------------------------------------------------ helpers

    def _cancel_trust(self, monitor: int, monitored: int) -> None:
        if self._scan_interval is not None:
            self._calendar_cancel(KIND_TRUST, monitor, monitored)
            self._trust_armed.discard((monitor, monitored))
            return
        handle = self._pending_trust.pop((monitor, monitored), None)
        if handle is not None:
            handle.cancel()
