"""JSON-serialisable records of scenario results.

The runner always normalises results through these records -- whether a point
was simulated in-process, in a worker process or read back from the JSONL
cache -- so every execution mode hands the aggregation layer exactly the same
bytes.  Floats round-trip losslessly through ``json`` (shortest-repr), which
is what makes warm-cache reruns bit-identical to cold runs.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.scenarios.results import ScenarioResult, TransientResult


def result_to_record(result: Any) -> Dict[str, Any]:
    """Serialise a ``ScenarioResult`` or ``TransientResult`` to a JSON dict."""
    if isinstance(result, ScenarioResult):
        record = {
            "type": "scenario",
            "scenario": result.scenario,
            "algorithm": result.algorithm,
            "n": result.n,
            "throughput": result.throughput,
            "latencies": list(result.latencies),
            "undelivered": result.undelivered,
            "measured": result.measured,
            "duration": result.duration,
            "events": result.events,
            "params": _jsonable_params(result.params),
        }
    elif isinstance(result, TransientResult):
        record = {
            "type": "transient",
            "algorithm": result.algorithm,
            "n": result.n,
            "throughput": result.throughput,
            "detection_time": result.detection_time,
            "crashed_process": result.crashed_process,
            "sender": result.sender,
            "latencies": list(result.latencies),
            "failed_runs": result.failed_runs,
            "params": _jsonable_params(result.params),
        }
    else:
        raise TypeError(f"cannot serialise {type(result).__name__} as a campaign record")
    # Uninstrumented runs carry no "metrics" key at all, so records (and the
    # JSONL cache lines) of the common case are byte-identical to pre-v5 ones.
    if result.metrics is not None:
        record["metrics"] = result.metrics
    return record


def record_to_result(record: Dict[str, Any]):
    """Rebuild the result object a record was serialised from."""
    data = dict(record)
    kind = data.pop("type", None)
    if kind == "scenario":
        return ScenarioResult(**data)
    if kind == "transient":
        return TransientResult(**data)
    raise ValueError(f"unknown campaign record type {kind!r}")


def _jsonable_params(params: Dict[str, Any]) -> Dict[str, Any]:
    """Copy a params dict, turning tuples into lists so JSON round-trips."""
    return {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in params.items()
    }
