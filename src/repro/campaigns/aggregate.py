"""Fold campaign records back into the experiment result containers.

The figure modules declare *what* to simulate (a :class:`CampaignSpec`); this
module turns the runner's records back into the ``Series`` /
``FigureResult`` containers the report layer renders.  Multi-seed replicas of
an x position are pooled (latencies concatenated in seed order) before
summarising, which tightens the confidence intervals without any figure-level
code.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.campaigns.runner import CampaignRun, CampaignRunner
from repro.campaigns.spec import CampaignSpec, SeriesSpec
from repro.experiments.helpers import point_from_scenario, point_from_transient
from repro.experiments.series import FigureResult, Series
from repro.scenarios.results import ScenarioResult, TransientResult


def merge_scenario_results(results: Sequence[ScenarioResult]) -> ScenarioResult:
    """Pool steady-state replicas of one operating point into one result."""
    first = results[0]
    if len(results) == 1:
        return first
    merged = ScenarioResult(
        scenario=first.scenario,
        algorithm=first.algorithm,
        n=first.n,
        throughput=first.throughput,
        params=dict(first.params, replicas=len(results)),
    )
    for result in results:
        merged.latencies.extend(result.latencies)
        merged.undelivered += result.undelivered
        merged.measured += result.measured
        merged.duration = max(merged.duration, result.duration)
        merged.events += result.events
    return merged


def merge_transient_results(results: Sequence[TransientResult]) -> TransientResult:
    """Pool crash-transient replicas of one operating point into one result."""
    first = results[0]
    if len(results) == 1:
        return first
    merged = TransientResult(
        algorithm=first.algorithm,
        n=first.n,
        throughput=first.throughput,
        detection_time=first.detection_time,
        crashed_process=first.crashed_process,
        sender=first.sender,
        params=dict(first.params, replicas=len(results)),
    )
    for result in results:
        merged.latencies.extend(result.latencies)
        merged.failed_runs += result.failed_runs
    return merged


def series_from_spec(spec: SeriesSpec, run: CampaignRun) -> Series:
    """Build the plotted curve of one declared series from a campaign run."""
    series = Series(label=spec.label, params=dict(spec.params))
    for series_point in spec.points:
        results = [run.result(point) for point in series_point.points]
        if isinstance(results[0], TransientResult):
            merged = merge_transient_results(results)
            series.add(point_from_transient(series_point.x, merged))
        else:
            series.add(point_from_scenario(series_point.x, merge_scenario_results(results)))
    return series


def figure_from_campaign(
    campaign: CampaignSpec,
    run: CampaignRun,
    *,
    figure: str,
    title: str,
    x_label: str,
    y_label: str,
) -> FigureResult:
    """Assemble a ``FigureResult`` from a campaign and its run."""
    result = FigureResult(figure=figure, title=title, x_label=x_label, y_label=y_label)
    for spec in campaign.series:
        result.add_series(series_from_spec(spec, run))
    return result


def run_campaign_figure(
    campaign: CampaignSpec,
    runner: Optional[CampaignRunner],
    *,
    figure: str,
    title: str,
    x_label: str,
    y_label: str,
    note: Optional[str] = None,
) -> FigureResult:
    """Execute ``campaign`` and render it as a figure (the figure-module protocol).

    The single place where the figure modules' ``run()`` functions meet the
    runner: default serial execution when no runner is passed, then
    aggregation and the figure's expected-shape note.
    """
    runner = runner or CampaignRunner()
    result = figure_from_campaign(
        campaign,
        runner.run(campaign),
        figure=figure,
        title=title,
        x_label=x_label,
        y_label=y_label,
    )
    if note:
        result.notes.append(note)
    return result
