"""Fold campaign records back into the experiment result containers.

The figure modules declare *what* to simulate (a :class:`CampaignSpec`); this
module turns the runner's records back into the ``Series`` /
``FigureResult`` containers the report layer renders.  Multi-seed replicas of
an x position are pooled (latencies concatenated in seed order) before
summarising, which tightens the confidence intervals without any figure-level
code.

It also hosts the *cross-campaign* query path: :func:`load_store_table`
loads a whole result store as columns -- through the columnar mirror when it
is fresh, rebuilding it from the JSONL otherwise -- and
:func:`cross_campaign_summary` aggregates grouped statistics across any
number of stores without materialising one dict per record.
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaigns import columnar
from repro.campaigns.columnar import ColumnarTable
from repro.campaigns.runner import CampaignRun, CampaignRunner
from repro.campaigns.spec import CampaignSpec, SeriesSpec
from repro.campaigns.store import ResultStore
from repro.experiments.helpers import point_from_scenario, point_from_transient
from repro.experiments.series import FigureResult, Series
from repro.scenarios.results import ScenarioResult, TransientResult


def merge_scenario_results(results: Sequence[ScenarioResult]) -> ScenarioResult:
    """Pool steady-state replicas of one operating point into one result."""
    first = results[0]
    if len(results) == 1:
        return first
    merged = ScenarioResult(
        scenario=first.scenario,
        algorithm=first.algorithm,
        n=first.n,
        throughput=first.throughput,
        params=dict(first.params, replicas=len(results)),
    )
    for result in results:
        merged.latencies.extend(result.latencies)
        merged.undelivered += result.undelivered
        merged.measured += result.measured
        merged.duration = max(merged.duration, result.duration)
        merged.events += result.events
    return merged


def merge_transient_results(results: Sequence[TransientResult]) -> TransientResult:
    """Pool crash-transient replicas of one operating point into one result."""
    first = results[0]
    if len(results) == 1:
        return first
    merged = TransientResult(
        algorithm=first.algorithm,
        n=first.n,
        throughput=first.throughput,
        detection_time=first.detection_time,
        crashed_process=first.crashed_process,
        sender=first.sender,
        params=dict(first.params, replicas=len(results)),
    )
    for result in results:
        merged.latencies.extend(result.latencies)
        merged.failed_runs += result.failed_runs
    return merged


def series_from_spec(spec: SeriesSpec, run: CampaignRun) -> Series:
    """Build the plotted curve of one declared series from a campaign run."""
    series = Series(label=spec.label, params=dict(spec.params))
    for series_point in spec.points:
        results = [run.result(point) for point in series_point.points]
        if isinstance(results[0], TransientResult):
            merged = merge_transient_results(results)
            series.add(point_from_transient(series_point.x, merged))
        else:
            series.add(point_from_scenario(series_point.x, merge_scenario_results(results)))
    return series


def figure_from_campaign(
    campaign: CampaignSpec,
    run: CampaignRun,
    *,
    figure: str,
    title: str,
    x_label: str,
    y_label: str,
) -> FigureResult:
    """Assemble a ``FigureResult`` from a campaign and its run."""
    result = FigureResult(figure=figure, title=title, x_label=x_label, y_label=y_label)
    for spec in campaign.series:
        result.add_series(series_from_spec(spec, run))
    return result


def run_campaign_figure(
    campaign: CampaignSpec,
    runner: Optional[CampaignRunner],
    *,
    figure: str,
    title: str,
    x_label: str,
    y_label: str,
    note: Optional[str] = None,
) -> FigureResult:
    """Execute ``campaign`` and render it as a figure (the figure-module protocol).

    The single place where the figure modules' ``run()`` functions meet the
    runner: default serial execution when no runner is passed, then
    aggregation and the figure's expected-shape note.
    """
    runner = runner or CampaignRunner()
    result = figure_from_campaign(
        campaign,
        runner.run(campaign),
        figure=figure,
        title=title,
        x_label=x_label,
        y_label=y_label,
    )
    if note:
        result.notes.append(note)
    return result


# ---------------------------------------------------------------- cross-campaign


def _empty_table() -> ColumnarTable:
    return ColumnarTable(
        count=0,
        keys=[],
        strings={name: (array("i"), []) for name in columnar.STRING_COLUMNS},
        numbers={
            name: array("q") for name in columnar.INT_COLUMNS
        } | {name: array("d") for name in columnar.FLOAT_COLUMNS},
        latency_offsets=array("Q", [0]),
        latency_values=array("d"),
    )


def load_store_table(directory: str, filename: str = "results.jsonl") -> ColumnarTable:
    """Load a result store as columns, via the mirror when it is fresh.

    The fast path reads the columnar mirror (Parquet with pyarrow, the
    packed-binary ``.rcol`` otherwise) in a handful of bulk ``frombytes``
    calls.  When the mirror is missing or older than the JSONL -- e.g. a
    store still being appended to by a live campaign -- the JSONL is parsed
    once and the mirror rewritten, so the *next* aggregation over the same
    store is columnar again.
    """
    jsonl_path = os.path.join(directory, filename)
    fresh = columnar.fresh_mirror_path(jsonl_path)
    if fresh is not None:
        try:
            return columnar.read_mirror(fresh)
        except (OSError, ValueError):
            pass  # torn/foreign mirror: fall through to the JSONL truth
    if not os.path.exists(jsonl_path):
        return _empty_table()
    store = ResultStore(directory, filename, mirror=False)
    try:
        mirror_path = store.sync_mirror()
        if mirror_path is None:
            return _empty_table()
        return columnar.read_mirror(mirror_path)
    finally:
        store.close()


def cross_campaign_summary(
    directories: Sequence[str],
    *,
    group_by: Sequence[str] = ("kind", "stack", "n", "throughput"),
    percentiles: Sequence[float] = (),
) -> List[Dict[str, Any]]:
    """Grouped statistics over every record of several result stores.

    Groups rows by the given columns (string or numeric mirror columns) and
    returns one dict per group with pooled counters, the pooled mean latency
    and -- when ``percentiles`` is non-empty -- pooled latency percentiles.
    Operates column-at-a-time over the mirrors, which is what makes
    10^5-record cross-campaign queries interactive.
    """
    groups: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    for directory in directories:
        table = load_store_table(directory)
        if table.count == 0:
            continue
        columns: List[Sequence[Any]] = []
        for name in group_by:
            if name in table.strings:
                columns.append(table.string_column(name))
            elif name in table.numbers:
                columns.append(table.numbers[name])
            else:
                raise KeyError(f"unknown mirror column {name!r}")
        measured = table.numbers["measured"]
        undelivered = table.numbers["undelivered"]
        failed_runs = table.numbers["failed_runs"]
        latency_sum = table.numbers["latency_sum"]
        offsets = table.latency_offsets
        for index in range(table.count):
            group_key = tuple(column[index] for column in columns)
            group = groups.get(group_key)
            if group is None:
                group = groups[group_key] = {
                    **{name: value for name, value in zip(group_by, group_key)},
                    "records": 0,
                    "latency_count": 0,
                    "latency_sum": 0.0,
                    "measured": 0,
                    "undelivered": 0,
                    "failed_runs": 0,
                }
                if percentiles:
                    group["_latencies"] = array("d")
            group["records"] += 1
            group["latency_count"] += offsets[index + 1] - offsets[index]
            group["latency_sum"] += latency_sum[index]
            group["measured"] += measured[index]
            group["undelivered"] += undelivered[index]
            group["failed_runs"] += failed_runs[index]
            if percentiles:
                group["_latencies"].extend(table.latencies(index))

    summaries: List[Dict[str, Any]] = []
    for group_key in sorted(groups, key=lambda value: tuple(map(str, value))):
        group = groups[group_key]
        count = group["latency_count"]
        group["mean_latency"] = group["latency_sum"] / count if count else float("nan")
        pooled = group.pop("_latencies", None)
        if percentiles and pooled is not None:
            ordered = sorted(pooled)
            for quantile in percentiles:
                label = f"p{quantile * 100:g}".replace(".", "_")
                if not ordered:
                    group[label] = float("nan")
                else:
                    position = min(
                        len(ordered) - 1, max(0, round(quantile * (len(ordered) - 1)))
                    )
                    group[label] = ordered[position]
        summaries.append(group)
    return summaries
