"""Command-line entry point: run ad-hoc campaign grids.

Examples::

    python -m repro.campaigns --scenario normal-steady --n 3 7 \\
        --throughputs 10 100 300 --jobs 4 --cache-dir .campaign-cache

    python -m repro.campaigns --scenario suspicion-steady --tmr 100 \\
        --throughputs 10 --seeds 1 2 3 --messages 200

    python -m repro.campaigns --scenario churn --churn-rate 2 --downtime 150 \\
        --detection-time 10 --throughputs 10 100 --cache-dir .campaign-cache

    python -m repro.campaigns --scenario churn-steady --stack fd --fd heartbeat \\
        --detection-time 10 --cache-dir .campaign-cache

Twelve scenario kinds are available: the paper's four (``normal-steady``,
``crash-steady``, ``suspicion-steady``, ``crash-transient``), the
beyond-paper fault-schedule scenarios (``correlated-crash``,
``churn-steady``, ``asymmetric-qos``, ``view-majority-loss``), the
replicated-KV load test (``service-load``) and the network fault-injection
scenarios (``partition-transient``, ``wan-steady``, ``gray-degradation``);
``churn`` / ``correlated`` / ``asymmetric`` / ``normal`` /
``majority-loss`` / ``service`` / ``partition`` / ``wan`` / ``gray`` are
accepted shorthands.  ``view-majority-loss`` drives the GM stacks into the
documented view-majority-loss deadlock and measures time-to-reformation
under ``gm-reform`` (``--reformation-timeout`` sweeps the trigger window)::

    python -m repro.campaigns --scenario view-majority-loss \\
        --stack gm gm-reform --reformation-timeout 500

``--hb-period`` / ``--hb-timeout`` set the heartbeat detector's parameters
as first-class sweep dimensions whenever ``--fd heartbeat`` is selected.

``service-load`` drives the replicated KV store through a client
population; ``--throughputs`` is the offered-load axis (open loop) unless
``--clients`` selects a closed loop, and ``--max-batch`` / ``--consistency``
sweep request batching and the read path::

    python -m repro.campaigns --scenario service-load --stack fd gm \\
        --throughputs 200 1000 4000 --max-batch 8

The fault-injection kinds reuse ``--crash-time`` as the inject instant
(0 = mid-window) and add their own axes: ``--fault-duration`` (partition /
degradation window length), ``--wan-profile`` (a registered WAN topology,
``wan-3dc`` / ``wan-5dc``), ``--degrade-factor`` and ``--link-loss`` (gray
failures; ``--crashed-process`` selects the degraded pid)::

    python -m repro.campaigns --scenario partition --stack gm gm-reform \\
        --fault-duration 2000 --detection-time 10

    python -m repro.campaigns --scenario wan --wan-profile wan-5dc --n 5

    python -m repro.campaigns --scenario gray --degrade-factor 8 \\
        --link-loss 0.05 --detection-time 10

``--max-batch`` / ``--max-delay`` (request batching) and
``--fd-scan-interval`` (the batched failure-detector scan) are
config-level dimensions available under *every* scenario kind.

``--stack`` sweeps protocol stacks from the registry (``fd``, ``gm``,
``gm-nonuniform``, or slash-qualified variants like ``fd/heartbeat``) and
``--fd`` sweeps failure detector kinds (``qos``, ``heartbeat``,
``perfect``) across every stack -- the axis QoS-FD vs heartbeat-FD
comparisons sweep.  ``--algorithms`` is a deprecated alias of ``--stack``.

Every completed point is cached under ``--cache-dir`` (when given), so
re-running the same grid -- or a larger grid that contains it -- only
simulates the missing points.  ``--durability batch`` trades the default
per-point fsync for buffered flushes (throughput on many-small-point
grids); ``--force`` / ``--force-kind KIND`` re-execute matching points past
the cache and rewrite their records (other stored results are untouched).

``--queue-dir DIR`` distributes the grid through a shared-directory work
queue: the submitting process enqueues the missing points and works them
alongside any number of extra workers started on other machines (or other
terminals) with::

    python -m repro.campaigns --queue-worker --queue-dir DIR

``--catalog DIR`` records the finished campaign in a catalog of named
stored campaigns (``<DIR>/<name>/summary.json``: spec hash, schema version,
git revision, wall clock).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.campaigns.aggregate import merge_scenario_results, merge_transient_results
from repro.campaigns.catalog import CampaignCatalog
from repro.campaigns.queue import QueueWorker, WorkQueue
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import SCENARIO_KINDS, grid
from repro.campaigns.store import DURABILITY_MODES, ResultStore
from repro.scenarios.results import TransientResult

#: Shorthands accepted by ``--scenario`` in addition to the canonical kinds.
SCENARIO_ALIASES = {
    "normal": "normal-steady",
    "crash": "crash-steady",
    "suspicion": "suspicion-steady",
    "transient": "crash-transient",
    "correlated": "correlated-crash",
    "churn": "churn-steady",
    "asymmetric": "asymmetric-qos",
    "majority-loss": "view-majority-loss",
    "service": "service-load",
    "partition": "partition-transient",
    "wan": "wan-steady",
    "gray": "gray-degradation",
}


def main(argv: List[str] = None) -> int:
    """Build the requested grid, run it and print one line per point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario",
        default="normal-steady",
        choices=sorted(SCENARIO_KINDS) + sorted(SCENARIO_ALIASES),
        help="scenario kind of every point (default: normal-steady)",
    )
    parser.add_argument(
        "--stack",
        "--stacks",
        dest="stacks",
        nargs="+",
        default=None,
        help="protocol stacks to sweep (default: fd gm); accepts fd/heartbeat-style variants",
    )
    parser.add_argument(
        "--fd",
        dest="fd_kinds",
        nargs="+",
        default=None,
        help=(
            "failure detector kinds to sweep across every stack "
            "(default: each stack's default kind, qos for the built-ins)"
        ),
    )
    parser.add_argument(
        "--algorithms", nargs="+", default=None, help="deprecated alias of --stack"
    )
    parser.add_argument(
        "--n", nargs="+", type=int, default=[3], help="system sizes to sweep"
    )
    parser.add_argument(
        "--throughputs",
        nargs="+",
        type=float,
        default=[10.0, 100.0],
        help="throughput axis [1/s]",
    )
    parser.add_argument(
        "--seeds", nargs="+", type=int, default=[1], help="seed replicas per point"
    )
    parser.add_argument(
        "--messages", type=int, default=100, help="measured messages per steady point"
    )
    parser.add_argument(
        "--runs", type=int, default=8, help="independent runs per transient point"
    )
    parser.add_argument(
        "--crashes", type=int, default=1, help="crash count (crash-steady)"
    )
    parser.add_argument(
        "--tmr", type=float, default=1000.0, help="mean T_MR in ms (suspicion-steady)"
    )
    parser.add_argument(
        "--tm", type=float, default=0.0, help="mean T_M in ms (suspicion-steady)"
    )
    parser.add_argument(
        "--detection-time", type=float, default=0.0, help="T_D in ms (crash-transient)"
    )
    parser.add_argument(
        "--crashed-process",
        type=int,
        default=0,
        help="crashed pid (crash-transient); degraded pid (gray-degradation)",
    )
    parser.add_argument(
        "--crash-time",
        type=float,
        default=0.0,
        help=(
            "fault inject instant in ms, 0 = mid-window (correlated-crash, "
            "partition-transient, gray-degradation)"
        ),
    )
    parser.add_argument(
        "--churn-rate",
        type=float,
        default=1.0,
        help="crash arrivals per second (churn-steady)",
    )
    parser.add_argument(
        "--downtime",
        type=float,
        default=200.0,
        help="mean downtime per crash in ms (churn-steady)",
    )
    parser.add_argument(
        "--flaky-monitor",
        type=int,
        default=1,
        help="observer of the flaky pair (asymmetric-qos)",
    )
    parser.add_argument(
        "--flaky-target",
        type=int,
        default=0,
        help="observed process of the flaky pair (asymmetric-qos)",
    )
    parser.add_argument(
        "--reformation-timeout",
        type=float,
        default=0.0,
        help="reformation trigger window in ms, 0 = config default (view-majority-loss)",
    )
    parser.add_argument(
        "--hb-period",
        type=float,
        default=0.0,
        help="heartbeat period in ms, 0 = default (fd kind heartbeat)",
    )
    parser.add_argument(
        "--hb-timeout",
        type=float,
        default=0.0,
        help="heartbeat timeout in ms, 0 = default (fd kind heartbeat)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=0,
        help="closed-loop client count, 0 = open loop (service-load)",
    )
    parser.add_argument(
        "--think-time",
        type=float,
        default=0.0,
        help="mean client think time in ms (service-load, closed loop)",
    )
    parser.add_argument(
        "--consistency",
        choices=("ordered", "local"),
        default="ordered",
        help="read path: totally ordered or local stale reads (service-load)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=0,
        help="request batching: payloads per ordering step, 0 = unbatched (any scenario)",
    )
    parser.add_argument(
        "--max-delay",
        type=float,
        default=0.0,
        help="max batching delay in ms before a partial batch flushes (any scenario)",
    )
    parser.add_argument(
        "--fd-scan-interval",
        type=float,
        default=0.0,
        help="batched FD scan tick in ms, 0 = exact per-pair events (any scenario)",
    )
    parser.add_argument(
        "--fault-duration",
        type=float,
        default=0.0,
        help=(
            "fault window length in ms, 0 = scenario default "
            "(partition-transient, gray-degradation)"
        ),
    )
    parser.add_argument(
        "--wan-profile",
        default="wan-3dc",
        help="registered WAN topology name (wan-steady)",
    )
    parser.add_argument(
        "--degrade-factor",
        type=float,
        default=0.0,
        help="CPU slowdown multiplier, 0 = scenario default (gray-degradation)",
    )
    parser.add_argument(
        "--link-loss",
        type=float,
        default=0.0,
        help="frame loss probability on the degraded pid's links (gray-degradation)",
    )
    parser.add_argument("--name", default="adhoc", help="campaign name")
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument("--cache-dir", default=None, help="JSONL result cache directory")
    parser.add_argument(
        "--durability",
        choices=DURABILITY_MODES,
        default="fsync",
        help=(
            "cache write durability: fsync every point (default, resumable "
            "to the last point) or batch buffered flushes (throughput)"
        ),
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="re-execute every point past the cache, rewriting its record",
    )
    parser.add_argument(
        "--force-kind",
        dest="force_kinds",
        action="append",
        default=None,
        metavar="KIND",
        choices=sorted(SCENARIO_KINDS),
        help="re-execute cached points of this scenario kind only (repeatable)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=0,
        help="points per worker round-trip (0 = sized automatically)",
    )
    parser.add_argument(
        "--queue-dir",
        default=None,
        metavar="DIR",
        help="distribute the grid through a shared-directory work queue",
    )
    parser.add_argument(
        "--queue-worker",
        action="store_true",
        help="act as a fleet worker: drain --queue-dir and exit (no grid needed)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=300.0,
        help="seconds before a crashed worker's queue lease is reclaimed",
    )
    parser.add_argument(
        "--queue-timeout",
        type=float,
        default=0.0,
        help="give up waiting for outstanding queue results after this many seconds (0 = wait)",
    )
    parser.add_argument(
        "--catalog",
        default=None,
        metavar="DIR",
        help="record the finished campaign in this catalog directory",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="DIR",
        help="run instrumented and write one <key>.metrics.json per point to DIR",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help=(
            "run instrumented and write per-run JSONL + Chrome trace files "
            "to DIR (can be combined with --metrics-out)"
        ),
    )
    parser.add_argument("-o", "--output", default=None, help="write the report to a file")
    args = parser.parse_args(argv)

    if args.queue_worker:
        if not args.queue_dir:
            parser.error("--queue-worker needs --queue-dir")
        worker = QueueWorker(
            WorkQueue(args.queue_dir, lease_ttl=args.lease_ttl), trace_dir=args.trace
        )
        executed = worker.run()
        print(
            f"queue worker {worker.worker_id}: executed {executed} point(s) "
            f"from {args.queue_dir}"
        )
        return 0

    if args.stacks is not None and args.algorithms is not None:
        parser.error("--algorithms is a deprecated alias of --stack; pass only one")
    stacks = args.stacks if args.stacks is not None else args.algorithms

    campaign = grid(
        SCENARIO_ALIASES.get(args.scenario, args.scenario),
        name=args.name,
        stacks=stacks if stacks is not None else ("fd", "gm"),
        fd_kinds=args.fd_kinds if args.fd_kinds is not None else (None,),
        n_values=args.n,
        throughputs=args.throughputs,
        seeds=args.seeds,
        num_messages=args.messages,
        num_runs=args.runs,
        crashes=args.crashes,
        mistake_recurrence_time=args.tmr,
        mistake_duration=args.tm,
        detection_time=args.detection_time,
        crashed_process=args.crashed_process,
        crash_time=args.crash_time,
        churn_rate=args.churn_rate,
        mean_downtime=args.downtime,
        flaky_monitor=args.flaky_monitor,
        flaky_target=args.flaky_target,
        reformation_timeout=args.reformation_timeout,
        heartbeat_period=args.hb_period,
        heartbeat_timeout=args.hb_timeout,
        clients=args.clients,
        think_time=args.think_time,
        consistency=args.consistency,
        max_batch=args.max_batch,
        max_delay=args.max_delay,
        fd_scan_interval=args.fd_scan_interval,
        fault_duration=args.fault_duration,
        wan_profile=args.wan_profile,
        degrade_factor=args.degrade_factor,
        link_loss=args.link_loss,
    )

    store = (
        ResultStore(args.cache_dir, durability=args.durability)
        if args.cache_dir
        else None
    )
    runner = CampaignRunner(
        jobs=args.jobs,
        store=store,
        instrument=args.metrics_out is not None,
        trace_dir=args.trace,
        chunk_size=args.chunk_size,
        force=args.force,
        force_kinds=tuple(args.force_kinds or ()),
        queue=(
            WorkQueue(args.queue_dir, lease_ttl=args.lease_ttl)
            if args.queue_dir
            else None
        ),
        queue_timeout=args.queue_timeout or None,
    )
    started = time.time()
    try:
        run = runner.run(campaign)
    finally:
        runner.close()
    elapsed = time.time() - started

    if args.catalog:
        CampaignCatalog(args.catalog).record_run(
            campaign,
            run,
            wall_clock_s=elapsed,
            store_path=store.path if store is not None else None,
        )
    if store is not None:
        # Flushes buffered lines and refreshes the columnar mirror.
        store.close()

    total = run.executed + run.cache_hits
    lines: List[str] = [
        f"campaign {campaign.name!r}: {total} points "
        f"({run.executed} simulated, {run.cache_hits} from cache) in {elapsed:.1f} s"
    ]
    if args.metrics_out:
        from repro.obs.export import export_metrics_records

        written = export_metrics_records(run.records, args.metrics_out)
        lines.append(f"  wrote {written} metrics snapshots to {args.metrics_out}")
    if args.trace:
        lines.append(f"  trace files in {args.trace}")
    for series in campaign.series:
        lines.append(f"  series: {series.label}")
        for series_point in series.points:
            results = [run.result(point) for point in series_point.points]
            if isinstance(results[0], TransientResult):
                merged = merge_transient_results(results)
            else:
                merged = merge_scenario_results(results)
            lines.append(f"    {merged.describe()}")

    report = "\n".join(lines)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
