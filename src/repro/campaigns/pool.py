"""Persistent warm worker pool for campaign execution.

A ``ProcessPoolExecutor`` is expensive to spin up (process forks, module
imports on spawning platforms) relative to a quick campaign point, and the
original runner paid that cost on *every* ``run()`` call -- once per figure
in a multi-figure regeneration.  :class:`WarmPool` keeps one executor alive
for the runner's lifetime: the first parallel run warms it, every later run
reuses the hot workers.

The pool also centralises chunk sizing: many small points are batched into
one worker round-trip so the per-task IPC/pickle overhead amortises, while
grids of slow points keep chunks small enough that all workers stay busy.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")

#: Never batch more than this many points into one worker round-trip: the
#: results of a whole chunk are held in worker memory until it returns, and
#: larger chunks stop helping once per-task overhead is amortised.
MAX_CHUNK_POINTS = 32

#: Submit at most this many chunks per worker at a time.  Bounding the
#: in-flight window keeps a 10^5-point grid from serialising every spec
#: into executor queues up-front while still keeping every worker busy.
INFLIGHT_CHUNKS_PER_WORKER = 4


def chunk_size(pending: int, workers: int) -> int:
    """Points per worker round-trip for a grid of ``pending`` points.

    Aims for ~8 chunks per worker (so stragglers balance), capped at
    :data:`MAX_CHUNK_POINTS`, with a floor of one point per chunk.
    """
    if pending <= 0 or workers <= 0:
        return 1
    return max(1, min(MAX_CHUNK_POINTS, pending // (workers * 8)))


def split_chunks(items: Sequence[T], size: int) -> List[List[T]]:
    """Split ``items`` into consecutive chunks of ``size`` (last may be short)."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    return [list(items[start:start + size]) for start in range(0, len(items), size)]


class WarmPool:
    """A process pool that survives across campaign runs.

    Created lazily on first use and kept warm until :meth:`close`; the
    worker count is fixed at construction so the pool can be shared by
    every ``run()`` call of a runner (and by several campaigns of one CLI
    invocation).
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._executor: Optional[ProcessPoolExecutor] = None
        #: How many times the live executor has been handed out -- lets
        #: callers (and the benchmark) verify warm reuse.
        self.checkouts = 0

    @property
    def started(self) -> bool:
        return self._executor is not None

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, spinning it up on first use."""
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        self.checkouts += 1
        return self._executor

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
