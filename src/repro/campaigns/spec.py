"""Declarative campaign specifications.

A :class:`PointSpec` pins down *one* scenario run completely: the scenario
kind, the ``SystemConfig`` fields, the operating point (throughput, failure
detector QoS, crash pattern) and the seed.  Its :meth:`PointSpec.key` is a
stable content hash used to cache and deduplicate runs -- two points with the
same key simulate the same thing, even across figures and sessions.

A :class:`CampaignSpec` groups points into the series of a figure (or an
ad-hoc sweep) and is the unit the :class:`repro.campaigns.runner.CampaignRunner`
executes.
"""

from __future__ import annotations

import hashlib
import json
import math
import warnings
import zlib
from dataclasses import InitVar, dataclass, field, fields
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import __version__
from repro.failure_detectors.heartbeat import HeartbeatConfig
from repro.scenarios.faults import VML_SUSPECT_DURATION, VML_SUSPECT_START
from repro.sim.wan import wan_profile as wan_registry_lookup
from repro.stacks import registry as stack_registry
from repro.system import SystemConfig

#: Scenario kinds a point can run: the paper's four benchmark scenarios plus
#: the beyond-paper fault-schedule scenarios.
SCENARIO_KINDS = (
    "normal-steady",
    "crash-steady",
    "suspicion-steady",
    "crash-transient",
    "correlated-crash",
    "churn-steady",
    "asymmetric-qos",
    "view-majority-loss",
    "service-load",
    "partition-transient",
    "wan-steady",
    "gray-degradation",
)

#: Bump when the meaning of a point's fields changes, to invalidate caches.
#: v2: per-pair sender for crash-transient sweeps + the fault-schedule
#: scenario fields (crash_time, churn_rate, mean_downtime, flaky pair).
#: v3: the pluggable-stack redesign -- the ``algorithm`` dimension became
#: ``stack`` and the ``fd_kind`` dimension was added, so every point's
#: canonical dict (and therefore its key) changed.  Old v2 caches are
#: simply never hit again; they can be deleted, or kept alongside (the
#: JSONL store is append-only and version-prefixed keys never collide).
#: v4: the reformation layer -- ``view-majority-loss`` became a kind and
#: three sweep dimensions were added (``reformation_timeout`` and the
#: heartbeat detector's ``heartbeat_period`` / ``heartbeat_timeout``), so
#: every point's canonical dict changed again.  Migration is the same as
#: v2 -> v3: old v3 caches are never hit (version-prefixed keys cannot
#: collide); delete them or leave them in place and re-simulate.
#: v5: the instrumentation layer -- points gained the ``instrument`` flag
#: and instrumented records carry a ``metrics`` snapshot.  ``instrument``
#: enters the cache key on purpose: an instrumented and an uninstrumented
#: execution of the same operating point simulate identically (pinned by
#: the golden-neutrality tests) but produce different records, and a
#: metrics-bearing record must never be satisfied by a metrics-less cache
#: hit.  Migration as before: old v4 caches are simply never hit again.
#: v6: the service-load subsystem -- ``service-load`` became a kind and six
#: sweep dimensions were added (``clients`` / ``think_time`` /
#: ``consistency`` for the client population, ``max_batch`` / ``max_delay``
#: for request batching and ``fd_scan_interval`` for the batched detector
#: scan), so every point's canonical dict changed again.  Migration as
#: before: version-prefixed keys never collide, so old v5 caches are simply
#: never hit again; delete them or leave them in place and re-simulate.
#: v7: the network fault-injection layer -- three kinds were added
#: (``partition-transient`` / ``wan-steady`` / ``gray-degradation``) and
#: four sweep dimensions with them (``fault_duration`` for the partition /
#: degradation window, ``wan_profile`` naming a registered
#: :class:`repro.sim.wan.WanProfile`, ``degrade_factor`` and ``link_loss``
#: for gray failures); ``crash_time`` doubles as the fault inject instant
#: and ``crashed_process`` as the gray-degraded pid for the new kinds.
#: Every point's canonical dict changed again; migration as before: old v6
#: caches are simply never hit (version-prefixed keys cannot collide) --
#: delete them or leave them in place and re-simulate.
SCHEMA_VERSION = 7

INFINITY = float("inf")


def _json_number(value: Any) -> Any:
    """Normalise a value for the canonical point dict.

    Real numbers become floats (so ``2`` and ``2.0`` hash identically);
    infinities become the string ``"inf"`` to keep the JSON strict; bools
    and non-numbers pass through unchanged.  NaN is rejected -- it never
    describes a meaningful operating point.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return value
    number = float(value)
    if math.isnan(number):
        raise ValueError("NaN is not a valid point parameter")
    return number if math.isfinite(number) else "inf" if number > 0 else "-inf"


def crashed_processes(n: int, count: int) -> Tuple[int, ...]:
    """The ``count`` highest-numbered (non-coordinator) processes.

    The paper's crash-steady convention: the coordinator re-numbering
    optimisation makes the steady state independent of *which* processes
    crashed, so the figures crash the highest pids.
    """
    return tuple(range(n - count, n))


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a per-point seed from ``root_seed`` and a stream ``name``.

    Uses the same Knuth-multiplicative + CRC32 mixing as
    :meth:`repro.sim.rng.RandomStreams._derive`, so campaign seeds follow the
    repo-wide convention: deterministic, independent across names, and stable
    across processes and sessions.
    """
    digest = zlib.crc32(name.encode("utf-8"))
    return (int(root_seed) * 2_654_435_761 + digest) & 0xFFFFFFFFFFFF


def replicate_seeds(root_seed: int, replicas: int) -> Tuple[int, ...]:
    """Seeds of a multi-seed replication of one operating point.

    Replica 0 keeps ``root_seed`` unchanged so that a single-replica campaign
    reproduces the legacy serial loops bit for bit; further replicas use
    :func:`derive_seed` with the replica index as the stream name.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    return (int(root_seed),) + tuple(
        derive_seed(root_seed, f"replica/{index}") for index in range(1, replicas)
    )


@dataclass(frozen=True)
class PointSpec:
    """One scenario run: the atom of a campaign.

    Only the fields relevant to ``kind`` are consulted when the point is
    executed (``crashed`` for crash-steady, the QoS means for
    suspicion-steady, ``detection_time`` / ``crashed_process`` / ``num_runs``
    for crash-transient), but *all* fields enter the cache key, so a point's
    identity never depends on which figure declared it.

    ``stack`` and ``fd_kind`` select the protocol stack and failure detector
    variant from the registry (:mod:`repro.stacks`); a slash-qualified stack
    (``"fd/heartbeat"``) is normalised into the two fields so equivalent
    selections hash identically.  The keyword ``algorithm=`` is accepted as
    a deprecated alias of ``stack=`` (DeprecationWarning at construction).
    """

    kind: str
    stack: Optional[str] = None
    #: ``None`` selects the stack's default kind ("qos" for the built-ins).
    fd_kind: Optional[str] = None
    n: int = 3
    seed: int = 1
    throughput: float = 10.0
    #: Measured messages per steady-state run.
    num_messages: int = 100
    #: Independent executions per crash-transient point.
    num_runs: int = 8
    #: Pre-crashed process ids (crash-steady only).
    crashed: Tuple[int, ...] = ()
    #: Mean T_MR of the failure detectors, ms (suspicion-steady only).
    mistake_recurrence_time: float = INFINITY
    #: Mean T_M of the failure detectors, ms (suspicion-steady only).
    mistake_duration: float = 0.0
    #: Constant T_D of the failure detectors, ms (crash-transient,
    #: correlated-crash and churn-steady).
    detection_time: float = 0.0
    #: Which process crashes (crash-transient only).
    crashed_process: int = 0
    #: Tagged sender of the probe message (crash-transient only); ``None``
    #: keeps the driver default (the highest non-crashed pid).
    sender: Optional[int] = None
    #: When the correlated crash / blocking crash fires, ms (correlated-crash
    #: and view-majority-loss); 0 picks the scenario default (the middle of
    #: the expected arrival window / the canonical schedule's 300 ms).
    crash_time: float = 0.0
    #: Crash arrivals per second (churn-steady only).
    churn_rate: float = 0.0
    #: Mean exponential downtime per crash, ms (churn-steady only).
    mean_downtime: float = 0.0
    #: The flaky observer pair: ``flaky_monitor`` wrongly suspects
    #: ``flaky_target`` with the QoS means above (asymmetric-qos only).
    flaky_monitor: int = 1
    flaky_target: int = 0
    #: Reformation window of the ``gm-reform`` stack, ms; 0 keeps the
    #: ``SystemConfig`` default (reformation-capable stacks only).
    reformation_timeout: float = 0.0
    #: Heartbeat detector parameters, ms; 0 keeps the ``HeartbeatConfig``
    #: defaults (``fd_kind="heartbeat"`` only).
    heartbeat_period: float = 0.0
    heartbeat_timeout: float = 0.0
    #: Closed-loop client count (service-load only); 0 runs the open loop
    #: at ``throughput`` requests/s instead.
    clients: int = 0
    #: Mean exponential think time per closed-loop client, ms (service-load).
    think_time: float = 0.0
    #: Read-path consistency, ``"ordered"`` or ``"local"`` (service-load).
    consistency: str = "ordered"
    #: Request batching (any kind): 0 keeps the unbatched system, a positive
    #: value coalesces up to that many requests per ordering step.
    max_batch: int = 0
    #: Maximum batching delay, ms (``max_batch > 0`` only).
    max_delay: float = 0.0
    #: Batched failure-detector scan tick, ms; 0 keeps the exact per-pair
    #: event semantics (any kind; ignored by ``fd_kind="heartbeat"``).
    fd_scan_interval: float = 0.0
    #: Fault window length, ms (partition-transient and gray-degradation);
    #: 0 picks the scenario default.  ``crash_time`` doubles as the inject
    #: instant for these kinds (0 = the middle of the arrival window).
    fault_duration: float = 0.0
    #: Registered WAN profile name (wan-steady only; "" elsewhere).
    wan_profile: str = ""
    #: CPU service-time multiplier of the gray-degraded process
    #: (gray-degradation only; 0 picks the scenario default).  The victim
    #: pid is ``crashed_process``, reusing the crash-transient dimension.
    degrade_factor: float = 0.0
    #: Per-frame loss probability on the degraded process's outgoing links
    #: during the window (gray-degradation only).
    link_loss: float = 0.0
    #: Extra ``SystemConfig`` fields, e.g. ``(("lambda_cpu", 2.0),)``.
    config_overrides: Tuple[Tuple[str, Any], ...] = ()
    #: Run the point instrumented (:mod:`repro.obs`): the record gains a
    #: ``metrics`` snapshot.  ``CampaignRunner(instrument=True)`` flips this
    #: on every point of a campaign without the figures declaring it.
    instrument: bool = False
    #: Deprecated alias of ``stack`` (not a field: never enters the key).
    algorithm: InitVar[Optional[str]] = None

    def __post_init__(self, algorithm: Optional[str]) -> None:
        if algorithm is not None:
            warnings.warn(
                "PointSpec(algorithm=...) is deprecated; use stack= (and "
                "fd_kind= for the failure detector variant) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            if self.stack is not None and self.stack != algorithm:
                raise ValueError(
                    f"conflicting stack selection: stack={self.stack!r} vs "
                    f"deprecated algorithm={algorithm!r}"
                )
            object.__setattr__(self, "stack", algorithm)
        if self.stack is None:
            object.__setattr__(self, "stack", "fd")
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(
                f"unknown scenario kind {self.kind!r}; expected one of {SCENARIO_KINDS}"
            )
        # Validates both registry names and folds "fd/heartbeat" variants so
        # equivalent selections produce identical cache keys; an explicit
        # fd_kind conflicting with an embedded one raises (like SystemConfig).
        spec, resolved_kind = stack_registry.resolve(self.stack, self.fd_kind)
        object.__setattr__(self, "stack", spec.name)
        object.__setattr__(self, "fd_kind", resolved_kind)
        if self.kind in ("suspicion-steady", "asymmetric-qos") and self.fd_kind != "qos":
            raise ValueError(
                f"{self.kind} points drive the QoS mistake model and need fd_kind='qos'"
            )
        if self.kind == "crash-transient" and self.fd_kind == "heartbeat":
            raise ValueError(
                "crash-transient points pin the detection time T_D and subtract it "
                "from the reported overhead; the heartbeat detector's T_D emerges "
                "from period + timeout instead (use fd_kind='qos' or 'perfect')"
            )
        if self.kind in ("suspicion-steady", "asymmetric-qos") and not math.isfinite(
            self.mistake_recurrence_time
        ):
            raise ValueError(f"{self.kind} points need a finite mistake_recurrence_time")
        if self.kind in ("crash-steady", "correlated-crash") and not self.crashed:
            raise ValueError(f"{self.kind} points need a non-empty crashed tuple")
        if self.kind == "crash-transient" and self.sender == self.crashed_process:
            raise ValueError("the tagged sender must differ from the crashed process")
        if self.kind == "churn-steady" and (self.churn_rate <= 0 or self.mean_downtime <= 0):
            raise ValueError("churn-steady points need churn_rate > 0 and mean_downtime > 0")
        if self.kind == "view-majority-loss":
            if self.n < 3:
                raise ValueError(
                    "view-majority-loss points need a group size n >= 3 "
                    "(even sizes use the staged two-window construction)"
                )
            # The campaign path always uses the canonical suspicion window,
            # so an out-of-window crash_time (which could never block the
            # view) is rejected here instead of mid-campaign in a worker.
            window_end = VML_SUSPECT_START + VML_SUSPECT_DURATION
            if self.crash_time != 0 and not (
                VML_SUSPECT_START < self.crash_time < window_end
            ):
                raise ValueError(
                    "view-majority-loss crash_time must fall inside the "
                    f"canonical suspicion window ({VML_SUSPECT_START:g}, "
                    f"{window_end:g}), got {self.crash_time} (0 = default)"
                )
        for knob in (
            "reformation_timeout",
            "heartbeat_period",
            "heartbeat_timeout",
            "think_time",
            "max_delay",
            "fd_scan_interval",
        ):
            if getattr(self, knob) < 0:
                raise ValueError(f"{knob} must be >= 0 (0 = default), got {getattr(self, knob)}")
        if self.clients < 0:
            raise ValueError(f"clients must be >= 0 (0 = open loop), got {self.clients}")
        if self.max_batch < 0:
            raise ValueError(f"max_batch must be >= 0 (0 = unbatched), got {self.max_batch}")
        if self.consistency not in ("ordered", "local"):
            raise ValueError(
                f"consistency must be 'ordered' or 'local', got {self.consistency!r}"
            )
        if self.kind == "asymmetric-qos":
            if self.flaky_monitor == self.flaky_target:
                raise ValueError("the flaky observer pair needs two distinct processes")
            for pid in (self.flaky_monitor, self.flaky_target):
                if not 0 <= pid < self.n:
                    raise ValueError(
                        f"flaky pair process {pid} out of range 0..{self.n - 1}"
                    )
        if self.fault_duration < 0:
            raise ValueError(
                f"fault_duration must be >= 0 (0 = default), got {self.fault_duration}"
            )
        if not 0.0 <= self.link_loss < 1.0:
            raise ValueError(f"link_loss must be in [0, 1), got {self.link_loss}")
        if self.kind == "partition-transient" and self.n < 3:
            raise ValueError("partition-transient points need n >= 3 (a real minority)")
        if self.kind == "wan-steady":
            if not self.wan_profile:
                raise ValueError("wan-steady points need a wan_profile name")
            # Fail on unknown profiles at declaration time, not mid-campaign
            # in a worker.
            wan_registry_lookup(self.wan_profile)
        elif self.wan_profile:
            raise ValueError(
                f"wan_profile only applies to wan-steady points, got kind={self.kind!r}"
            )
        if self.kind == "gray-degradation":
            if self.degrade_factor != 0.0 and self.degrade_factor <= 1.0:
                raise ValueError(
                    "gray-degradation needs degrade_factor > 1 (0 = default), "
                    f"got {self.degrade_factor}"
                )
            if not 0 <= self.crashed_process < self.n:
                raise ValueError(
                    f"degraded pid {self.crashed_process} out of range 0..{self.n - 1}"
                )

    def config(self) -> SystemConfig:
        """The ``SystemConfig`` this point simulates."""
        extras: Dict[str, Any] = dict(self.config_overrides)
        if self.reformation_timeout > 0:
            extras.setdefault("reformation_timeout", self.reformation_timeout)
        if self.heartbeat_period > 0 or self.heartbeat_timeout > 0:
            defaults = HeartbeatConfig()
            extras.setdefault(
                "heartbeat",
                HeartbeatConfig(
                    period=self.heartbeat_period or defaults.period,
                    timeout=self.heartbeat_timeout or defaults.timeout,
                ),
            )
        if self.max_batch > 0:
            extras.setdefault("max_batch", self.max_batch)
            extras.setdefault("max_delay", self.max_delay)
        if self.fd_scan_interval > 0:
            extras.setdefault("fd_scan_interval", self.fd_scan_interval)
        # ``instrument`` may also arrive via config_overrides; either wins.
        extras["instrument"] = bool(extras.pop("instrument", False)) or self.instrument
        return SystemConfig(
            n=self.n,
            stack=self.stack,
            fd_kind=self.fd_kind,
            seed=self.seed,
            **extras,
        )

    def as_dict(self) -> Dict[str, Any]:
        """A canonical, strictly-JSON-serialisable view of the point.

        Numbers are normalised (``10`` and ``10.0`` describe the same point)
        so the cache key does not depend on the Python type a sweep axis
        happened to use, and infinities are encoded as the string ``"inf"``
        (the bare ``Infinity`` token ``json.dumps`` would emit is not valid
        JSON and breaks external JSONL consumers).
        """
        return {
            "kind": self.kind,
            "stack": self.stack,
            "fd_kind": self.fd_kind,
            "n": int(self.n),
            "seed": int(self.seed),
            "throughput": _json_number(self.throughput),
            "num_messages": int(self.num_messages),
            "num_runs": int(self.num_runs),
            "crashed": [int(pid) for pid in self.crashed],
            "mistake_recurrence_time": _json_number(self.mistake_recurrence_time),
            "mistake_duration": _json_number(self.mistake_duration),
            "detection_time": _json_number(self.detection_time),
            "crashed_process": int(self.crashed_process),
            "sender": None if self.sender is None else int(self.sender),
            "crash_time": _json_number(self.crash_time),
            "churn_rate": _json_number(self.churn_rate),
            "mean_downtime": _json_number(self.mean_downtime),
            "flaky_monitor": int(self.flaky_monitor),
            "flaky_target": int(self.flaky_target),
            "reformation_timeout": _json_number(self.reformation_timeout),
            "heartbeat_period": _json_number(self.heartbeat_period),
            "heartbeat_timeout": _json_number(self.heartbeat_timeout),
            "clients": int(self.clients),
            "think_time": _json_number(self.think_time),
            "consistency": self.consistency,
            "max_batch": int(self.max_batch),
            "max_delay": _json_number(self.max_delay),
            "fd_scan_interval": _json_number(self.fd_scan_interval),
            "fault_duration": _json_number(self.fault_duration),
            "wan_profile": self.wan_profile,
            "degrade_factor": _json_number(self.degrade_factor),
            "link_loss": _json_number(self.link_loss),
            "config_overrides": {
                name: _json_number(value) for name, value in self.config_overrides
            },
            "instrument": bool(self.instrument),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PointSpec":
        """Rebuild a point from its :meth:`as_dict` form.

        The inverse of the canonical serialisation: ``"inf"`` strings become
        floats again, lists become tuples and the override mapping becomes
        the tuple-of-pairs field (sorted, matching the canonical JSON).  The
        round-trip preserves :meth:`key`, which is what lets a point travel
        through the work queue (:mod:`repro.campaigns.queue`) and commit its
        result under the same cache key the submitting machine computed.
        Unknown keys (from a newer schema) are rejected rather than dropped.
        """

        def value_of(raw: Any) -> Any:
            if raw == "inf":
                return INFINITY
            if raw == "-inf":
                return -INFINITY
            return raw

        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown PointSpec fields {sorted(unknown)}")
        kwargs = {
            key: value_of(raw)
            for key, raw in data.items()
            if key not in ("crashed", "config_overrides")
        }
        kwargs["crashed"] = tuple(int(pid) for pid in data.get("crashed", ()))
        kwargs["config_overrides"] = tuple(
            sorted(
                (name, value_of(raw))
                for name, raw in data.get("config_overrides", {}).items()
            )
        )
        return cls(**kwargs)

    def key(self) -> str:
        """Stable content hash of the point (the result-cache key).

        The hash covers the canonical point dict, the spec schema version
        and the package version, so a release that changes simulator
        behaviour invalidates old caches instead of silently mixing results
        from two incompatible versions.  Memoised: the key is consulted on
        every cache lookup, commit and aggregation step.
        """
        cached = self.__dict__.get("_key")
        if cached is None:
            payload = json.dumps(self.as_dict(), sort_keys=True)
            prefix = f"v{SCHEMA_VERSION}/repro-{__version__}"
            cached = hashlib.sha256(f"{prefix}:{payload}".encode("utf-8")).hexdigest()
            object.__setattr__(self, "_key", cached)
        return cached

    def label(self) -> str:
        """Short human-readable description (used by logs and the CLI)."""
        extras = {
            "normal-steady": "",
            "crash-steady": f" crashed={list(self.crashed)}",
            "suspicion-steady": (
                f" T_MR={self.mistake_recurrence_time:g} T_M={self.mistake_duration:g}"
            ),
            "crash-transient": (
                f" T_D={self.detection_time:g} crash=p{self.crashed_process}"
                + ("" if self.sender is None else f" sender=p{self.sender}")
            ),
            "correlated-crash": (
                f" crashed={list(self.crashed)} T_D={self.detection_time:g}"
            ),
            "churn-steady": (
                f" churn={self.churn_rate:g}/s downtime={self.mean_downtime:g}ms"
            ),
            "asymmetric-qos": (
                f" p{self.flaky_monitor}~p{self.flaky_target}"
                f" T_MR={self.mistake_recurrence_time:g} T_M={self.mistake_duration:g}"
            ),
            "view-majority-loss": (
                f" T_D={self.detection_time:g}"
                + (
                    f" reform={self.reformation_timeout:g}ms"
                    if self.reformation_timeout > 0
                    else ""
                )
            ),
            "service-load": (
                (
                    f" clients={self.clients} think={self.think_time:g}ms"
                    if self.clients > 0
                    else " open-loop"
                )
                + (f" batch={self.max_batch}" if self.max_batch > 0 else "")
                + (f" {self.consistency}" if self.consistency != "ordered" else "")
            ),
            "partition-transient": (
                f" T_D={self.detection_time:g}"
                + (
                    f" window={self.fault_duration:g}ms"
                    if self.fault_duration > 0
                    else ""
                )
            ),
            "wan-steady": f" profile={self.wan_profile}",
            "gray-degradation": (
                f" slow=p{self.crashed_process}"
                + (
                    f" x{self.degrade_factor:g}"
                    if self.degrade_factor > 0
                    else ""
                )
                + (f" loss={self.link_loss:g}" if self.link_loss > 0 else "")
            ),
        }[self.kind]
        stack = self.stack if self.fd_kind == "qos" else f"{self.stack}/{self.fd_kind}"
        return (
            f"{self.kind} {stack} n={self.n} T={self.throughput:g}/s"
            f"{extras} seed={self.seed}"
        )


@dataclass
class SeriesPointSpec:
    """One x position of a series: one point per seed replica.

    The replicas are merged (latencies pooled) when the series is
    aggregated, which is how multi-seed campaigns tighten the confidence
    intervals without touching the figure code.
    """

    x: float
    points: List[PointSpec]


@dataclass
class SeriesSpec:
    """One declared curve: a label, per-curve parameters and its points."""

    label: str
    points: List[SeriesPointSpec] = field(default_factory=list)
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass
class CampaignSpec:
    """A named grid of scenario runs, grouped into series."""

    name: str
    series: List[SeriesSpec] = field(default_factory=list)
    description: str = ""

    def add_series(self, series: SeriesSpec) -> None:
        """Append a curve to the campaign."""
        self.series.append(series)

    def points(self) -> List[PointSpec]:
        """All distinct points, in declaration order.

        Points shared by several series (or several figures writing to the
        same store) deduplicate by content key, so each operating point is
        simulated exactly once.
        """
        seen = set()
        ordered: List[PointSpec] = []
        for series in self.series:
            for series_point in series.points:
                for point in series_point.points:
                    key = point.key()
                    if key not in seen:
                        seen.add(key)
                        ordered.append(point)
        return ordered


def grid(
    kind: str,
    *,
    name: str = "adhoc",
    stacks: Optional[Sequence[str]] = None,
    fd_kinds: Sequence[Optional[str]] = (None,),
    algorithms: Optional[Sequence[str]] = None,
    n_values: Sequence[int] = (3,),
    throughputs: Sequence[float] = (10.0, 100.0),
    seeds: Sequence[int] = (1,),
    num_messages: int = 100,
    num_runs: int = 8,
    crashes: int = 1,
    mistake_recurrence_time: float = 1000.0,
    mistake_duration: float = 0.0,
    detection_time: float = 0.0,
    crashed_process: int = 0,
    sender: Any = None,
    crash_time: float = 0.0,
    churn_rate: float = 1.0,
    mean_downtime: float = 200.0,
    flaky_monitor: int = 1,
    flaky_target: int = 0,
    reformation_timeout: float = 0.0,
    heartbeat_period: float = 0.0,
    heartbeat_timeout: float = 0.0,
    clients: int = 0,
    think_time: float = 0.0,
    consistency: str = "ordered",
    max_batch: int = 0,
    max_delay: float = 0.0,
    fd_scan_interval: float = 0.0,
    fault_duration: float = 0.0,
    wan_profile: str = "wan-3dc",
    degrade_factor: float = 0.0,
    link_loss: float = 0.0,
    config_overrides: Iterable[Tuple[str, Any]] = (),
    description: str = "",
) -> CampaignSpec:
    """Build an ad-hoc campaign over the cartesian product of the axes.

    One series per ``(stack, fd_kind, n)`` triple, one x position per
    throughput, one replica per seed.  ``stacks`` accepts slash-qualified
    names (``"fd/heartbeat"``); the ``fd_kinds`` axis crosses every stack
    with every failure detector kind, which is how QoS-FD vs heartbeat-FD
    comparison sweeps are declared.  ``algorithms`` is a deprecated alias of
    ``stacks``.  ``crashes`` (crash-steady and correlated-crash) selects the
    highest-numbered processes, matching the paper's non-coordinator
    convention.
    """
    if algorithms is not None:
        warnings.warn(
            "grid(algorithms=...) is deprecated; use stacks= instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if stacks is not None and tuple(stacks) != tuple(algorithms):
            raise ValueError("pass stacks= or algorithms=, not conflicting both")
        stacks = algorithms
    if stacks is None:
        stacks = ("fd", "gm")
    overrides = tuple(config_overrides)
    crash_kinds = ("crash-steady", "correlated-crash")
    # Duplicate seeds would pool the same simulation twice and shrink the
    # reported CI with zero new information; drop them, preserving order.
    seeds = list(dict.fromkeys(int(seed) for seed in seeds))
    # Same for duplicate (stack, fd_kind) combos, which slash-qualified
    # stack names crossed with an fd_kinds axis can produce.
    # ``None`` on the fd_kinds axis means "the stack's default kind"; an
    # explicit kind conflicting with a slash-qualified stack raises
    # (mirroring SystemConfig) rather than silently dropping the axis.
    combos = list(
        dict.fromkeys(
            stack_registry.resolve(stack, fd_kind)
            for stack in stacks
            for fd_kind in fd_kinds
        )
    )
    campaign = CampaignSpec(name=name, description=description)
    for n in n_values:
        if kind in crash_kinds and crashes > SystemConfig(n=n).max_tolerated_crashes():
            raise ValueError(f"{crashes} crashes exceed the f < n/2 bound for n={n}")
        for stack_spec, fd_kind in combos:
            stack = stack_spec.name
            label = stack if fd_kind == "qos" else f"{stack}/{fd_kind}"
            series = SeriesSpec(
                label=f"{label}, n={n}",
                params={"stack": stack, "fd_kind": fd_kind, "n": n, "kind": kind},
            )
            for throughput in throughputs:
                series.points.append(
                    SeriesPointSpec(
                        x=throughput,
                        points=[
                            PointSpec(
                                kind=kind,
                                stack=stack,
                                fd_kind=fd_kind,
                                n=n,
                                seed=seed,
                                throughput=throughput,
                                num_messages=num_messages,
                                num_runs=num_runs,
                                crashed=(
                                    crashed_processes(n, crashes)
                                    if kind in crash_kinds
                                    else ()
                                ),
                                mistake_recurrence_time=(
                                    mistake_recurrence_time
                                    if kind in ("suspicion-steady", "asymmetric-qos")
                                    else INFINITY
                                ),
                                mistake_duration=(
                                    mistake_duration
                                    if kind in ("suspicion-steady", "asymmetric-qos")
                                    else 0.0
                                ),
                                detection_time=(
                                    detection_time
                                    if kind
                                    in (
                                        "crash-transient",
                                        "correlated-crash",
                                        "churn-steady",
                                        "view-majority-loss",
                                        "partition-transient",
                                        "gray-degradation",
                                    )
                                    else 0.0
                                ),
                                crashed_process=(
                                    crashed_process
                                    if kind in ("crash-transient", "gray-degradation")
                                    else 0
                                ),
                                sender=(sender if kind == "crash-transient" else None),
                                crash_time=(
                                    crash_time
                                    if kind
                                    in (
                                        "correlated-crash",
                                        "view-majority-loss",
                                        "partition-transient",
                                        "gray-degradation",
                                    )
                                    else 0.0
                                ),
                                churn_rate=(
                                    churn_rate if kind == "churn-steady" else 0.0
                                ),
                                mean_downtime=(
                                    mean_downtime if kind == "churn-steady" else 0.0
                                ),
                                flaky_monitor=(
                                    flaky_monitor if kind == "asymmetric-qos" else 1
                                ),
                                flaky_target=(
                                    flaky_target if kind == "asymmetric-qos" else 0
                                ),
                                reformation_timeout=(
                                    # Scoped by stack capability, not kind:
                                    # a reformation-capable stack reads the
                                    # knob under every scenario (e.g. churn
                                    # can trigger reformations too).
                                    reformation_timeout
                                    if dict(stack_spec.params).get("reformation")
                                    else 0.0
                                ),
                                heartbeat_period=(
                                    heartbeat_period if fd_kind == "heartbeat" else 0.0
                                ),
                                heartbeat_timeout=(
                                    heartbeat_timeout if fd_kind == "heartbeat" else 0.0
                                ),
                                clients=(clients if kind == "service-load" else 0),
                                think_time=(
                                    think_time if kind == "service-load" else 0.0
                                ),
                                consistency=(
                                    consistency if kind == "service-load" else "ordered"
                                ),
                                # Config-level knobs: they reshape the system
                                # under any scenario kind, so no kind scoping.
                                max_batch=max_batch,
                                max_delay=max_delay,
                                fd_scan_interval=(
                                    # The heartbeat fabric ignores the scan
                                    # tick; zero it so fd-kind comparison
                                    # sweeps don't mint distinct cache keys
                                    # for identical heartbeat runs.
                                    0.0 if fd_kind == "heartbeat" else fd_scan_interval
                                ),
                                fault_duration=(
                                    fault_duration
                                    if kind
                                    in ("partition-transient", "gray-degradation")
                                    else 0.0
                                ),
                                wan_profile=(
                                    wan_profile if kind == "wan-steady" else ""
                                ),
                                degrade_factor=(
                                    degrade_factor if kind == "gray-degradation" else 0.0
                                ),
                                link_loss=(
                                    link_loss if kind == "gray-degradation" else 0.0
                                ),
                                config_overrides=overrides,
                            )
                            for seed in seeds
                        ],
                    )
                )
            campaign.add_series(series)
    return campaign
