"""File/directory-backed distributed work queue for campaign points.

The campaign runner isolates execution behind :func:`repro.campaigns.runner.execute_point`,
so distributing a grid across machines only needs a way to hand points out
and collect records back.  This queue does it with nothing but a shared
directory (NFS mount, synced folder, one box with many worker processes)::

    <queue-dir>/pending/<key>.json    the serialised PointSpec, awaiting work
    <queue-dir>/leases/<key>.lease    who is executing it, since when
    <queue-dir>/results/<key>.json    {key, point, record, provenance}

The protocol relies only on two portable filesystem primitives:

* **lease acquisition** is ``O_CREAT | O_EXCL`` -- exactly one worker can
  create the lease file, so no point is executed twice while its worker is
  alive;
* **commits** are tmp-file + ``os.replace`` -- a reader never observes a
  half-written result.

A worker that crashes mid-point leaves its lease behind; once the lease is
older than ``lease_ttl`` seconds any other worker reclaims it (atomically
re-pointing the lease at itself) and re-executes the point.  Simulations
are deterministic functions of their spec, so a reclaimed-and-re-executed
point commits the identical record -- double execution after a crash costs
time, never correctness.

:class:`QueueWorker` is the fleet-side loop: claim, simulate, commit, with
per-result provenance (worker id, wall clock, schema/package version, git
revision).  ``python -m repro.campaigns --queue-worker --queue-dir DIR``
runs one.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro import __version__
from repro.campaigns.spec import SCHEMA_VERSION, PointSpec

PENDING = "pending"
LEASES = "leases"
RESULTS = "results"


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _read_json(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


@dataclass
class Lease:
    """One claimed point: the worker owns it until commit, release or TTL."""

    key: str
    point: PointSpec
    worker: str


class WorkQueue:
    """A shared-directory work queue of campaign points."""

    def __init__(self, directory: str, *, lease_ttl: float = 300.0) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0 seconds, got {lease_ttl}")
        self.directory = directory
        self.lease_ttl = lease_ttl
        for sub in (PENDING, LEASES, RESULTS):
            os.makedirs(os.path.join(directory, sub), exist_ok=True)

    # ------------------------------------------------------------------ paths

    def _pending_path(self, key: str) -> str:
        return os.path.join(self.directory, PENDING, f"{key}.json")

    def _lease_path(self, key: str) -> str:
        return os.path.join(self.directory, LEASES, f"{key}.lease")

    def _result_path(self, key: str) -> str:
        return os.path.join(self.directory, RESULTS, f"{key}.json")

    # ------------------------------------------------------------------ producer

    def enqueue(self, points: List[PointSpec]) -> int:
        """Queue every point that is neither pending nor already done."""
        added = 0
        for point in points:
            key = point.key()
            if os.path.exists(self._result_path(key)):
                continue
            if os.path.exists(self._pending_path(key)):
                continue
            _atomic_write_json(
                self._pending_path(key), {"key": key, "point": point.as_dict()}
            )
            added += 1
        return added

    # ------------------------------------------------------------------ worker

    def claim(self, worker: str) -> Optional[Lease]:
        """Lease one pending point, or ``None`` when nothing is claimable.

        Skips points under a live lease; reclaims leases older than the TTL
        (the crashed-worker path).
        """
        try:
            names = sorted(os.listdir(os.path.join(self.directory, PENDING)))
        except OSError:
            return None
        now = time.time()
        for name in names:
            if not name.endswith(".json"):
                continue
            key = name[:-len(".json")]
            if os.path.exists(self._result_path(key)):
                # A worker crashed between committing the result and tidying
                # the pending marker; finish the tidy-up for it.
                self._remove(self._pending_path(key))
                self._remove(self._lease_path(key))
                continue
            if not self._acquire_lease(key, worker, now):
                continue
            spec = _read_json(self._pending_path(key))
            if spec is None or "point" not in spec:
                # Torn or vanished pending file: drop our lease and move on.
                self._remove(self._lease_path(key))
                continue
            return Lease(key=key, point=PointSpec.from_dict(spec["point"]), worker=worker)
        return None

    def _acquire_lease(self, key: str, worker: str, now: float) -> bool:
        lease_path = self._lease_path(key)
        payload = {
            "worker": worker,
            "claimed": now,
            "host": socket.gethostname(),
            "pid": os.getpid(),
        }
        body = json.dumps(payload, sort_keys=True)
        try:
            fd = os.open(lease_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                age = now - os.stat(lease_path).st_mtime
            except OSError:
                return False  # lease vanished: its owner just committed
            if age <= self.lease_ttl:
                return False  # live lease held by another worker
            # Stale lease: its worker crashed (or stalled past the TTL).
            # Atomically re-point the lease at us, then read back to verify
            # we won any reclaim race.
            tmp = f"{lease_path}.reclaim.{os.getpid()}"
            try:
                with open(tmp, "w", encoding="utf-8") as handle:
                    handle.write(body)
                os.replace(tmp, lease_path)
            except OSError:
                return False
            current = _read_json(lease_path)
            return bool(
                current
                and current.get("worker") == worker
                and current.get("pid") == os.getpid()
            )
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(body)
        return True

    def commit(
        self,
        lease: Lease,
        record: Dict[str, Any],
        provenance: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Publish the record of a leased point and retire it from the queue."""
        payload: Dict[str, Any] = {
            "key": lease.key,
            "point": lease.point.as_dict(),
            "record": record,
            "provenance": dict(provenance or {}),
        }
        _atomic_write_json(self._result_path(lease.key), payload)
        self._remove(self._pending_path(lease.key))
        self._remove(self._lease_path(lease.key))

    def release(self, lease: Lease) -> None:
        """Give a claimed point back (worker shutting down cleanly)."""
        self._remove(self._lease_path(lease.key))

    @staticmethod
    def _remove(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    # ------------------------------------------------------------------ consumer

    def result(self, key: str) -> Optional[Dict[str, Any]]:
        """The committed record for ``key``, or ``None`` while outstanding."""
        entry = _read_json(self._result_path(key))
        if entry is None:
            return None
        return entry.get("record")

    def result_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """The full committed entry (point + record + provenance)."""
        return _read_json(self._result_path(key))

    def results(self) -> Iterator[Tuple[str, Optional[Dict[str, Any]], Dict[str, Any]]]:
        """Iterate ``(key, point, record)`` over every committed result."""
        directory = os.path.join(self.directory, RESULTS)
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".json"):
                continue
            entry = _read_json(os.path.join(directory, name))
            if entry and "record" in entry:
                yield entry.get("key", name[:-5]), entry.get("point"), entry["record"]

    def pending_count(self) -> int:
        return self._count(PENDING, ".json")

    def result_count(self) -> int:
        return self._count(RESULTS, ".json")

    def _count(self, sub: str, suffix: str) -> int:
        try:
            return sum(
                1
                for name in os.listdir(os.path.join(self.directory, sub))
                if name.endswith(suffix)
            )
        except OSError:
            return 0


class QueueWorker:
    """The fleet-side execution loop: claim, simulate, commit.

    One worker drains points serially; fleet parallelism comes from running
    many workers (processes, machines) against the same queue directory.
    """

    def __init__(
        self,
        queue: WorkQueue,
        worker_id: Optional[str] = None,
        trace_dir: Optional[str] = None,
    ) -> None:
        self.queue = queue
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.trace_dir = trace_dir

    def run_one(self) -> Optional[str]:
        """Claim and execute one point; returns its key, or ``None`` if idle."""
        from repro.campaigns.runner import execute_point

        lease = self.queue.claim(self.worker_id)
        if lease is None:
            return None
        try:
            started = time.time()
            record = execute_point(lease.point, self.trace_dir)
            provenance = {
                "worker": self.worker_id,
                "host": socket.gethostname(),
                "pid": os.getpid(),
                "wall_clock_s": time.time() - started,
                "finished_unix": time.time(),
                "schema_version": SCHEMA_VERSION,
                "repro_version": __version__,
                "git_rev": _cached_git_revision(),
            }
            self.queue.commit(lease, record, provenance)
        except Exception:
            self.queue.release(lease)
            raise
        return lease.key

    def run(self, max_points: Optional[int] = None) -> int:
        """Execute until the queue has nothing claimable; returns the count."""
        executed = 0
        while max_points is None or executed < max_points:
            if self.run_one() is None:
                break
            executed += 1
        return executed


_GIT_REVISION: Optional[str] = None


def _cached_git_revision() -> str:
    """The repo git revision, resolved once per worker process."""
    global _GIT_REVISION
    if _GIT_REVISION is None:
        from repro.campaigns.catalog import git_revision

        _GIT_REVISION = git_revision()
    return _GIT_REVISION
