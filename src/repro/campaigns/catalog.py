"""Campaign catalog: named stored campaigns with per-run provenance.

A campaign that took a fleet-night to simulate is only as useful as the
metadata that says *what* it was: which spec, which code, which schema, how
long it took.  The catalog records exactly that, one directory per named
campaign::

    <catalog>/<name>/summary.json    the latest run (atomic overwrite)
    <catalog>/<name>/runs.jsonl      append-only history of every run

``summary.json`` carries the campaign spec hash (a content hash over the
sorted point keys, so two sessions declaring the same grid hash
identically), the cache schema version, the package version, the git
revision the run was produced by, wall-clock time and the cache/executed
split -- enough to decide, months later, whether stored results are still
trustworthy or need ``--force``.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import subprocess
import time
from typing import Any, Dict, List, Optional

from repro import __version__
from repro.campaigns.spec import SCHEMA_VERSION, CampaignSpec

#: Catalog entry names are directory names: keep them portable.
_SAFE_NAME = re.compile(r"[^A-Za-z0-9._-]+")


def git_revision(cwd: Optional[str] = None) -> str:
    """The current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def campaign_spec_hash(campaign: CampaignSpec) -> str:
    """Content hash of a campaign: name-independent identity of its grid.

    Hashes the sorted point keys (each already a content hash of one
    operating point under the current schema), so the hash changes exactly
    when the simulated grid changes.
    """
    payload = json.dumps(
        {
            "schema_version": SCHEMA_VERSION,
            "points": sorted(point.key() for point in campaign.points()),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def catalog_name(name: str) -> str:
    """Sanitise a campaign name into a portable directory name."""
    cleaned = _SAFE_NAME.sub("-", name).strip("-.")
    return cleaned or "campaign"


class CampaignCatalog:
    """Directory of named stored campaigns and their run provenance."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _entry_dir(self, name: str) -> str:
        return os.path.join(self.directory, catalog_name(name))

    def summary_path(self, name: str) -> str:
        return os.path.join(self._entry_dir(name), "summary.json")

    def record_run(
        self,
        campaign: CampaignSpec,
        run: Any,
        *,
        wall_clock_s: float,
        name: Optional[str] = None,
        store_path: Optional[str] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Store the provenance of one completed run; returns the summary path.

        ``run`` is the :class:`repro.campaigns.runner.CampaignRun`;
        ``store_path`` names the result store the records live in (when one
        was used).  ``summary.json`` is replaced atomically, and the same
        summary is appended to ``runs.jsonl`` as history.
        """
        entry_name = catalog_name(name or campaign.name)
        entry_dir = self._entry_dir(entry_name)
        os.makedirs(entry_dir, exist_ok=True)
        summary: Dict[str, Any] = {
            "name": entry_name,
            "campaign": campaign.name,
            "description": campaign.description,
            "spec_hash": campaign_spec_hash(campaign),
            "schema_version": SCHEMA_VERSION,
            "repro_version": __version__,
            "git_rev": git_revision(),
            "recorded_unix": time.time(),
            "wall_clock_s": wall_clock_s,
            "points": len(run.records),
            "executed": run.executed,
            "cache_hits": run.cache_hits,
            "series": [series.label for series in campaign.series],
        }
        if store_path is not None:
            summary["store_path"] = os.path.abspath(store_path)
        if extra:
            summary.update(extra)
        line = json.dumps(summary, sort_keys=True)
        with open(os.path.join(entry_dir, "runs.jsonl"), "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        summary_path = self.summary_path(entry_name)
        tmp = f"{summary_path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, summary_path)
        return summary_path

    def load(self, name: str) -> Dict[str, Any]:
        """The latest summary of a named campaign (KeyError when absent)."""
        try:
            with open(self.summary_path(name), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except OSError:
            raise KeyError(f"no catalogued campaign named {name!r}") from None

    def history(self, name: str) -> List[Dict[str, Any]]:
        """Every recorded run of a named campaign, oldest first."""
        path = os.path.join(self._entry_dir(name), "runs.jsonl")
        entries: List[Dict[str, Any]] = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        entries.append(json.loads(line))
        except OSError:
            pass
        return entries

    def names(self) -> List[str]:
        """Every catalogued campaign name, sorted."""
        try:
            candidates = sorted(os.listdir(self.directory))
        except OSError:
            return []
        return [
            name
            for name in candidates
            if os.path.exists(self.summary_path(name))
        ]

    def summaries(self) -> List[Dict[str, Any]]:
        """The latest summary of every catalogued campaign."""
        return [self.load(name) for name in self.names()]
