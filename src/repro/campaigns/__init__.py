"""Declarative experiment campaigns: parallel execution, caching, resumption.

A *campaign* is a declarative grid of scenario runs (the points of a figure,
an ad-hoc parameter sweep, a multi-seed replication).  The subsystem splits
the concern that used to live in hand-written nested loops into four layers:

* :mod:`repro.campaigns.spec`      -- :class:`PointSpec` / :class:`SeriesSpec`
  / :class:`CampaignSpec` describe *what* to run: scenario kind,
  ``SystemConfig`` fields, sweep axes and seeds, with deterministic per-point
  seed derivation following the :class:`repro.sim.rng.RandomStreams`
  convention;
* :mod:`repro.campaigns.runner`    -- :class:`CampaignRunner` executes the
  points, serially or through a ``ProcessPoolExecutor`` (``jobs=N``), with
  bit-identical results either way;
* :mod:`repro.campaigns.store`     -- :class:`ResultStore` caches completed
  points in an append-only JSONL file keyed by a stable hash of the point
  configuration, which makes campaigns crash-safe and resumable;
* :mod:`repro.campaigns.aggregate` -- folds cached records back into the
  ``ScenarioResult`` / ``TransientResult`` / ``Series`` / ``FigureResult``
  containers the experiments and reports operate on.

``python -m repro.campaigns`` runs ad-hoc grids from the command line; the
figure modules of :mod:`repro.experiments` declare their sweeps as campaigns
and accept a shared runner (``--jobs`` / ``--cache-dir``).
"""

from repro.campaigns.aggregate import (
    figure_from_campaign,
    merge_scenario_results,
    merge_transient_results,
    run_campaign_figure,
    series_from_spec,
)
from repro.campaigns.records import record_to_result, result_to_record
from repro.campaigns.runner import CampaignRun, CampaignRunner, execute_point
from repro.campaigns.spec import (
    SCENARIO_KINDS,
    CampaignSpec,
    PointSpec,
    SeriesPointSpec,
    SeriesSpec,
    crashed_processes,
    derive_seed,
    grid,
    replicate_seeds,
)
from repro.campaigns.store import ResultStore

__all__ = [
    "SCENARIO_KINDS",
    "CampaignRun",
    "CampaignRunner",
    "CampaignSpec",
    "PointSpec",
    "ResultStore",
    "SeriesPointSpec",
    "SeriesSpec",
    "crashed_processes",
    "derive_seed",
    "execute_point",
    "figure_from_campaign",
    "grid",
    "merge_scenario_results",
    "merge_transient_results",
    "record_to_result",
    "replicate_seeds",
    "result_to_record",
    "run_campaign_figure",
    "series_from_spec",
]
