"""Declarative experiment campaigns: parallel execution, caching, resumption.

A *campaign* is a declarative grid of scenario runs (the points of a figure,
an ad-hoc parameter sweep, a multi-seed replication).  The subsystem splits
the concern that used to live in hand-written nested loops into four layers:

* :mod:`repro.campaigns.spec`      -- :class:`PointSpec` / :class:`SeriesSpec`
  / :class:`CampaignSpec` describe *what* to run: scenario kind,
  ``SystemConfig`` fields, sweep axes and seeds, with deterministic per-point
  seed derivation following the :class:`repro.sim.rng.RandomStreams`
  convention;
* :mod:`repro.campaigns.runner`    -- :class:`CampaignRunner` executes the
  points, serially or through a ``ProcessPoolExecutor`` (``jobs=N``), with
  bit-identical results either way;
* :mod:`repro.campaigns.store`     -- :class:`ResultStore` caches completed
  points in an append-only JSONL file keyed by a stable hash of the point
  configuration, which makes campaigns crash-safe and resumable;
* :mod:`repro.campaigns.aggregate` -- folds cached records back into the
  ``ScenarioResult`` / ``TransientResult`` / ``Series`` / ``FigureResult``
  containers the experiments and reports operate on.

``python -m repro.campaigns`` runs ad-hoc grids from the command line; the
figure modules of :mod:`repro.experiments` declare their sweeps as campaigns
and accept a shared runner (``--jobs`` / ``--cache-dir``).
"""

from repro.campaigns.aggregate import (
    cross_campaign_summary,
    figure_from_campaign,
    load_store_table,
    merge_scenario_results,
    merge_transient_results,
    run_campaign_figure,
    series_from_spec,
)
from repro.campaigns.catalog import CampaignCatalog, campaign_spec_hash, git_revision
from repro.campaigns.columnar import ColumnarTable
from repro.campaigns.pool import WarmPool
from repro.campaigns.queue import QueueWorker, WorkQueue
from repro.campaigns.records import record_to_result, result_to_record
from repro.campaigns.runner import (
    CampaignRun,
    CampaignRunner,
    execute_chunk,
    execute_point,
)
from repro.campaigns.spec import (
    SCENARIO_KINDS,
    CampaignSpec,
    PointSpec,
    SeriesPointSpec,
    SeriesSpec,
    crashed_processes,
    derive_seed,
    grid,
    replicate_seeds,
)
from repro.campaigns.store import ResultStore

__all__ = [
    "SCENARIO_KINDS",
    "CampaignCatalog",
    "CampaignRun",
    "CampaignRunner",
    "CampaignSpec",
    "ColumnarTable",
    "PointSpec",
    "QueueWorker",
    "ResultStore",
    "SeriesPointSpec",
    "SeriesSpec",
    "WarmPool",
    "WorkQueue",
    "campaign_spec_hash",
    "crashed_processes",
    "cross_campaign_summary",
    "derive_seed",
    "execute_chunk",
    "execute_point",
    "figure_from_campaign",
    "git_revision",
    "grid",
    "load_store_table",
    "merge_scenario_results",
    "merge_transient_results",
    "record_to_result",
    "replicate_seeds",
    "result_to_record",
    "run_campaign_figure",
    "series_from_spec",
]
