"""Campaign execution: serial or process-parallel, cache-aware, resumable.

:func:`execute_point` is the single dispatch from a :class:`PointSpec` to the
scenario drivers; it is a pure function of the spec (every simulation is
deterministic given its config), which is what makes the serial and parallel
paths bit-identical and the cache sound.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.campaigns.records import record_to_result, result_to_record
from repro.campaigns.spec import CampaignSpec, PointSpec
from repro.campaigns.store import ResultStore
from repro.scenarios.faults import VML_CRASH_TIME
from repro.scenarios.extended import (
    run_asymmetric_qos,
    run_churn_steady,
    run_correlated_crash,
    run_view_majority_loss,
)
from repro.scenarios.service_load import run_service_load
from repro.scenarios.steady import (
    run_crash_steady,
    run_normal_steady,
    run_suspicion_steady,
)
from repro.scenarios.transient import run_crash_transient


def execute_point(point: PointSpec, trace_dir: Optional[str] = None) -> Dict[str, Any]:
    """Simulate one point and return its serialised record.

    Module-level (picklable) so worker processes can run it; always returns
    the record form so every execution mode feeds the aggregation layer the
    same data.  ``trace_dir`` arms the process-wide trace sink
    (:func:`repro.obs.export.set_trace_dir`) before the run -- in a pool
    worker that is the only place the flag can be applied -- so instrumented
    points drop their JSONL/Chrome trace files beside the campaign results,
    prefixed by the point's cache key to stay collision-free.
    """
    if trace_dir is not None:
        from repro.obs.export import set_trace_dir

        set_trace_dir(trace_dir, prefix=point.key()[:12])
    config = point.config()
    if point.kind == "normal-steady":
        result: Any = run_normal_steady(
            config, point.throughput, num_messages=point.num_messages
        )
    elif point.kind == "crash-steady":
        result = run_crash_steady(
            config, point.throughput, point.crashed, num_messages=point.num_messages
        )
    elif point.kind == "suspicion-steady":
        result = run_suspicion_steady(
            config,
            point.throughput,
            mistake_recurrence_time=point.mistake_recurrence_time,
            mistake_duration=point.mistake_duration,
            num_messages=point.num_messages,
        )
    elif point.kind == "crash-transient":
        result = run_crash_transient(
            config,
            point.throughput,
            detection_time=point.detection_time,
            crashed_process=point.crashed_process,
            sender=point.sender,
            num_runs=point.num_runs,
        )
    elif point.kind == "correlated-crash":
        result = run_correlated_crash(
            config,
            point.throughput,
            crashed=point.crashed,
            crash_time=point.crash_time if point.crash_time > 0 else None,
            detection_time=point.detection_time,
            num_messages=point.num_messages,
        )
    elif point.kind == "churn-steady":
        result = run_churn_steady(
            config,
            point.throughput,
            churn_rate=point.churn_rate,
            mean_downtime=point.mean_downtime,
            detection_time=point.detection_time,
            num_messages=point.num_messages,
        )
    elif point.kind == "view-majority-loss":
        result = run_view_majority_loss(
            config,
            point.throughput,
            detection_time=point.detection_time,
            crash_time=point.crash_time if point.crash_time > 0 else VML_CRASH_TIME,
            num_messages=point.num_messages,
        )
    elif point.kind == "service-load":
        result = run_service_load(
            config,
            point.throughput,
            clients=point.clients,
            think_time=point.think_time,
            consistency=point.consistency,
            num_requests=point.num_messages,
        )
    elif point.kind == "asymmetric-qos":
        result = run_asymmetric_qos(
            config,
            point.throughput,
            mistake_recurrence_time=point.mistake_recurrence_time,
            mistake_duration=point.mistake_duration,
            flaky_monitor=point.flaky_monitor,
            flaky_target=point.flaky_target,
            num_messages=point.num_messages,
        )
    else:  # pragma: no cover - PointSpec validates the kind
        raise ValueError(f"unknown scenario kind {point.kind!r}")
    return result_to_record(result)


@dataclass
class CampaignRun:
    """Outcome of one campaign execution: records plus cache statistics."""

    campaign: CampaignSpec
    records: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    cache_hits: int = 0
    executed: int = 0
    #: Declared-point key -> executed-point key, for points the runner
    #: rewrote before execution (``instrument=True`` cloning).  Lets callers
    #: keep looking results up by the points they declared.
    aliases: Dict[str, str] = field(default_factory=dict)

    def record(self, point: PointSpec) -> Dict[str, Any]:
        """The record of ``point`` (KeyError if the point was not in the run)."""
        key = point.key()
        return self.records[self.aliases.get(key, key)]

    def result(self, point: PointSpec):
        """The ``ScenarioResult`` / ``TransientResult`` of ``point``."""
        return record_to_result(self.record(point))


class CampaignRunner:
    """Executes campaigns through an optional cache and an optional pool.

    ``jobs=1`` (the default) runs every point in-process; ``jobs=N`` fans the
    pending points out over a ``ProcessPoolExecutor``.  Both paths produce
    identical records because each point is an independent deterministic
    simulation.  With a ``store``, completed points are written as soon as
    they finish and never re-simulated -- re-running an interrupted campaign
    only executes what is missing.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        instrument: bool = False,
        trace_dir: Optional[str] = None,
        fd_scan_interval: float = 0.0,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if fd_scan_interval < 0:
            raise ValueError(
                f"fd_scan_interval must be >= 0 (0 = exact), got {fd_scan_interval}"
            )
        self.jobs = jobs
        self.store = store
        # Trace files only exist for instrumented runs, so asking for them
        # implies instrumenting.
        self.instrument = instrument or trace_dir is not None
        self.trace_dir = trace_dir
        #: Run every point under the batched failure-detector scan with this
        #: tick (ms); 0 keeps each point's own setting.  Like ``instrument``,
        #: this rewrites the executed points, so scanned and exact runs of
        #: the same operating point cache under distinct keys.
        self.fd_scan_interval = fd_scan_interval
        #: Statistics of the most recent :meth:`run` (for CLI reporting).
        self.last_run: Optional[CampaignRun] = None

    def run(self, campaign: CampaignSpec) -> CampaignRun:
        """Execute every point of ``campaign`` and return their records."""
        points = campaign.points()
        run = CampaignRun(campaign=campaign)
        pending: List[PointSpec] = []
        for point in points:
            executed = self._executed_point(point)
            if executed is not point:
                run.aliases[point.key()] = executed.key()
            cached = self.store.get(executed.key()) if self.store is not None else None
            if cached is not None:
                run.records[executed.key()] = cached
                run.cache_hits += 1
            else:
                pending.append(executed)

        if self.jobs > 1 and len(pending) > 1:
            self._run_parallel(pending, run)
        else:
            try:
                for point in pending:
                    self._commit(point, execute_point(point, self.trace_dir), run)
            finally:
                if self.trace_dir is not None:
                    # Serial execution armed the in-process trace sink;
                    # disarm it so later runs in this process stay silent.
                    from repro.obs.export import set_trace_dir

                    set_trace_dir(None)

        run.executed = len(pending)
        self.last_run = run
        return run

    def _executed_point(self, point: PointSpec) -> PointSpec:
        """The point actually simulated: rewritten clone when requested."""
        changes: Dict[str, Any] = {}
        if self.instrument and not point.instrument:
            changes["instrument"] = True
        if (
            self.fd_scan_interval > 0
            and point.fd_scan_interval == 0
            # The heartbeat fabric ignores the scan tick; rewriting would
            # mint a new cache key for an identical simulation.
            and point.fd_kind != "heartbeat"
        ):
            changes["fd_scan_interval"] = self.fd_scan_interval
        if changes:
            return replace(point, **changes)
        return point

    def _run_parallel(self, pending: List[PointSpec], run: CampaignRun) -> None:
        """Fan ``pending`` out over worker processes, committing as they finish."""
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(execute_point, point, self.trace_dir): point
                for point in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    self._commit(futures[future], future.result(), run)

    def _commit(self, point: PointSpec, record: Dict[str, Any], run: CampaignRun) -> None:
        """Record one finished point, persisting it immediately if caching."""
        run.records[point.key()] = record
        if self.store is not None:
            self.store.put(point.key(), record, point=point.as_dict())
