"""Campaign execution: serial or process-parallel, cache-aware, resumable.

:func:`execute_point` is the single dispatch from a :class:`PointSpec` to the
scenario drivers; it is a pure function of the spec (every simulation is
deterministic given its config), which is what makes the serial and parallel
paths bit-identical and the cache sound.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.campaigns import pool as pool_mod
from repro.campaigns.pool import WarmPool
from repro.campaigns.queue import QueueWorker, WorkQueue
from repro.campaigns.records import record_to_result, result_to_record
from repro.campaigns.spec import SCENARIO_KINDS, CampaignSpec, PointSpec
from repro.campaigns.store import ResultStore
from repro.scenarios.faults import VML_CRASH_TIME
from repro.scenarios.extended import (
    run_asymmetric_qos,
    run_churn_steady,
    run_correlated_crash,
    run_gray_degradation,
    run_partition_transient,
    run_view_majority_loss,
    run_wan_steady,
)
from repro.scenarios.service_load import run_service_load
from repro.scenarios.steady import (
    run_crash_steady,
    run_normal_steady,
    run_suspicion_steady,
)
from repro.scenarios.transient import run_crash_transient


def execute_point(point: PointSpec, trace_dir: Optional[str] = None) -> Dict[str, Any]:
    """Simulate one point and return its serialised record.

    Module-level (picklable) so worker processes can run it; always returns
    the record form so every execution mode feeds the aggregation layer the
    same data.  ``trace_dir`` arms the process-wide trace sink
    (:func:`repro.obs.export.set_trace_dir`) before the run -- in a pool
    worker that is the only place the flag can be applied -- so instrumented
    points drop their JSONL/Chrome trace files beside the campaign results,
    prefixed by the point's cache key to stay collision-free.
    """
    if trace_dir is not None:
        from repro.obs.export import set_trace_dir

        set_trace_dir(trace_dir, prefix=point.key()[:12])
    config = point.config()
    if point.kind == "normal-steady":
        result: Any = run_normal_steady(
            config, point.throughput, num_messages=point.num_messages
        )
    elif point.kind == "crash-steady":
        result = run_crash_steady(
            config, point.throughput, point.crashed, num_messages=point.num_messages
        )
    elif point.kind == "suspicion-steady":
        result = run_suspicion_steady(
            config,
            point.throughput,
            mistake_recurrence_time=point.mistake_recurrence_time,
            mistake_duration=point.mistake_duration,
            num_messages=point.num_messages,
        )
    elif point.kind == "crash-transient":
        result = run_crash_transient(
            config,
            point.throughput,
            detection_time=point.detection_time,
            crashed_process=point.crashed_process,
            sender=point.sender,
            num_runs=point.num_runs,
        )
    elif point.kind == "correlated-crash":
        result = run_correlated_crash(
            config,
            point.throughput,
            crashed=point.crashed,
            crash_time=point.crash_time if point.crash_time > 0 else None,
            detection_time=point.detection_time,
            num_messages=point.num_messages,
        )
    elif point.kind == "churn-steady":
        result = run_churn_steady(
            config,
            point.throughput,
            churn_rate=point.churn_rate,
            mean_downtime=point.mean_downtime,
            detection_time=point.detection_time,
            num_messages=point.num_messages,
        )
    elif point.kind == "view-majority-loss":
        result = run_view_majority_loss(
            config,
            point.throughput,
            detection_time=point.detection_time,
            crash_time=point.crash_time if point.crash_time > 0 else VML_CRASH_TIME,
            num_messages=point.num_messages,
        )
    elif point.kind == "service-load":
        result = run_service_load(
            config,
            point.throughput,
            clients=point.clients,
            think_time=point.think_time,
            consistency=point.consistency,
            num_requests=point.num_messages,
        )
    elif point.kind == "asymmetric-qos":
        result = run_asymmetric_qos(
            config,
            point.throughput,
            mistake_recurrence_time=point.mistake_recurrence_time,
            mistake_duration=point.mistake_duration,
            flaky_monitor=point.flaky_monitor,
            flaky_target=point.flaky_target,
            num_messages=point.num_messages,
        )
    elif point.kind == "partition-transient":
        result = run_partition_transient(
            config,
            point.throughput,
            partition_start=point.crash_time if point.crash_time > 0 else None,
            **(
                {"partition_duration": point.fault_duration}
                if point.fault_duration > 0
                else {}
            ),
            detection_time=point.detection_time,
            num_messages=point.num_messages,
        )
    elif point.kind == "wan-steady":
        result = run_wan_steady(
            config,
            point.throughput,
            profile=point.wan_profile,
            detection_time=point.detection_time,
            num_messages=point.num_messages,
        )
    elif point.kind == "gray-degradation":
        result = run_gray_degradation(
            config,
            point.throughput,
            degraded_pid=point.crashed_process,
            **(
                {"degrade_factor": point.degrade_factor}
                if point.degrade_factor > 0
                else {}
            ),
            degrade_start=point.crash_time if point.crash_time > 0 else None,
            **(
                {"degrade_duration": point.fault_duration}
                if point.fault_duration > 0
                else {}
            ),
            link_loss=point.link_loss,
            detection_time=point.detection_time,
            num_messages=point.num_messages,
        )
    else:  # pragma: no cover - PointSpec validates the kind
        raise ValueError(f"unknown scenario kind {point.kind!r}")
    return result_to_record(result)


def execute_chunk(
    points: Sequence[PointSpec], trace_dir: Optional[str] = None
) -> List[Dict[str, Any]]:
    """Simulate a batch of points in one worker round-trip.

    Chunking is what makes many-small-point grids scale: one task pickle,
    one IPC hop and one future wake-up amortise over the whole chunk instead
    of being paid per point.  Records come back in submission order, so the
    parent can zip them against the chunk's specs.
    """
    return [execute_point(point, trace_dir) for point in points]


@dataclass
class CampaignRun:
    """Outcome of one campaign execution: records plus cache statistics."""

    campaign: CampaignSpec
    records: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    cache_hits: int = 0
    executed: int = 0
    #: Declared-point key -> executed-point key, for points the runner
    #: rewrote before execution (``instrument=True`` cloning).  Lets callers
    #: keep looking results up by the points they declared.
    aliases: Dict[str, str] = field(default_factory=dict)

    def record(self, point: PointSpec) -> Dict[str, Any]:
        """The record of ``point`` (KeyError if the point was not in the run)."""
        key = point.key()
        return self.records[self.aliases.get(key, key)]

    def result(self, point: PointSpec):
        """The ``ScenarioResult`` / ``TransientResult`` of ``point``."""
        return record_to_result(self.record(point))


class CampaignRunner:
    """Executes campaigns through an optional cache and an optional pool.

    ``jobs=1`` (the default) runs every point in-process; ``jobs=N`` fans the
    pending points out over a persistent warm worker pool, batched into
    chunks (many quick points per worker round-trip) behind a bounded
    in-flight window, so neither per-point IPC overhead nor an up-front
    fan-out of 10^5 futures dominates.  The pool survives across ``run()``
    calls -- a multi-figure regeneration pays the spin-up cost once -- and
    is released by :meth:`close` (the runner is a context manager).  All
    paths produce identical records because each point is an independent
    deterministic simulation.

    With a ``store``, completed points are written as soon as they finish
    and never re-simulated -- re-running an interrupted campaign only
    executes what is missing.  ``force=True`` (or a kind listed in
    ``force_kinds``) bypasses cache *reads* for matching points and rewrites
    their records past the cache, without touching any other stored result.

    With a ``queue`` (:class:`repro.campaigns.queue.WorkQueue`), pending
    points are enqueued to the shared directory and this runner doubles as
    one worker: any number of additional ``--queue-worker`` processes or
    machines can drain the same queue, and the run completes when every
    point's record has been committed by someone.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        instrument: bool = False,
        trace_dir: Optional[str] = None,
        fd_scan_interval: float = 0.0,
        *,
        chunk_size: int = 0,
        max_inflight: int = 0,
        force: bool = False,
        force_kinds: Sequence[str] = (),
        queue: Optional[WorkQueue] = None,
        queue_poll: float = 0.2,
        queue_timeout: Optional[float] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if fd_scan_interval < 0:
            raise ValueError(
                f"fd_scan_interval must be >= 0 (0 = exact), got {fd_scan_interval}"
            )
        if chunk_size < 0 or max_inflight < 0:
            raise ValueError("chunk_size and max_inflight must be >= 0 (0 = auto)")
        unknown_kinds = set(force_kinds) - set(SCENARIO_KINDS)
        if unknown_kinds:
            raise ValueError(
                f"unknown force_kinds {sorted(unknown_kinds)}; expected {SCENARIO_KINDS}"
            )
        self.jobs = jobs
        self.store = store
        # Trace files only exist for instrumented runs, so asking for them
        # implies instrumenting.
        self.instrument = instrument or trace_dir is not None
        self.trace_dir = trace_dir
        #: Run every point under the batched failure-detector scan with this
        #: tick (ms); 0 keeps each point's own setting.  Like ``instrument``,
        #: this rewrites the executed points, so scanned and exact runs of
        #: the same operating point cache under distinct keys.
        self.fd_scan_interval = fd_scan_interval
        #: Points per worker round-trip; 0 sizes chunks automatically from
        #: the grid (:func:`repro.campaigns.pool.chunk_size`).
        self.chunk_size = chunk_size
        #: Maximum chunks in flight; 0 means 4 x jobs.
        self.max_inflight = max_inflight
        #: Re-execute every point (``force``) or every point of the listed
        #: kinds (``force_kinds``) even when cached, rewriting the store.
        self.force = force
        self.force_kinds = frozenset(force_kinds)
        self.queue = queue
        self.queue_poll = queue_poll
        self.queue_timeout = queue_timeout
        self._pool: Optional[WarmPool] = None
        #: Statistics of the most recent :meth:`run` (for CLI reporting).
        self.last_run: Optional[CampaignRun] = None

    def run(self, campaign: CampaignSpec) -> CampaignRun:
        """Execute every point of ``campaign`` and return their records."""
        points = campaign.points()
        run = CampaignRun(campaign=campaign)
        pending: List[PointSpec] = []
        for point in points:
            executed = self._executed_point(point)
            if executed is not point:
                run.aliases[point.key()] = executed.key()
            forced = self.force or executed.kind in self.force_kinds
            cached = (
                self.store.get(executed.key())
                if self.store is not None and not forced
                else None
            )
            if cached is not None:
                run.records[executed.key()] = cached
                run.cache_hits += 1
            else:
                pending.append(executed)

        if self.queue is not None and pending:
            self._run_queue(pending, run)
        elif self.jobs > 1 and len(pending) > 1:
            self._run_parallel(pending, run)
        else:
            try:
                for point in pending:
                    self._commit(point, execute_point(point, self.trace_dir), run)
            finally:
                if self.trace_dir is not None:
                    # Serial execution armed the in-process trace sink;
                    # disarm it so later runs in this process stay silent.
                    from repro.obs.export import set_trace_dir

                    set_trace_dir(None)

        run.executed = len(pending)
        if self.store is not None:
            # Batched-durability stores buffer lines; a completed run is a
            # natural durability point either way.
            self.store.flush()
        self.last_run = run
        return run

    # ------------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Release the warm worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    @property
    def pool(self) -> WarmPool:
        """The persistent worker pool, created on first parallel run."""
        if self._pool is None:
            self._pool = WarmPool(self.jobs)
        return self._pool

    def _executed_point(self, point: PointSpec) -> PointSpec:
        """The point actually simulated: rewritten clone when requested."""
        changes: Dict[str, Any] = {}
        if self.instrument and not point.instrument:
            changes["instrument"] = True
        if (
            self.fd_scan_interval > 0
            and point.fd_scan_interval == 0
            # The heartbeat fabric ignores the scan tick; rewriting would
            # mint a new cache key for an identical simulation.
            and point.fd_kind != "heartbeat"
        ):
            changes["fd_scan_interval"] = self.fd_scan_interval
        if changes:
            return replace(point, **changes)
        return point

    def _run_parallel(self, pending: List[PointSpec], run: CampaignRun) -> None:
        """Fan ``pending`` out over the warm pool in chunks, window-bounded.

        Chunks amortise per-task IPC/pickle cost on quick-point grids; the
        bounded window (default 4 x jobs chunks) keeps arbitrarily large
        grids from serialising every spec into executor queues before the
        first record lands.  Commit order follows completion, but records
        are keyed by point, so the result set is identical to serial.
        """
        executor = self.pool.executor()
        size = self.chunk_size or pool_mod.chunk_size(len(pending), self.jobs)
        chunks = iter(pool_mod.split_chunks(pending, size))
        window = self.max_inflight or pool_mod.INFLIGHT_CHUNKS_PER_WORKER * self.jobs
        inflight: Dict[Any, List[PointSpec]] = {}

        def submit_next() -> None:
            chunk = next(chunks, None)
            if chunk is not None:
                future = executor.submit(execute_chunk, chunk, self.trace_dir)
                inflight[future] = chunk

        for _ in range(window):
            submit_next()
        try:
            while inflight:
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                for future in done:
                    chunk = inflight.pop(future)
                    for point, record in zip(chunk, future.result()):
                        self._commit(point, record, run)
                    submit_next()
        except BaseException:
            for future in inflight:
                future.cancel()
            raise

    def _run_queue(self, pending: List[PointSpec], run: CampaignRun) -> None:
        """Distribute ``pending`` through the shared work queue.

        Enqueues what is missing, then participates as one worker while
        polling for records committed by other machines.  Completes when
        every pending point has a committed result; stale leases of crashed
        workers are reclaimed along the way by the normal claim path.
        """
        self.queue.enqueue(pending)
        worker = QueueWorker(self.queue, trace_dir=self.trace_dir)
        missing = {point.key(): point for point in pending}
        deadline = (
            None if self.queue_timeout is None else time.monotonic() + self.queue_timeout
        )
        while missing:
            worker.run()
            for key in list(missing):
                record = self.queue.result(key)
                if record is not None:
                    self._commit(missing.pop(key), record, run)
            if not missing:
                break
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"{len(missing)} campaign points still outstanding in queue "
                    f"{self.queue.directory!r} after {self.queue_timeout:g} s"
                )
            time.sleep(self.queue_poll)

    def _commit(self, point: PointSpec, record: Dict[str, Any], run: CampaignRun) -> None:
        """Record one finished point, persisting it immediately if caching."""
        run.records[point.key()] = record
        if self.store is not None:
            self.store.put(point.key(), record, point=point.as_dict())
