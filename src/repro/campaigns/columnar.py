"""Columnar mirror of the JSONL result store.

Cross-campaign aggregation over 10^5+ point-records is dominated by
``json.loads`` when it re-parses ``results.jsonl``; this module mirrors the
store into a columnar file that loads in bulk.  With ``pyarrow`` installed
the mirror is a standard ``results.parquet`` any external tool can query;
without it (the default toolchain ships none) the same logical columns are
written as ``results.rcol``, a packed-binary format built purely on the
stdlib ``array`` module -- one contiguous typed blob per column, so reading
is a handful of ``frombytes`` calls instead of one dict per record.

Logical schema (one row per cached point, last write wins):

==================  =======  ====================================================
column              type     source
==================  =======  ====================================================
key                 str      point-config hash (the store key)
kind / stack /      str      the point dict when the store has it, else
fd_kind / type               reconstructed from the record (dictionary-encoded)
n / seed / measured i64      operating point + delivery counters
undelivered /
events / failed_runs
throughput /        f64      operating point + run accounting
duration /
detection_time /
latency_sum
latencies           f64[]    per-record latency vector (offsets + value blob)
==================  =======  ====================================================

The mirror is derived data: it is rewritten atomically as a whole (tmp file
+ ``os.replace``) and considered *fresh* only when at least as new as the
JSONL file, so a torn or stale mirror is never trusted -- readers fall back
to the JSONL source of truth and rebuild.
"""

from __future__ import annotations

import json
import os
import sys
from array import array
from typing import Any, Dict, Iterable, List, Optional, Tuple

try:  # pragma: no cover - exercised only where pyarrow is installed
    import pyarrow  # type: ignore
    import pyarrow.parquet  # type: ignore

    HAVE_PYARROW = True
except ImportError:
    pyarrow = None
    HAVE_PYARROW = False

MAGIC = b"RCOL1\n"

#: Dictionary-encoded string columns, in layout order.
STRING_COLUMNS = ("kind", "stack", "fd_kind", "type")
#: 64-bit signed integer columns, in layout order.
INT_COLUMNS = ("n", "seed", "measured", "undelivered", "events", "failed_runs")
#: 64-bit float columns, in layout order.
FLOAT_COLUMNS = ("throughput", "duration", "detection_time", "latency_sum")

Entry = Tuple[str, Optional[Dict[str, Any]], Dict[str, Any]]


class ColumnarTable:
    """Columns of a mirrored result store, loaded in bulk.

    ``strings[name]`` is a ``(codes, values)`` dictionary encoding;
    ``numbers[name]`` is a typed ``array``; per-row latency vectors are one
    shared float blob sliced through an offsets array.
    """

    __slots__ = ("count", "keys", "strings", "numbers", "latency_offsets", "latency_values")

    def __init__(
        self,
        count: int,
        keys: List[str],
        strings: Dict[str, Tuple[array, List[str]]],
        numbers: Dict[str, array],
        latency_offsets: array,
        latency_values: array,
    ) -> None:
        self.count = count
        self.keys = keys
        self.strings = strings
        self.numbers = numbers
        self.latency_offsets = latency_offsets
        self.latency_values = latency_values

    def string_column(self, name: str) -> List[str]:
        """The decoded values of a dictionary-encoded column."""
        codes, values = self.strings[name]
        return [values[code] for code in codes]

    def latencies(self, index: int):
        """The latency vector of row ``index`` (a typed-array slice)."""
        return self.latency_values[self.latency_offsets[index]:self.latency_offsets[index + 1]]

    def latency_count(self, index: int) -> int:
        return self.latency_offsets[index + 1] - self.latency_offsets[index]

    def row(self, index: int) -> Dict[str, Any]:
        """One row as a plain dict (tests and spot checks; not the fast path)."""
        out: Dict[str, Any] = {"key": self.keys[index]}
        for name, (codes, values) in self.strings.items():
            out[name] = values[codes[index]]
        for name, column in self.numbers.items():
            out[name] = column[index]
        out["latencies"] = list(self.latencies(index))
        return out


def _entry_columns(key: str, point: Optional[Dict[str, Any]], record: Dict[str, Any]) -> Dict[str, Any]:
    """Flatten one store entry into the logical mirror columns."""
    record_type = record.get("type", "")
    if point:
        kind = point.get("kind", "")
        stack = point.get("stack", "")
        fd_kind = point.get("fd_kind", "") or ""
        n = point.get("n", record.get("n", 0))
        seed = point.get("seed", 0)
    else:
        kind = record.get("scenario") or (
            "crash-transient" if record_type == "transient" else ""
        )
        stack = record.get("algorithm", "")
        fd_kind = ""
        n = record.get("n", 0)
        seed = 0
    latencies = record.get("latencies", ())
    return {
        "key": key,
        "kind": kind,
        "stack": stack,
        "fd_kind": fd_kind,
        "type": record_type,
        "n": int(n),
        "seed": int(seed),
        "measured": int(record.get("measured", 0)),
        "undelivered": int(record.get("undelivered", 0)),
        "events": int(record.get("events", 0)),
        "failed_runs": int(record.get("failed_runs", 0)),
        "throughput": float(record.get("throughput", 0.0)),
        "duration": float(record.get("duration", 0.0)),
        "detection_time": float(record.get("detection_time", 0.0)),
        "latency_sum": float(sum(latencies)),
        "latencies": latencies,
    }


def _atomic_write(path: str, payload: bytes) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


# ------------------------------------------------------------------ rcol

def write_rcol(entries: Iterable[Entry], path: str) -> int:
    """Write the packed-binary mirror; returns the number of rows."""
    keys: List[str] = []
    string_codes = {name: array("i") for name in STRING_COLUMNS}
    string_values: Dict[str, Dict[str, int]] = {name: {} for name in STRING_COLUMNS}
    int_cols = {name: array("q") for name in INT_COLUMNS}
    float_cols = {name: array("d") for name in FLOAT_COLUMNS}
    offsets = array("Q", [0])
    values = array("d")

    for key, point, record in entries:
        columns = _entry_columns(key, point, record)
        keys.append(columns["key"])
        for name in STRING_COLUMNS:
            mapping = string_values[name]
            code = mapping.setdefault(columns[name], len(mapping))
            string_codes[name].append(code)
        for name in INT_COLUMNS:
            int_cols[name].append(columns[name])
        for name in FLOAT_COLUMNS:
            float_cols[name].append(columns[name])
        values.extend(columns["latencies"])
        offsets.append(len(values))

    key_blob = "\n".join(keys).encode("utf-8")
    blobs: List[bytes] = [key_blob]
    layout: List[List[Any]] = [["key", "utf8", len(key_blob)]]
    for name in STRING_COLUMNS:
        blob = string_codes[name].tobytes()
        blobs.append(blob)
        layout.append([name, "i32", len(blob)])
    for name in INT_COLUMNS:
        blob = int_cols[name].tobytes()
        blobs.append(blob)
        layout.append([name, "i64", len(blob)])
    for name in FLOAT_COLUMNS:
        blob = float_cols[name].tobytes()
        blobs.append(blob)
        layout.append([name, "f64", len(blob)])
    for name, column, code in (("latency_offsets", offsets, "u64"), ("latency_values", values, "f64")):
        blob = column.tobytes()
        blobs.append(blob)
        layout.append([name, code, len(blob)])

    header = json.dumps(
        {
            "version": 1,
            "count": len(keys),
            "byteorder": sys.byteorder,
            "strings": {name: list(string_values[name]) for name in STRING_COLUMNS},
            "layout": layout,
        },
        sort_keys=True,
    ).encode("utf-8")
    payload = b"".join(
        [MAGIC, len(header).to_bytes(8, "little"), header] + blobs
    )
    _atomic_write(path, payload)
    return len(keys)


def read_rcol(path: str) -> ColumnarTable:
    """Load a packed-binary mirror written by :func:`write_rcol`."""
    with open(path, "rb") as handle:
        payload = handle.read()
    if not payload.startswith(MAGIC):
        raise ValueError(f"{path} is not an RCOL1 mirror")
    header_len = int.from_bytes(payload[len(MAGIC):len(MAGIC) + 8], "little")
    start = len(MAGIC) + 8
    header = json.loads(payload[start:start + header_len].decode("utf-8"))
    if header.get("version") != 1:
        raise ValueError(f"unsupported mirror version {header.get('version')!r}")
    swap = header.get("byteorder") != sys.byteorder
    view = memoryview(payload)
    offset = start + header_len

    typecodes = {"i32": "i", "i64": "q", "u64": "Q", "f64": "d"}
    columns: Dict[str, Any] = {}
    for name, code, nbytes in header["layout"]:
        blob = view[offset:offset + nbytes]
        offset += nbytes
        if code == "utf8":
            text = bytes(blob).decode("utf-8")
            columns[name] = text.split("\n") if text else []
        else:
            column = array(typecodes[code])
            column.frombytes(blob)
            if swap:
                column.byteswap()
            columns[name] = column

    count = header["count"]
    keys = columns["key"]
    if len(keys) != count:
        raise ValueError(f"mirror corrupt: {len(keys)} keys for {count} rows")
    strings = {
        name: (columns[name], header["strings"][name]) for name in STRING_COLUMNS
    }
    numbers = {name: columns[name] for name in INT_COLUMNS + FLOAT_COLUMNS}
    return ColumnarTable(
        count=count,
        keys=keys,
        strings=strings,
        numbers=numbers,
        latency_offsets=columns["latency_offsets"],
        latency_values=columns["latency_values"],
    )


# ------------------------------------------------------------------ parquet

def write_parquet(entries: Iterable[Entry], path: str) -> int:  # pragma: no cover
    """Write the mirror as Parquet (pyarrow installed only)."""
    rows = [_entry_columns(key, point, record) for key, point, record in entries]
    names = ("key",) + STRING_COLUMNS + INT_COLUMNS + FLOAT_COLUMNS
    data: Dict[str, Any] = {name: [row[name] for row in rows] for name in names}
    data["latencies"] = [list(row["latencies"]) for row in rows]
    table = pyarrow.table(data)
    tmp = f"{path}.tmp.{os.getpid()}"
    pyarrow.parquet.write_table(table, tmp)
    os.replace(tmp, path)
    return len(rows)


def read_parquet(path: str) -> ColumnarTable:  # pragma: no cover
    """Load a Parquet mirror back into a :class:`ColumnarTable`."""
    table = pyarrow.parquet.read_table(path)
    count = table.num_rows
    keys = table.column("key").to_pylist()
    strings: Dict[str, Tuple[array, List[str]]] = {}
    for name in STRING_COLUMNS:
        decoded = table.column(name).to_pylist()
        mapping: Dict[str, int] = {}
        codes = array("i", (mapping.setdefault(value, len(mapping)) for value in decoded))
        strings[name] = (codes, list(mapping))
    numbers: Dict[str, array] = {}
    for name in INT_COLUMNS:
        numbers[name] = array("q", table.column(name).to_pylist())
    for name in FLOAT_COLUMNS:
        numbers[name] = array("d", table.column(name).to_pylist())
    offsets = array("Q", [0])
    values = array("d")
    for vector in table.column("latencies").to_pylist():
        values.extend(vector)
        offsets.append(len(values))
    return ColumnarTable(
        count=count,
        keys=keys,
        strings=strings,
        numbers=numbers,
        latency_offsets=offsets,
        latency_values=values,
    )


# ------------------------------------------------------------------ mirror API

def mirror_path(jsonl_path: str) -> str:
    """Where the mirror of ``jsonl_path`` lives (format per toolchain)."""
    stem = os.path.splitext(jsonl_path)[0]
    return f"{stem}.parquet" if HAVE_PYARROW else f"{stem}.rcol"


def write_mirror(entries: Iterable[Entry], jsonl_path: str) -> str:
    """Mirror ``entries`` beside ``jsonl_path``; returns the mirror path."""
    path = mirror_path(jsonl_path)
    if HAVE_PYARROW:  # pragma: no cover - exercised only with pyarrow
        write_parquet(entries, path)
    else:
        write_rcol(entries, path)
    return path


def read_mirror(path: str) -> ColumnarTable:
    """Load a mirror file of either format."""
    if path.endswith(".parquet"):  # pragma: no cover - pyarrow only
        if not HAVE_PYARROW:
            raise RuntimeError(f"{path} needs pyarrow, which is not installed")
        return read_parquet(path)
    return read_rcol(path)


def fresh_mirror_path(jsonl_path: str) -> Optional[str]:
    """The readable, up-to-date mirror of ``jsonl_path``, or ``None``.

    A mirror is *fresh* when it is at least as new as the JSONL file; both
    formats are considered, preferring Parquet when pyarrow can read it.
    """
    try:
        source_mtime = os.stat(jsonl_path).st_mtime_ns
    except OSError:
        return None
    stem = os.path.splitext(jsonl_path)[0]
    candidates = [f"{stem}.rcol"]
    if HAVE_PYARROW:  # pragma: no cover - pyarrow only
        candidates.insert(0, f"{stem}.parquet")
    for candidate in candidates:
        try:
            if os.stat(candidate).st_mtime_ns >= source_mtime:
                return candidate
        except OSError:
            continue
    return None
