"""Append-only JSONL result store: the campaign cache.

One line per completed point::

    {"key": "<sha256 of the point config>", "point": {...}, "record": {...}}

Lines are appended (and flushed to disk) as soon as a point finishes, so a
crashed or interrupted campaign resumes from its last completed point.  A
torn final line -- the only corruption an append-only writer can produce --
is skipped on load.  Duplicate keys are harmless: the last line wins, and
writers only ever append records with identical content for the same key.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, Optional


class ResultStore:
    """Disk cache of completed campaign points, keyed by point-config hash."""

    def __init__(self, directory: str, filename: str = "results.jsonl") -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, filename)
        self._records: Dict[str, Dict[str, Any]] = {}
        self._load()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn write from an interrupted campaign
                key = entry.get("key")
                record = entry.get("record")
                if key and record is not None:
                    self._records[key] = record

    # ------------------------------------------------------------------ access

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record for ``key``, or ``None`` on a miss."""
        return self._records.get(key)

    def put(
        self,
        key: str,
        record: Dict[str, Any],
        point: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Persist ``record`` under ``key`` (durable before returning)."""
        entry: Dict[str, Any] = {"key": key, "record": record}
        if point is not None:
            entry["point"] = point
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._records[key] = record

    def keys(self) -> Iterator[str]:
        """The keys of every cached point."""
        return iter(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)
