"""Append-only JSONL result store: the campaign cache.

One line per completed point::

    {"key": "<sha256 of the point config>", "point": {...}, "record": {...}}

Lines are appended through one persistent handle held for the store's
lifetime (the original implementation reopened the file per point, which
dominated quick-point campaigns).  Two durability modes:

* ``durability="fsync"`` (the default, and the historical behaviour): every
  ``put`` is flushed *and* fsynced before returning, so a crashed campaign
  resumes from its last completed point;
* ``durability="batch"``: lines are buffered and flushed every
  ``flush_every`` puts (and on :meth:`flush` / :meth:`close`), trading a
  bounded window of re-simulation after a crash for throughput on
  many-small-point grids.

A torn final line -- the only corruption an append-only writer can produce
-- is skipped on load.  Duplicate keys are resolved last-wins on load, and
:meth:`compact` rewrites the file to one line per key atomically
(tmp + ``os.replace``), so a store shared by several appending runners (or
rewritten by ``--force``) stops growing without bound; compaction triggers
automatically once enough duplicate lines accumulate.

Closing a store (context-manager exit, :meth:`close`, or garbage
collection) also refreshes the columnar mirror (:mod:`repro.campaigns.columnar`)
that cross-campaign aggregation reads instead of re-parsing the JSONL.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.campaigns import columnar

DURABILITY_MODES = ("fsync", "batch")


class ResultStore:
    """Disk cache of completed campaign points, keyed by point-config hash."""

    def __init__(
        self,
        directory: str,
        filename: str = "results.jsonl",
        *,
        durability: str = "fsync",
        flush_every: int = 64,
        auto_compact_dupes: int = 512,
        mirror: bool = True,
    ) -> None:
        if durability not in DURABILITY_MODES:
            raise ValueError(
                f"durability must be one of {DURABILITY_MODES}, got {durability!r}"
            )
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, filename)
        self.durability = durability
        self.flush_every = flush_every
        #: Compact automatically once this many duplicate lines accumulate
        #: (0 disables); duplicates come from multi-writer appends and from
        #: ``--force`` rewrites, both of which are last-wins by contract.
        self.auto_compact_dupes = auto_compact_dupes
        self.mirror = mirror
        self._records: Dict[str, Dict[str, Any]] = {}
        self._points: Dict[str, Dict[str, Any]] = {}
        self._handle = None
        self._unflushed = 0
        self._dupes = 0
        self._dirty = False
        self._closed = False
        self._load()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        lines = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn write from an interrupted campaign
                key = entry.get("key")
                record = entry.get("record")
                if key and record is not None:
                    lines += 1
                    self._records[key] = record
                    point = entry.get("point")
                    if point is not None:
                        self._points[key] = point
        self._dupes = lines - len(self._records)

    # ------------------------------------------------------------------ access

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record for ``key``, or ``None`` on a miss."""
        return self._records.get(key)

    def point(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored point dict for ``key`` (when the writer provided one)."""
        return self._points.get(key)

    def put(
        self,
        key: str,
        record: Dict[str, Any],
        point: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Persist ``record`` under ``key`` (durable before returning in
        ``fsync`` mode; buffered up to ``flush_every`` lines in ``batch``
        mode)."""
        entry: Dict[str, Any] = {"key": key, "record": record}
        if point is not None:
            entry["point"] = point
        handle = self._append_handle()
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
        if key in self._records:
            self._dupes += 1
        self._records[key] = record
        if point is not None:
            self._points[key] = point
        self._dirty = True
        if self.durability == "fsync":
            handle.flush()
            os.fsync(handle.fileno())
        else:
            self._unflushed += 1
            if self._unflushed >= self.flush_every:
                self.flush()
        if self.auto_compact_dupes and self._dupes >= self.auto_compact_dupes:
            self.compact()

    def keys(self) -> Iterator[str]:
        """The keys of every cached point."""
        return iter(self._records)

    def entries(self) -> Iterator[Tuple[str, Optional[Dict[str, Any]], Dict[str, Any]]]:
        """Iterate ``(key, point-or-None, record)`` over the cached points."""
        for key, record in self._records.items():
            yield key, self._points.get(key), record

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------ lifecycle

    def _append_handle(self):
        """The persistent append handle, opened lazily on first write.

        Read-only users (cache lookups, aggregation) never open the file
        for appending at all.
        """
        if self._closed:
            raise ValueError(f"store {self.path} is closed")
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def flush(self) -> None:
        """Flush (and fsync) any buffered lines to disk."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._unflushed = 0

    def compact(self) -> None:
        """Rewrite the file to one last-wins line per key, atomically.

        The replacement is a tmp-file + ``os.replace`` swap, so a concurrent
        reader always sees either the old complete file or the new complete
        file, never a half-written one.  The append handle is reopened onto
        the new file afterwards.
        """
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None
        tmp = f"{self.path}.compact.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            for key, point, record in self.entries():
                entry: Dict[str, Any] = {"key": key, "record": record}
                if point is not None:
                    entry["point"] = point
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._dupes = 0
        self._unflushed = 0

    def sync_mirror(self) -> Optional[str]:
        """Rewrite the columnar mirror from the in-memory records.

        Returns the mirror path, or ``None`` for an empty store (nothing to
        mirror).  See :mod:`repro.campaigns.columnar` for the schema.
        """
        if not self._records:
            return None
        self.flush()
        return columnar.write_mirror(self.entries(), self.path)

    def close(self) -> None:
        """Flush buffered lines, refresh the mirror and release the handle."""
        if self._closed:
            return
        try:
            self.flush()
            if self.mirror and self._dirty:
                self.sync_mirror()
        finally:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self._closed = True

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
